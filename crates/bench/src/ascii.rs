//! ASCII rendering of benchmark series — terminal reproduction of the
//! paper's plots.

use crate::series::Series;

/// Render series as an aligned table (`log2 n` rows × series columns).
pub fn table(series: &[Series]) -> String {
    let mut out = String::new();
    let mut keys: Vec<u32> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.log2n))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    out.push_str(&format!("{:>7}", "log2n"));
    for s in series {
        out.push_str(&format!("  {:>22}", truncate(&s.name, 22)));
    }
    out.push('\n');
    for k in keys {
        out.push_str(&format!("{k:>7}"));
        for s in series {
            match s.value_at(k) {
                Some(v) => out.push_str(&format!("  {v:>22.1}")),
                None => out.push_str(&format!("  {:>22}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render series as an ASCII line chart (pseudo-Mflop/s vs log2 n),
/// mimicking Figure 3's layout.
pub fn chart(title: &str, series: &[Series], height: usize) -> String {
    let height = height.max(5);
    let mut keys: Vec<u32> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.log2n))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    if keys.is_empty() {
        return format!("{title}: (no data)\n");
    }
    let max_v = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.value))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let marks = ['*', 'o', '.', 'x', '+', '#', '@'];
    let cols = keys.len() * 4;
    let mut grid = vec![vec![' '; cols]; height];
    for (si, s) in series.iter().enumerate() {
        let m = marks[si % marks.len()];
        for p in &s.points {
            if let Some(ci) = keys.iter().position(|&k| k == p.log2n) {
                // Clamped to [0, 1], so the rounded product is a valid
                // non-negative row index.
                let frac = (p.value / max_v).clamp(0.0, 1.0);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let row = (frac * (height - 1) as f64).round() as usize;
                let r = height - 1 - row.min(height - 1);
                grid[r][ci * 4 + 1] = m;
            }
        }
    }
    let mut out = format!("{title}  (peak = {max_v:.0} pseudo-Mflop/s)\n");
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{max_v:>8.0} |")
        } else if ri == height - 1 {
            format!("{:>8.0} |", 0.0)
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9}+{}\n", "", "-".repeat(cols)));
    out.push_str(&format!("{:>10}", ""));
    for k in &keys {
        out.push_str(&format!("{k:>4}"));
    }
    out.push_str("   (log2 n)\n  legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={}  ", marks[si % marks.len()], s.name));
    }
    out.push('\n');
    out
}

/// Serialize series to CSV (`log2n,series1,series2,…`).
pub fn csv(series: &[Series]) -> String {
    let mut keys: Vec<u32> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.log2n))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut out = String::from("log2n");
    for s in series {
        out.push(',');
        out.push_str(&s.name.replace(',', ";"));
    }
    out.push('\n');
    for k in keys {
        out.push_str(&k.to_string());
        for s in series {
            out.push(',');
            if let Some(v) = s.value_at(k) {
                out.push_str(&format!("{v:.3}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Render a value sequence as a one-line Unicode sparkline
/// (`▁▂▃▄▅▆▇█`), scaled over the sequence's own min..max range so small
/// relative changes stay visible. Non-finite values render as spaces;
/// an all-equal (or single-point) sequence renders at mid height.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if hi <= lo {
                BLOCKS[3]
            } else {
                // lo/hi are the min/max over these values, so t ∈ [0, 1].
                let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let block = (t * 7.0).round() as usize;
                BLOCKS[block.min(7)]
            }
        })
        .collect()
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Point;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                name: "A".into(),
                points: vec![
                    Point {
                        log2n: 6,
                        value: 100.0,
                    },
                    Point {
                        log2n: 7,
                        value: 200.0,
                    },
                ],
            },
            Series {
                name: "B".into(),
                points: vec![Point {
                    log2n: 7,
                    value: 50.0,
                }],
            },
        ]
    }

    #[test]
    fn table_contains_all_rows_and_columns() {
        let t = table(&sample());
        assert!(t.contains("log2n"));
        assert!(t.contains("100.0"));
        assert!(t.contains("50.0"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn csv_roundtrips_structure() {
        let c = csv(&sample());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "log2n,A,B");
        assert!(lines[1].starts_with("6,100.000,"));
        assert!(lines[2].starts_with("7,200.000,50.000"));
    }

    #[test]
    fn chart_renders_marks_and_legend() {
        let ch = chart("test", &sample(), 10);
        assert!(ch.contains('*'));
        assert!(ch.contains("legend"));
        assert!(ch.contains("log2 n"));
    }

    #[test]
    fn chart_handles_empty() {
        let ch = chart("empty", &[], 10);
        assert!(ch.contains("no data"));
    }

    #[test]
    fn sparkline_golden_ramp() {
        // Monotone ramp hits every block level exactly once.
        let v: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(sparkline(&v), "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn sparkline_golden_vee() {
        // Midpoint 2.0 maps to t=0.5 → round(3.5) = level 4 (`▅`).
        assert_eq!(sparkline(&[4.0, 2.0, 0.0, 2.0, 4.0]), "█▅▁▅█");
    }

    #[test]
    fn sparkline_scales_to_own_range() {
        // A 1% wiggle around a large base still spans the full height:
        // the scale is min..max, not 0..max.
        let s = sparkline(&[1000.0, 1010.0, 1000.0]);
        assert_eq!(s, "▁█▁");
    }

    #[test]
    fn sparkline_flat_and_degenerate_inputs() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        assert_eq!(sparkline(&[7.0]), "▄");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, f64::NAN, 3.0]), "▁ █");
    }
}
