//! # spiral-bench — harness regenerating the paper's evaluation
//!
//! * [`series`] — the five Figure 3 curves (pseudo-Mflop/s vs. size) on
//!   the simulated machines, with the paper's max-over-threads
//!   methodology;
//! * [`ascii`] — terminal tables/charts and CSV output;
//! * [`ablations`] — false-sharing, scheduling-grain, six-step, and
//!   search-strategy ablations;
//! * [`history`] — longitudinal `BENCH_<host>.json` benchmark history
//!   with noise-aware regression comparison (the `bench` binary);
//! * [`batch`] — BATCH: batched small-DFT throughput vs per-transform
//!   dispatch, the serving layer's speedup measurement;
//! * [`certify`] — CERT: the static certification sweep (exact
//!   symbolic + dataflow) and its `certify_report.json` artifact;
//! * [`simd_ablation`] — ABL-SIMD: the short-vector backend vs the
//!   scalar interpreter on the host, `simd_ablation.json`;
//! * [`serve_load`] — SERVE-LOAD: the network tier's round-trip latency
//!   percentiles under single / warm / overload client concurrency,
//!   and its `serve_load.json` artifact.
//!
//! The `figures` binary drives everything:
//! ```text
//! cargo run -p spiral-bench --release --bin figures -- fig3 --machine core-duo
//! cargo run -p spiral-bench --release --bin figures -- all
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod ascii;
pub mod batch;
pub mod cbench;
pub mod certify;
pub mod dist_fig;
pub mod history;
pub mod series;
pub mod serve_load;
pub mod simd_ablation;
