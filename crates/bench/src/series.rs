//! Figure 3 series computation: pseudo-Mflop/s vs. transform size for
//! the five series of the paper's plots, on a simulated machine.
//!
//! Methodology mirrors the paper's §4:
//! * performance metric: `5 N log2 N / runtime_µs` (pseudo-Mflop/s);
//! * "pthreads" series report the **maximum over 1, 2, …, p threads**
//!   (FFTW's bench cannot be forced to a thread count; the paper plots
//!   the max — hence the characteristic "branching" of the curves);
//! * timings are warm (repeat-loop measurement).

use serde::{Deserialize, Serialize};
use spiral_baselines::{FftwLikeConfig, FftwLikeFft};
use spiral_codegen::plan::Plan;
use spiral_search::{CostModel, Tuner};
use spiral_sim::{simulate_plan, MachineSpec, SmpSim};
use spiral_spl::num::pseudo_mflops;

/// One measured point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Point {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Pseudo-Mflop/s (higher is better).
    pub value: f64,
}

/// One plotted curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Series label.
    pub name: String,
    /// Measured points, ordered by size.
    pub points: Vec<Point>,
}

impl Series {
    /// The measured value at `2^log2n`, if present.
    pub fn value_at(&self, log2n: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.log2n == log2n)
            .map(|p| p.value)
    }
}

/// Thread counts the "max over threads" series consider on a machine
/// with `p` processors (the paper used 1, 2, and 4).
fn thread_choices(p: usize) -> Vec<usize> {
    let mut v = vec![2];
    if p >= 4 {
        v.push(4);
    }
    v.retain(|&t| t <= p);
    v
}

/// Build the tuned Spiral plans for one size: sequential and the best
/// parallel plan per thread count.
pub struct SpiralPlans {
    /// The tuned sequential plan.
    pub sequential: Plan,
    /// (threads, plan) for each viable parallel configuration.
    pub parallel: Vec<(usize, Plan)>,
}

/// Tune Spiral for `n` on a machine (analytic tuning model — fast and
/// deterministic; the simulator then measures the winner).
pub fn tune_spiral(n: usize, machine: &MachineSpec) -> SpiralPlans {
    let mu = machine.mu();
    let seq_tuner = Tuner::new(1, mu, CostModel::Analytic);
    let sequential = seq_tuner
        .tune_sequential(n)
        .unwrap_or_else(|e| panic!("sequential tuning of DFT_{n} failed: {e}"))
        .plan;
    let mut parallel = Vec::new();
    for t in thread_choices(machine.p) {
        let tuner = Tuner::new(t, mu, CostModel::Analytic);
        if let Ok(Some(tuned)) = tuner.tune_parallel(n) {
            if tuned.plan.threads > 1 {
                parallel.push((t, tuned.plan));
            }
        }
    }
    SpiralPlans {
        sequential,
        parallel,
    }
}

/// Simulated pseudo-Mflop/s of a plan on a machine.
pub fn sim_pmflops(plan: &Plan, machine: &MachineSpec) -> f64 {
    simulate_plan(plan, machine, true).pseudo_mflops
}

/// Simulated pseudo-Mflop/s of the FFTW-like baseline with `threads`.
pub fn fftw_pmflops(n: usize, threads: usize, machine: &MachineSpec, cfg: FftwLikeConfig) -> f64 {
    let f = FftwLikeFft::new(n, cfg);
    let mut sim = SmpSim::new(machine.clone(), n);
    // Warm run, then measured run (same protocol as plans).
    f.trace(threads, &mut sim);
    sim.reset_timing();
    f.trace(threads, &mut sim);
    pseudo_mflops(n, machine.cycles_to_us(sim.cycles()))
}

/// An "OpenMP" variant of a machine: same hardware, but each barrier
/// goes through the OpenMP runtime — modeled as a constant factor on the
/// synchronization cost (the paper's OpenMP curves track the pthreads
/// curves from slightly below).
pub fn openmp_variant(machine: &MachineSpec) -> MachineSpec {
    let mut m = machine.clone();
    m.costs.barrier *= 1.7;
    m.name = format!("{} (OpenMP runtime)", m.name);
    m
}

/// Compute the five Figure 3 series for one machine over
/// `2^min_log2 ..= 2^max_log2`.
pub fn fig3_series(machine: &MachineSpec, min_log2: u32, max_log2: u32) -> Vec<Series> {
    let omp_machine = openmp_variant(machine);
    let fftw_cfg = FftwLikeConfig::default();
    let mut spiral_pthreads = Vec::new();
    let mut spiral_openmp = Vec::new();
    let mut spiral_seq = Vec::new();
    let mut fftw_pthreads = Vec::new();
    let mut fftw_seq = Vec::new();

    for k in min_log2..=max_log2 {
        let n = 1usize << k;
        let plans = tune_spiral(n, machine);
        let seq_pm = sim_pmflops(&plans.sequential, machine);
        spiral_seq.push(Point {
            log2n: k,
            value: seq_pm,
        });

        // Max over thread counts, including 1 (paper methodology).
        let mut best_pt = seq_pm;
        let mut best_omp = sim_pmflops(&plans.sequential, &omp_machine);
        for (_t, plan) in &plans.parallel {
            best_pt = best_pt.max(sim_pmflops(plan, machine));
            best_omp = best_omp.max(sim_pmflops(plan, &omp_machine));
        }
        spiral_pthreads.push(Point {
            log2n: k,
            value: best_pt,
        });
        spiral_openmp.push(Point {
            log2n: k,
            value: best_omp,
        });

        let f_seq = fftw_pmflops(n, 1, machine, fftw_cfg);
        fftw_seq.push(Point {
            log2n: k,
            value: f_seq,
        });
        let mut f_best = f_seq;
        for t in thread_choices(machine.p) {
            f_best = f_best.max(fftw_pmflops(n, t, machine, fftw_cfg));
        }
        fftw_pthreads.push(Point {
            log2n: k,
            value: f_best,
        });
    }

    vec![
        Series {
            name: "Spiral pthreads".into(),
            points: spiral_pthreads,
        },
        Series {
            name: "Spiral OpenMP".into(),
            points: spiral_openmp,
        },
        Series {
            name: "Spiral sequential".into(),
            points: spiral_seq,
        },
        Series {
            name: "FFTW-like pthreads".into(),
            points: fftw_pthreads,
        },
        Series {
            name: "FFTW-like sequential".into(),
            points: fftw_seq,
        },
    ]
}

/// First size (as log2 n) at which the parallel series exceeds the
/// sequential one by more than `margin` (the "branching point").
pub fn crossover(parallel: &Series, sequential: &Series, margin: f64) -> Option<u32> {
    for p in &parallel.points {
        if let Some(s) = sequential.value_at(p.log2n) {
            if p.value > s * (1.0 + margin) {
                return Some(p.log2n);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_sim::{core_duo, pentium_d};

    #[test]
    fn thread_choices_match_paper() {
        assert_eq!(thread_choices(2), vec![2]);
        assert_eq!(thread_choices(4), vec![2, 4]);
        assert_eq!(thread_choices(1), Vec::<usize>::new());
    }

    #[test]
    fn fig3_produces_five_series() {
        let s = fig3_series(&core_duo(), 6, 9);
        assert_eq!(s.len(), 5);
        for series in &s {
            assert_eq!(series.points.len(), 4);
            assert!(
                series.points.iter().all(|p| p.value > 0.0),
                "{}",
                series.name
            );
        }
    }

    #[test]
    fn spiral_parallel_crossover_is_early_on_cmp() {
        // The paper's headline: speedup already at 2^8 on the Core Duo.
        let s = fig3_series(&core_duo(), 6, 10);
        let x = crossover(&s[0], &s[2], 0.02).expect("no crossover found");
        assert!(x <= 8, "Spiral crossover at 2^{x}, expected ≤ 2^8");
    }

    #[test]
    fn fftw_like_crossover_is_late() {
        // FFTW only profits from threads beyond several thousand points
        // (the paper observed 2^13).
        let s = fig3_series(&core_duo(), 8, 14);
        let x = crossover(&s[3], &s[4], 0.02);
        // No crossover in range is also "late".
        if let Some(k) = x {
            assert!(k >= 12, "FFTW-like crossover at 2^{k}, expected ≥ 2^12");
        }
    }

    #[test]
    fn spiral_beats_fftw_like_in_cache_parallel() {
        let s = fig3_series(&core_duo(), 8, 11);
        for k in 8..=11 {
            let sp = s[0].value_at(k).unwrap();
            let fw = s[3].value_at(k).unwrap();
            assert!(sp > fw, "2^{k}: Spiral {sp} vs FFTW-like {fw}");
        }
    }

    #[test]
    fn bus_machine_crossover_later_than_cmp() {
        let cmp = fig3_series(&core_duo(), 6, 12);
        let bus = fig3_series(&pentium_d(), 6, 12);
        let x_cmp = crossover(&cmp[0], &cmp[2], 0.02).unwrap_or(99);
        let x_bus = crossover(&bus[0], &bus[2], 0.02).unwrap_or(99);
        assert!(x_cmp <= x_bus, "CMP 2^{x_cmp} vs bus 2^{x_bus}");
    }

    #[test]
    fn openmp_tracks_pthreads_from_below() {
        let s = fig3_series(&core_duo(), 9, 12);
        for k in 9..=12 {
            let pt = s[0].value_at(k).unwrap();
            let omp = s[1].value_at(k).unwrap();
            assert!(omp <= pt * 1.001, "2^{k}: OpenMP {omp} above pthreads {pt}");
            assert!(omp > pt * 0.5, "2^{k}: OpenMP unreasonably slow");
        }
    }
}
