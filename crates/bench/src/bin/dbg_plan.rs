//! Debug utility: print the kernel structure of a tuned sequential plan.
use spiral_codegen::plan::Step;
use spiral_codegen::stage::LocalStage;
use spiral_search::{CostModel, Tuner};

fn main() {
    let tuner = Tuner::new(1, 4, CostModel::Analytic);
    let plan = tuner.tune_sequential(1024).expect("analytic tuning").plan;
    for (si, step) in plan.steps.iter().enumerate() {
        if let Step::Seq(p) = step {
            for (ki, st) in p.stages.iter().enumerate() {
                if let LocalStage::Kernel(k) = st {
                    println!(
                        "step {si} kernel {ki}: c={} loops={:?} in_map={} out_map={} tw={} two={} it_str={} ot_str={}",
                        k.codelet.size(),
                        k.loops.iter().map(|l| (l.count, l.in_stride, l.out_stride)).collect::<Vec<_>>(),
                        k.in_map.is_some(),
                        k.out_map.is_some(),
                        k.twiddle.is_some(),
                        k.twiddle_out.is_some(),
                        k.in_t_stride,
                        k.out_t_stride
                    );
                } else {
                    let kind = match st {
                        LocalStage::Permute(_) => "Permute",
                        LocalStage::Scale(_) => "Scale",
                        _ => "?",
                    };
                    println!("step {si} stage {ki}: {kind}");
                }
            }
        } else {
            println!("step {si}: non-Seq");
        }
    }
}
