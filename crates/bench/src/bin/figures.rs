//! `figures` — regenerate the paper's evaluation.
//!
//! ```text
//! figures list                                  (every command, described)
//! figures fig3 --machine core-duo [--min 6] [--max 18] [--out results/]
//! figures crossover [--machine core-duo]
//! figures sequential [--min 8] [--max 14]       (host wall-clock)
//! figures ablation-false-sharing [--machine core-duo]
//! figures ablation-schedule [--machine core-duo] [--size 12]
//! figures ablation-sixstep [--machine core-duo]
//! figures ablation-merge [--machine core-duo]
//! figures ablation-fault [--min 8] [--max 14] [--out results/]
//! figures ablation-trace [--min 8] [--max 14] [--out results/]
//! figures ablation-timeline [--min 8] [--max 14] [--out results/]
//! figures ablation-simd [--min 8] [--max 12] [--threads 1] [--reps 5] [--out results/]
//! figures trace [--size 12] [--threads 2] [--out results/]      (needs --features trace)
//! figures timeline [--size 12] [--threads 2] [--out results/]   (needs --features trace)
//! figures search
//! figures verify [--machine core-duo] [--min 8] [--max 14] [--out results/]
//! figures batch [--min 6] [--max 10] [--threads 2] [--batch 32] [--reps 5] [--out results/]
//! figures certify [--min 2] [--max 6] [--threads 4] [--out results/]
//! figures serve-load [--min 6] [--max 8] [--workers 2] [--connections 4] [--requests 32]
//!                    [--batch 8] [--deadline-ms 0] [--wisdom PATH] [--require-warm 0|1]
//!                    [--history FILE] [--out results/]
//! figures serve-dash [--size 8] [--workers 2] [--connections 4] [--requests 32] [--out results/]
//! figures dist [--min 8] [--max 12] [--threads 2] [--budget 4] [--reps 3]
//!              [--machine core-duo] [--out results/]
//! figures ablation-serve-metrics [--size 8] [--workers 2] [--connections 4] [--requests 64]
//!                    [--out results/]
//! figures all [--out results/]
//! ```
//!
//! Flags are validated per command: an unknown flag, a missing value,
//! or a stray positional argument is an error, not a silent no-op.

use spiral_bench::ablations::{
    false_sharing_ablation, fault_overhead_ablation, merge_ablation, schedule_ablation,
    search_comparison, sixstep_ablation, timeline_overhead_ablation, trace_overhead_ablation,
    verification_ablation,
};
use spiral_bench::ascii;
use spiral_bench::series::{crossover, fig3_series, tune_spiral, Series};
use spiral_sim::{by_name, paper_machines, simulate_plan, MachineSpec};
use std::collections::HashMap;

/// One dispatchable `figures` command: its name, what it reproduces,
/// and exactly which flags it accepts.
struct CmdSpec {
    name: &'static str,
    desc: &'static str,
    flags: &'static [&'static str],
}

const COMMANDS: &[CmdSpec] = &[
    CmdSpec {
        name: "fig3",
        desc: "Figure 3 — the five pseudo-Mflop/s curves on a simulated machine",
        flags: &["machine", "min", "max", "out"],
    },
    CmdSpec {
        name: "crossover",
        desc: "CLAIM-XOVER — where parallelization starts to pay off",
        flags: &["machine", "min", "max"],
    },
    CmdSpec {
        name: "sequential",
        desc: "CLAIM-SEQ — host wall-clock sequential comparison vs baselines",
        flags: &["min", "max"],
    },
    CmdSpec {
        name: "ablation-false-sharing",
        desc: "ABL-FS — µ-aware formula (14) vs µ-oblivious false sharing",
        flags: &["machine", "min", "max", "out"],
    },
    CmdSpec {
        name: "ablation-schedule",
        desc: "ABL-SCHED — block-cyclic grain sweep at one size",
        flags: &["machine", "size"],
    },
    CmdSpec {
        name: "ablation-sixstep",
        desc: "ABL-SIXSTEP — multicore CT vs explicit six-step transposes",
        flags: &["machine", "min", "max"],
    },
    CmdSpec {
        name: "ablation-merge",
        desc: "ABL-MERGE — explicit exchange passes vs merged into compute",
        flags: &["machine", "min", "max"],
    },
    CmdSpec {
        name: "ablation-fault",
        desc: "ABL-FAULT — fault-tolerance overhead on the happy path (host)",
        flags: &["min", "max", "out"],
    },
    CmdSpec {
        name: "ablation-trace",
        desc: "ABL-TRACE — per-stage profiling overhead when ON (host)",
        flags: &["min", "max", "threads", "reps", "out"],
    },
    CmdSpec {
        name: "ablation-timeline",
        desc: "ABL-TIMELINE — event-timeline recording overhead when ON (host)",
        flags: &["min", "max", "threads", "reps", "out"],
    },
    CmdSpec {
        name: "ablation-simd",
        desc: "ABL-SIMD — short-vector backend vs scalar interpreter, same formula (host)",
        flags: &["min", "max", "threads", "reps", "out"],
    },
    CmdSpec {
        name: "trace",
        desc: "per-stage waterfall of one traced run (needs --features trace)",
        flags: &["size", "threads", "out"],
    },
    CmdSpec {
        name: "timeline",
        desc: "Chrome/Perfetto event timeline of one observed run (needs --features trace)",
        flags: &["size", "threads", "out"],
    },
    CmdSpec {
        name: "search",
        desc: "SEARCH-DP — DP vs random vs evolutionary vs fixed radix-2",
        flags: &["machine"],
    },
    CmdSpec {
        name: "verify",
        desc: "ABL-VERIFY — static analyzer vs dynamic simulator verdicts",
        flags: &["machine", "min", "max", "out"],
    },
    CmdSpec {
        name: "batch",
        desc: "BATCH — batched small-DFT throughput vs per-transform dispatch (host)",
        flags: &["min", "max", "threads", "batch", "reps", "out"],
    },
    CmdSpec {
        name: "certify",
        desc: "CERT — exact symbolic + dataflow certification sweep over tuner-reachable plans",
        flags: &["min", "max", "threads", "out"],
    },
    CmdSpec {
        name: "dist",
        desc: "DIST — fleet throughput vs single-process, with the exchange-cost model's verdict",
        flags: &["min", "max", "threads", "budget", "reps", "machine", "out"],
    },
    CmdSpec {
        name: "serve-load",
        desc:
            "SERVE-LOAD — network-tier latency percentiles under single/warm/overload concurrency",
        flags: &[
            "min",
            "max",
            "workers",
            "connections",
            "requests",
            "batch",
            "deadline-ms",
            "wisdom",
            "require-warm",
            "history",
            "out",
        ],
    },
    CmdSpec {
        name: "serve-dash",
        desc: "SERVE-DASH — live-telemetry dashboard artifact: warm load, SS01 snapshot \
               over the wire, forced shed with flight record",
        flags: &["size", "workers", "connections", "requests", "batch", "out"],
    },
    CmdSpec {
        name: "ablation-serve-metrics",
        desc: "ABL-SERVE-METRICS — warm-phase latency cost of telemetry recording on vs off",
        flags: &["size", "workers", "connections", "requests", "batch", "out"],
    },
    CmdSpec {
        name: "all",
        desc: "every simulated figure and ablation in sequence",
        flags: &["machine", "min", "max", "out"],
    },
    CmdSpec {
        name: "list",
        desc: "enumerate every command with its description and flags",
        flags: &[],
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage_and_exit();
    };
    if cmd == "list" || cmd == "--list" {
        print_list();
        return;
    }
    let Some(spec) = COMMANDS.iter().find(|s| s.name == cmd) else {
        eprintln!("unknown command: {cmd}");
        usage_and_exit();
    };
    let opts = match parse_flags(&args[1..], spec.flags) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("figures {cmd}: {e}");
            usage_and_exit();
        }
    };
    let out_dir = opts.get("out").cloned();
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("cannot create output dir");
    }

    match cmd {
        "fig3" => {
            let m = machine_arg(&opts);
            run_fig3(&m, &opts, out_dir.as_deref());
        }
        "crossover" => {
            let m = machine_arg(&opts);
            run_crossover(&m, &opts);
        }
        "sequential" => run_sequential_host(&opts),
        "ablation-false-sharing" => {
            let m = machine_arg(&opts);
            run_abl_fs(&m, &opts, out_dir.as_deref());
        }
        "ablation-schedule" => {
            let m = machine_arg(&opts);
            run_abl_sched(&m, &opts);
        }
        "ablation-sixstep" => {
            let m = machine_arg(&opts);
            run_abl_sixstep(&m, &opts);
        }
        "ablation-merge" => {
            let m = machine_arg(&opts);
            run_abl_merge(&m, &opts);
        }
        "ablation-fault" => run_abl_fault(&opts, out_dir.as_deref()),
        "ablation-trace" => run_abl_trace(&opts, out_dir.as_deref()),
        "ablation-timeline" => run_abl_timeline(&opts, out_dir.as_deref()),
        "ablation-simd" => run_abl_simd(&opts, out_dir.as_deref()),
        "trace" => run_trace(&opts, out_dir.as_deref()),
        "timeline" => run_timeline(&opts, out_dir.as_deref()),
        "search" => run_search(&opts),
        "verify" => {
            let m = machine_arg(&opts);
            run_verify(&m, &opts, out_dir.as_deref());
        }
        "batch" => run_batch(&opts, out_dir.as_deref()),
        "certify" => run_certify(&opts, out_dir.as_deref()),
        "dist" => run_dist(&opts, out_dir.as_deref()),
        "serve-load" => run_serve_load(&opts, out_dir.as_deref()),
        "serve-dash" => run_serve_dash(&opts, out_dir.as_deref()),
        "ablation-serve-metrics" => run_abl_serve_metrics(&opts, out_dir.as_deref()),
        "all" => {
            let (min, max) = range(&opts, 6, 16);
            for m in paper_machines() {
                println!("\n================== {} ==================", m.name);
                let series = fig3_series(&m, min, max);
                print_fig3(&m, &series);
                save_csv(&m, &series, out_dir.as_deref());
            }
            let m = machine_arg(&opts);
            run_crossover(&m, &opts);
            run_abl_fs(&m, &opts, out_dir.as_deref());
            run_abl_sched(&m, &opts);
            run_abl_sixstep(&m, &opts);
            run_abl_merge(&m, &opts);
            run_abl_fault(&opts, out_dir.as_deref());
            run_abl_trace(&opts, out_dir.as_deref());
            run_abl_timeline(&opts, out_dir.as_deref());
            run_search(&opts);
            run_verify(&m, &opts, out_dir.as_deref());
        }
        _ => unreachable!("command table covers every dispatched name"),
    }
}

fn print_list() {
    println!("figures — commands (flags take a value: --flag VALUE)\n");
    for c in COMMANDS {
        let flags = if c.flags.is_empty() {
            String::new()
        } else {
            format!(
                "  [{}]",
                c.flags
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        };
        println!("  {:<24} {}{}", c.name, c.desc, flags);
    }
    println!("\nmachines: core-duo opteron pentium-d xeon-mp");
    println!("trace/timeline need the instrumented build: --features trace");
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: figures <command> [--flag VALUE ...]\n\
         run `figures list` for every command, its description, and its flags"
    );
    std::process::exit(2);
}

/// Strict flag parsing: every flag must be known to the command and
/// must take a value; stray positional arguments are errors.
fn parse_flags(args: &[String], known: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("stray argument `{a}` (flags are --name VALUE)"));
        };
        if !known.contains(&key) {
            let accepted = if known.is_empty() {
                "no flags".to_string()
            } else {
                known
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            return Err(format!("unknown flag --{key} (accepted: {accepted})"));
        }
        let v = it
            .next()
            .ok_or_else(|| format!("flag --{key} requires a value"))?;
        out.insert(key.to_string(), v.clone());
    }
    Ok(out)
}

fn machine_arg(opts: &HashMap<String, String>) -> MachineSpec {
    let key = opts
        .get("machine")
        .map(String::as_str)
        .unwrap_or("core-duo");
    by_name(key).unwrap_or_else(|| {
        eprintln!("unknown machine {key}");
        usage_and_exit()
    })
}

fn flag_usize(opts: &HashMap<String, String>, key: &str, default: usize) -> usize {
    opts.get(key)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn range(opts: &HashMap<String, String>, dmin: u32, dmax: u32) -> (u32, u32) {
    let min = opts.get("min").and_then(|s| s.parse().ok()).unwrap_or(dmin);
    let max = opts.get("max").and_then(|s| s.parse().ok()).unwrap_or(dmax);
    (min, max.max(min))
}

fn machine_slug(m: &MachineSpec) -> String {
    m.name
        .chars()
        .take_while(|c| *c != '(')
        .collect::<String>()
        .trim()
        .to_lowercase()
        .replace([' ', '.'], "-")
}

/// Write a results artifact, creating its directory if missing. Every
/// failure names the path it was writing — "Permission denied" without
/// a path has cost real debugging time.
fn write_artifact(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                panic!("cannot create output directory {}: {e}", dir.display())
            });
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

fn save_csv(m: &MachineSpec, series: &[Series], out_dir: Option<&str>) {
    if let Some(dir) = out_dir {
        let path = format!("{dir}/fig3_{}.csv", machine_slug(m));
        write_artifact(&path, &ascii::csv(series));
        println!("wrote {path}");
    }
}

fn print_fig3(m: &MachineSpec, series: &[Series]) {
    println!("\nFigure 3 — {} — pseudo-Mflop/s (5 N log2 N / t)", m.name);
    println!("{}", ascii::table(series));
    println!("{}", ascii::chart(&m.name, series, 18));
}

fn run_fig3(m: &MachineSpec, opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 6, 18);
    let series = fig3_series(m, min, max);
    print_fig3(m, &series);
    save_csv(m, &series, out_dir);
    if let (Some(x_sp), Some(x_fw)) = (
        crossover(&series[0], &series[2], 0.02),
        crossover(&series[3], &series[4], 0.02),
    ) {
        println!("parallel pays off: Spiral from 2^{x_sp}, FFTW-like from 2^{x_fw}");
    }
}

fn run_crossover(m: &MachineSpec, opts: &HashMap<String, String>) {
    let (min, max) = range(opts, 6, 15);
    println!("\nCLAIM-XOVER on {} — parallelization crossover", m.name);
    let series = fig3_series(m, min, max);
    let x_sp = crossover(&series[0], &series[2], 0.02);
    let x_fw = crossover(&series[3], &series[4], 0.02);
    println!(
        "  Spiral parallel beats sequential from: {}",
        x_sp.map_or("never in range".into(), |k| format!("2^{k}")),
    );
    println!(
        "  FFTW-like parallel beats sequential from: {}",
        x_fw.map_or("never in range".into(), |k| format!("2^{k}")),
    );
    // Cycle count at the Spiral crossover (paper: 2^8 at < 10k cycles).
    if let Some(k) = x_sp {
        let n = 1usize << k;
        let plans = tune_spiral(n, m);
        if let Some((_t, plan)) = plans.parallel.last() {
            let rep = simulate_plan(plan, m, true);
            println!(
                "  at 2^{k}: parallel run = {:.0} cycles ({:.1} µs, {:.0} pseudo-Mflop/s)",
                rep.cycles, rep.micros, rep.pseudo_mflops
            );
        }
    }
}

/// Host wall-clock comparison of sequential implementations (CLAIM-SEQ):
/// the tuned generated plan vs. the baselines, all on this machine.
fn run_sequential_host(opts: &HashMap<String, String>) {
    use spiral_baselines::{FftwLikeConfig, FftwLikeFft, IterativeFft, StockhamFft};
    use spiral_search::{CostModel, Tuner};
    use spiral_spl::cplx::Cplx;
    use std::time::Instant;
    let (min, max) = range(opts, 8, 14);
    println!("\nCLAIM-SEQ — host wall-clock, sequential (pseudo-Mflop/s, higher=better)");
    println!(
        "{:>7} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "log2n", "spiral(plan)", "spiral(C -O3)", "fftw-like", "iterative", "stockham"
    );
    let time_us = |f: &mut dyn FnMut()| -> f64 {
        f(); // warm
        let reps = 5;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        }
        best
    };
    for k in min..=max {
        let n = 1usize << k;
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new(i as f64, -0.5 * i as f64))
            .collect();
        let tuner = Tuner::new(1, spiral_smp::topology::mu(), CostModel::Analytic);
        let plan = tuner.tune_sequential(n).expect("analytic tuning").plan;
        let t_spiral = time_us(&mut || {
            std::hint::black_box(plan.execute(&x));
        });
        // The paper's actual artifact: emitted C compiled with the
        // platform compiler.
        let t_spiral_c = spiral_bench::cbench::time_emitted_c(&plan, 7);
        let fftw = FftwLikeFft::new(n, FftwLikeConfig::default());
        let t_fftw = time_us(&mut || {
            std::hint::black_box(fftw.run(&x));
        });
        let iter = IterativeFft::new(n);
        let t_iter = time_us(&mut || {
            std::hint::black_box(iter.run(&x));
        });
        let stock = StockhamFft::new(n);
        let t_stock = time_us(&mut || {
            std::hint::black_box(stock.run(&x));
        });
        let pm = |t: f64| spiral_spl::num::pseudo_mflops(n, t);
        println!(
            "{:>7} {:>16.1} {:>16} {:>16.1} {:>16.1} {:>16.1}",
            k,
            pm(t_spiral),
            t_spiral_c.map_or("-".to_string(), |t| format!("{:.1}", pm(t))),
            pm(t_fftw),
            pm(t_iter),
            pm(t_stock)
        );
    }
}

fn run_abl_fs(m: &MachineSpec, opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 8, 14);
    println!(
        "\nABL-FS on {} — false sharing: µ-aware (14) vs µ-oblivious",
        m.name
    );
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "log2n", "spiral FS", "naive FS", "spiral cyc", "naive cyc", "slowdown"
    );
    let rows = false_sharing_ablation(m, min, max);
    for r in &rows {
        println!(
            "{:>7} {:>14} {:>14} {:>14.0} {:>14.0} {:>11.2}x",
            r.log2n,
            r.spiral_false_sharing,
            r.naive_false_sharing,
            r.spiral_cycles,
            r.naive_cycles,
            r.naive_cycles / r.spiral_cycles
        );
    }
    if let Some(dir) = out_dir {
        let path = format!("{dir}/abl_false_sharing_{}.json", machine_slug(m));
        write_artifact(&path, &serde_json::to_string_pretty(&rows).unwrap());
        println!("wrote {path}");
    }
}

fn run_abl_sched(m: &MachineSpec, opts: &HashMap<String, String>) {
    let k = opts.get("size").and_then(|s| s.parse().ok()).unwrap_or(12);
    println!(
        "\nABL-SCHED on {} — block-cyclic grain sweep at 2^{k}",
        m.name
    );
    println!(
        "{:>8} {:>16} {:>14} {:>14}",
        "grain", "false sharing", "cycles", "pMflop/s"
    );
    let mu = m.mu();
    let n = 1usize << k;
    let grains = [1, 2, mu, 4 * mu, n / (2 * m.p)];
    for r in schedule_ablation(m, k, &grains) {
        println!(
            "{:>8} {:>16} {:>14.0} {:>14.0}",
            r.grain, r.false_sharing, r.cycles, r.pmflops
        );
    }
}

fn run_abl_sixstep(m: &MachineSpec, opts: &HashMap<String, String>) {
    let (min, max) = range(opts, 10, 16);
    println!(
        "\nABL-SIXSTEP on {} — multicore CT (14) vs explicit transposes",
        m.name
    );
    println!(
        "{:>7} {:>18} {:>14} {:>18}",
        "log2n", "multicore CT", "six-step", "six-step blocked"
    );
    for r in sixstep_ablation(m, min, max) {
        println!(
            "{:>7} {:>18.0} {:>14.0} {:>18.0}",
            r.log2n, r.multicore_ct_pmflops, r.sixstep_pmflops, r.sixstep_blocked_pmflops
        );
    }
}

fn run_abl_merge(m: &MachineSpec, opts: &HashMap<String, String>) {
    let (min, max) = range(opts, 8, 14);
    println!(
        "\nABL-MERGE on {} — explicit P ⊗̄ I_µ passes vs merged into compute",
        m.name
    );
    println!(
        "{:>7} {:>16} {:>10} {:>16} {:>10} {:>10}",
        "log2n", "explicit cyc", "barriers", "fused cyc", "barriers", "speedup"
    );
    for r in merge_ablation(m, min, max) {
        println!(
            "{:>7} {:>16.0} {:>10} {:>16.0} {:>10} {:>9.2}x",
            r.log2n,
            r.explicit_cycles,
            r.explicit_barriers,
            r.fused_cycles,
            r.fused_barriers,
            r.explicit_cycles / r.fused_cycles
        );
    }
}

/// ABL-FAULT: what the fault-tolerant execution layer costs on the
/// happy path — per-transform time with all guards active, the output
/// finiteness scan alone, and the deadline-bounded barrier round-trip.
fn run_abl_fault(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 8, 14);
    let threads = 2;
    println!("\nABL-FAULT — fault-tolerance overhead on the happy path (p={threads}, host)");
    println!(
        "{:>7} {:>12} {:>10} {:>9} {:>16} {:>12} {:>12} {:>10}",
        "log2n",
        "exec µs",
        "scan µs",
        "scan %",
        "barrier wait µs",
        "compute µs",
        "barrier µs",
        "bar shr %"
    );
    let rows = fault_overhead_ablation(threads, min, max, 5);
    for r in &rows {
        println!(
            "{:>7} {:>12.1} {:>10.2} {:>8.2}% {:>16.2} {:>12.1} {:>12.1} {:>9.2}%",
            r.log2n,
            r.exec_us,
            r.scan_us,
            r.scan_pct,
            r.barrier_wait_us,
            r.compute_us,
            r.barrier_us,
            r.barrier_share_pct
        );
    }
    if rows.iter().all(|r| r.compute_us == 0.0) {
        println!(
            "  (trace-attributed columns need: cargo run -p spiral-bench --features trace ...)"
        );
    }
    if let Some(dir) = out_dir {
        let path = format!("{dir}/abl_fault_overhead.json");
        write_artifact(&path, &serde_json::to_string_pretty(&rows).unwrap());
        println!("wrote {path}");
    }
}

/// ABL-TRACE: wall-clock cost of the observability layer when it is ON
/// (`try_execute` vs `try_execute_traced`). Built without the `trace`
/// feature, the comparison degenerates to plain-vs-plain and shows the
/// noise floor instead (the disabled configuration has no instrumented
/// code at all, so its overhead is structurally zero).
fn run_abl_trace(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 8, 14);
    let threads = opts
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let reps = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(5);
    let mode = if cfg!(feature = "trace") {
        "traced vs plain"
    } else {
        "plain vs plain (noise floor; rebuild with --features trace)"
    };
    println!("\nABL-TRACE — tracing overhead, p={threads}, host ({mode})");
    println!(
        "{:>7} {:>12} {:>12} {:>10}",
        "log2n", "plain µs", "traced µs", "overhead"
    );
    let rows = trace_overhead_ablation(threads, min, max, reps);
    for r in &rows {
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>9.2}%",
            r.log2n, r.plain_us, r.traced_us, r.overhead_pct
        );
    }
    if let Some(dir) = out_dir {
        let path = format!("{dir}/abl_trace_overhead.json");
        write_artifact(&path, &serde_json::to_string_pretty(&rows).unwrap());
        println!("wrote {path}");
    }
}

/// ABL-TIMELINE: wall-clock cost of event-timeline recording when it is
/// ON (`try_execute` vs `try_execute_observed` streaming into a
/// lock-free ring). Built without the `trace` feature, the comparison
/// degenerates to plain-vs-plain and shows the noise floor (the
/// disabled configuration has no instrumented code at all).
fn run_abl_timeline(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 8, 14);
    let threads = opts
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let reps = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(5);
    let mode = if cfg!(feature = "trace") {
        "observed vs plain"
    } else {
        "plain vs plain (noise floor; rebuild with --features trace)"
    };
    println!("\nABL-TIMELINE — event-timeline overhead, p={threads}, host ({mode})");
    println!(
        "{:>7} {:>12} {:>12} {:>10}",
        "log2n", "plain µs", "observed µs", "overhead"
    );
    let rows = timeline_overhead_ablation(threads, min, max, reps);
    for r in &rows {
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>9.2}%",
            r.log2n, r.plain_us, r.observed_us, r.overhead_pct
        );
    }
    if let Some(dir) = out_dir {
        let path = format!("{dir}/abl_timeline_overhead.json");
        write_artifact(&path, &serde_json::to_string_pretty(&rows).unwrap());
        println!("wrote {path}");
    }
}

/// `figures trace`: execute the tuned plan for `--size` with per-stage
/// instrumentation and print the waterfall table of where the run's
/// time went. Requires the `trace` build; prints a rebuild hint
/// otherwise.
#[cfg(not(feature = "trace"))]
fn run_trace(_opts: &HashMap<String, String>, _out_dir: Option<&str>) {
    eprintln!("figures trace needs the instrumented build:");
    eprintln!("  cargo run --release -p spiral-bench --features trace --bin figures -- trace");
    std::process::exit(2);
}

/// `figures trace`: execute the tuned plan for `--size` with per-stage
/// instrumentation and print the waterfall table of where the run's
/// time went.
#[cfg(feature = "trace")]
fn run_trace(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    use spiral_codegen::ParallelExecutor;
    use spiral_search::{CostModel, Tuner};
    use spiral_spl::cplx::Cplx;

    let k: u32 = opts.get("size").and_then(|s| s.parse().ok()).unwrap_or(12);
    let threads = opts
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let reps = 5usize;
    let n = 1usize << k;
    let mu = spiral_smp::topology::mu();
    let tuned = match Tuner::new(threads, mu, CostModel::Analytic).tune_parallel(n) {
        Ok(Some(t)) => t,
        _ => {
            eprintln!("no tunable parallel plan for n=2^{k}, p={threads}, µ={mu}");
            std::process::exit(2);
        }
    };
    let x: Vec<Cplx> = (0..n)
        .map(|i| Cplx::new(i as f64, -0.5 * i as f64))
        .collect();
    let exec = ParallelExecutor::with_auto_barrier(threads);
    let mut merged: Option<spiral_trace::RunProfile> = None;
    for _ in 0..reps {
        let (_, p) = exec
            .try_execute_traced(&tuned.plan, &x)
            .expect("healthy plan must execute");
        merged = Some(match merged.take() {
            Some(m) => m.try_merge(&p).expect("same plan, same shape"),
            None => p,
        });
    }
    let profile = merged.expect("reps >= 1");
    print_waterfall(&profile, &tuned.choice);
    if let Some(dir) = out_dir {
        let path = format!("{dir}/trace_profile_2e{k}_p{threads}.json");
        write_artifact(&path, &profile.to_json());
        println!("wrote {path}");
    }
}

/// Per-stage waterfall of a measured profile: compute/barrier split,
/// imbalance, throughput, and a bar proportional to the stage's share of
/// critical-path compute time.
#[cfg(feature = "trace")]
fn print_waterfall(p: &spiral_trace::RunProfile, choice: &str) {
    println!(
        "\nTRACE — n={} p={} runs={} ({choice})",
        p.n, p.threads, p.runs
    );
    println!(
        "{:>5} {:<20} {:>10} {:>11} {:>11} {:>7} {:>9} {:>10}  waterfall",
        "stage", "label", "elems", "max µs", "mean µs", "imbal", "bar-wait%", "Melem/s"
    );
    let crit_total: u64 = p
        .stages
        .iter()
        .map(|s| s.threads.iter().map(|t| t.compute_ns).max().unwrap_or(0))
        .sum();
    for s in &p.stages {
        let max_ns = s.threads.iter().map(|t| t.compute_ns).max().unwrap_or(0);
        let mean_ns = s.compute_ns() as f64 / s.threads.len().max(1) as f64;
        let wait = s.barrier_wait_ns();
        let busy = s.compute_ns() + wait;
        let wait_pct = if busy > 0 {
            100.0 * wait as f64 / busy as f64
        } else {
            0.0
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let bar_len = if crit_total > 0 {
            (max_ns as f64 / crit_total as f64 * 40.0).round() as usize
        } else {
            0
        };
        println!(
            "{:>5} {:<20} {:>10} {:>11.1} {:>11.1} {:>7.3} {:>8.2}% {:>10.1}  {}",
            s.index,
            s.label,
            s.elements() / p.runs.max(1),
            max_ns as f64 / 1e3 / p.runs.max(1) as f64,
            mean_ns / 1e3 / p.runs.max(1) as f64,
            s.imbalance(),
            wait_pct,
            s.throughput_eps() / 1e6,
            "#".repeat(bar_len)
        );
    }
    println!(
        "totals: compute {:.1} µs, barrier wait {:.1} µs (share {:.2}%), wall {:.1} µs/run, \
         load imbalance {:.3}, worst stage imbalance {:.3}",
        p.total_compute_ns() as f64 / 1e3 / p.runs.max(1) as f64,
        p.total_barrier_wait_ns() as f64 / 1e3 / p.runs.max(1) as f64,
        100.0 * p.barrier_share(),
        p.wall_ns as f64 / 1e3 / p.runs.max(1) as f64,
        p.load_imbalance(),
        p.max_stage_imbalance()
    );
}

/// `figures timeline`: record the tuner search and one observed run
/// into an event timeline and export it as Chrome trace-event JSON.
/// Requires the `trace` build; prints a rebuild hint otherwise.
#[cfg(not(feature = "trace"))]
fn run_timeline(_opts: &HashMap<String, String>, _out_dir: Option<&str>) {
    eprintln!("figures timeline needs the instrumented build:");
    eprintln!("  cargo run --release -p spiral-bench --features trace --bin figures -- timeline");
    std::process::exit(2);
}

/// `figures timeline`: record the tuner search (candidate spans,
/// quarantine marks) and one observed execution (pool jobs, per-stage
/// compute, barrier waits and releases) for `--size` into an event
/// timeline, cross-check the timeline against the run's aggregated
/// `RunProfile` and the static timeline checker, and export Chrome
/// trace-event JSON loadable in Perfetto / `chrome://tracing`.
#[cfg(feature = "trace")]
fn run_timeline(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    use spiral_codegen::ParallelExecutor;
    use spiral_search::{CostModel, Tuner};
    use spiral_spl::cplx::Cplx;
    use spiral_trace::{Timeline, TimelineEventKind};
    use spiral_verify::timeline::{verify_timeline, TlEvent, TlKind};

    let k: u32 = opts.get("size").and_then(|s| s.parse().ok()).unwrap_or(12);
    let threads = opts
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let n = 1usize << k;
    let mu = spiral_smp::topology::mu();
    let timeline = Timeline::new(threads);

    let outcome = Tuner::new(threads, mu, CostModel::Analytic)
        .tune_parallel_report_observed(n, &timeline)
        .unwrap_or_else(|e| {
            eprintln!("tuning failed for n=2^{k}, p={threads}: {e}");
            std::process::exit(2);
        });
    let Some(tuned) = outcome.best else {
        eprintln!("no tunable parallel plan for n=2^{k}, p={threads}, µ={mu}");
        std::process::exit(2);
    };
    let x: Vec<Cplx> = (0..n)
        .map(|i| Cplx::new(i as f64, -0.5 * i as f64))
        .collect();
    let exec = ParallelExecutor::with_auto_barrier(threads);
    let (_, profile) = exec
        .try_execute_observed(&tuned.plan, &x, &timeline)
        .expect("healthy plan must execute");

    let events = timeline.events();
    println!(
        "\nTIMELINE — n={n} p={threads} ({}): {} events, {} dropped",
        tuned.choice,
        events.len(),
        timeline.total_dropped()
    );
    println!(
        "  search: {} candidate span(s), {} quarantine mark(s)",
        outcome.report.evaluated,
        outcome.report.quarantined.len()
    );

    // Cross-check the streamed spans against the independently
    // aggregated RunProfile of the same run: the two instruments must
    // tell the same story (within clock-read jitter).
    let tl_compute = timeline.total_ns(TimelineEventKind::StageCompute);
    let tl_barrier = timeline.total_ns(TimelineEventKind::BarrierWait);
    let agree = |name: &str, tl: u64, prof: u64| {
        let rel = if prof > 0 {
            100.0 * (tl as f64 - prof as f64) / prof as f64
        } else {
            0.0
        };
        println!(
            "  {name}: timeline {:.1} µs vs profile {:.1} µs ({rel:+.2}%)",
            tl as f64 / 1e3,
            prof as f64 / 1e3
        );
    };
    agree("compute", tl_compute, profile.total_compute_ns());
    agree("barrier wait", tl_barrier, profile.total_barrier_wait_ns());

    // Static sanity: non-overlapping per-thread spans, nesting, and one
    // barrier release per thread per synchronized stage.
    let tl_events: Vec<TlEvent> = events
        .iter()
        .map(|e| TlEvent {
            tid: e.tid,
            kind: match e.kind {
                TimelineEventKind::PoolJob => TlKind::PoolJob,
                TimelineEventKind::StageCompute => TlKind::StageCompute,
                TimelineEventKind::BarrierWait => TlKind::BarrierWait,
                TimelineEventKind::TunerCandidate => TlKind::TunerCandidate,
                TimelineEventKind::BatchTransform => TlKind::BatchTransform,
                TimelineEventKind::BarrierRelease => TlKind::BarrierRelease,
                TimelineEventKind::WatchdogFire => TlKind::WatchdogFire,
                TimelineEventKind::TunerReject => TlKind::TunerReject,
                TimelineEventKind::RequestServe => TlKind::RequestServe,
                TimelineEventKind::PoolExecute => TlKind::PoolExecute,
                TimelineEventKind::SloBreach => TlKind::SloBreach,
            },
            stage: e.stage,
            start_ns: e.start_ns,
            end_ns: e.end_ns,
        })
        .collect();
    let diags = verify_timeline(&tl_events, threads, tuned.plan.steps.len());
    if diags.is_empty() {
        println!("  checker: timeline is well-formed");
    } else {
        println!("  checker: {} finding(s)", diags.len());
        for d in diags.iter().take(5) {
            println!("    {}", d.detail);
        }
    }

    if let Some(dir) = out_dir {
        let labels: Vec<String> = tuned.plan.steps.iter().map(|s| s.label()).collect();
        let path = format!("{dir}/timeline_2e{k}_p{threads}.json");
        write_artifact(&path, &timeline.chrome_trace(&labels));
        println!("wrote {path} (load in Perfetto or chrome://tracing)");
    }
}

/// ABL-VERIFY: run the static analyzer on the tuned µ-aware plan and on
/// the µ-oblivious baseline schedule, and cross-check both verdicts
/// against the simulator's dynamic false-sharing counter.
fn run_verify(m: &MachineSpec, opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 8, 14);
    println!(
        "\nABL-VERIFY on {} — static analyzer vs dynamic simulator",
        m.name
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "log2n",
        "spiral diag",
        "spiral sFS",
        "spiral dFS",
        "naive diag",
        "naive sFS",
        "naive dFS",
        "agree"
    );
    let rows = verification_ablation(m, min, max);
    for r in &rows {
        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
            r.log2n,
            r.spiral_diagnostics,
            r.spiral_static_false_sharing,
            r.spiral_sim_false_sharing,
            r.naive_diagnostics,
            r.naive_static_false_sharing,
            r.naive_sim_false_sharing,
            r.verdicts_agree
        );
    }
    // Show what a rejection looks like: the analyzer's findings on the
    // µ-oblivious schedule at the smallest size.
    if let Some(r) = rows.first() {
        let sched = spiral_verify::baseline::FftwLikeSchedule {
            n: 1usize << r.log2n,
            threads: m.p,
            grain: 1,
        };
        let report = spiral_verify::verify_fftw_like(
            &sched,
            m.mu(),
            &spiral_verify::VerifyOptions::default(),
        );
        for d in report.diagnostics.iter().take(3) {
            println!("  naive 2^{}: {}", r.log2n, d.detail);
        }
    }
    if let Some(dir) = out_dir {
        let path = format!("{dir}/abl_verify_{}.json", machine_slug(m));
        write_artifact(&path, &serde_json::to_string_pretty(&rows).unwrap());
        println!("wrote {path}");
    }
}

fn run_batch(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 6, 10);
    let threads: usize = opts
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let batch: usize = opts.get("batch").and_then(|s| s.parse().ok()).unwrap_or(32);
    let reps: usize = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(5);
    let sizes: Vec<u32> = (min..=max).collect();
    println!(
        "\nBATCH — {batch} independent transforms per dispatch vs one-at-a-time, p={threads}, host"
    );
    println!(
        "{:>7} {:>5} {:>14} {:>14} {:>9}",
        "log2n", "batch", "single µs/tf", "batched µs/tf", "speedup"
    );
    let rows = spiral_bench::batch::measure_batch_rows(&sizes, &[1, threads], batch, reps);
    for r in &rows {
        println!(
            "{:>7} {:>5} {:>14.1} {:>14.1} {:>8.2}x   p={} [{}]",
            r.log2n, r.batch, r.single_us, r.batch_us, r.speedup, r.threads, r.batch_choice
        );
    }
    if let Some(dir) = out_dir {
        let path = format!("{dir}/batch_throughput.json");
        write_artifact(&path, &serde_json::to_string_pretty(&rows).unwrap());
        println!("wrote {path}");
    }
}

/// ABL-SIMD: the tuner winner compiled under both backends — the
/// `vec(ν)` tag stripped or added at the detected width — and timed on
/// the host; the recorded evidence behind the bench history's backend
/// dimension.
fn run_abl_simd(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    use spiral_bench::simd_ablation::{simd_ablation, validate_file};

    let (min, max) = range(opts, 8, 12);
    let threads: usize = opts
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let reps: usize = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("\nABL-SIMD — scalar vs vec(ν) backend, n = 2^{min}..2^{max}, p={threads}, host");
    let file = simd_ablation(min, max, threads, reps);
    validate_file(&file).expect("sweep artifact must be internally consistent");
    if file.detected_nu <= 1 {
        println!(
            "host is scalar-only (detected ν = {}); no backend pair to ablate \
             (force-scalar build?)",
            file.detected_nu
        );
    } else {
        println!(
            "{:>7} {:>3} {:>3} {:>12} {:>12} {:>9}   plan",
            "log2n", "p", "ν", "scalar µs", "vector µs", "speedup"
        );
        for r in &file.rows {
            println!(
                "{:>7} {:>3} {:>3} {:>12.1} {:>12.1} {:>8.2}x   [{}]",
                r.log2n, r.threads, r.nu, r.scalar_us, r.vector_us, r.speedup, r.plan_kind
            );
        }
        let losses: Vec<u64> = file
            .rows
            .iter()
            .filter(|r| r.log2n >= 8 && r.speedup < 1.0)
            .map(|r| r.log2n)
            .collect();
        if losses.is_empty() {
            println!(
                "vector backend ≥ scalar at every measured n ≥ 2^8 (ν = {})",
                file.detected_nu
            );
        } else {
            println!(
                "WARNING: vector backend slower than scalar at log2n = {losses:?} \
                 — the tuner will keep picking scalar there"
            );
        }
    }
    if let Some(dir) = out_dir {
        let path = format!("{dir}/simd_ablation.json");
        write_artifact(&path, &serde_json::to_string_pretty(&file).unwrap());
        println!("wrote {path}");
    }
}

fn run_certify(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 2, 6);
    let threads: usize = opts
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!(
        "\nCERT — exact symbolic + dataflow certification, n = 2^{min}..2^{max}, p ≤ {threads}"
    );
    let file = spiral_bench::certify::certification_sweep(min, max, threads);
    println!(
        "{:>7} {:>3} {:>3} {:<42} {:>9} {:>9}",
        "n", "p", "µ", "shape", "dataflow", "symbolic"
    );
    for r in &file.rows {
        let sym = match r.symbolic_certified {
            Some(true) => "proven",
            Some(false) => "REJECTED",
            None => "skipped",
        };
        let df = if r.dataflow_certified {
            "ok"
        } else {
            "REJECTED"
        };
        println!(
            "{:>7} {:>3} {:>3} {:<42} {:>9} {:>9}",
            r.n, r.threads, r.mu, r.shape, df, sym
        );
        for f in &r.findings {
            println!("        {f}");
        }
    }
    println!(
        "{}/{} plan shapes certified (symbolic limit n ≤ {})",
        file.certified, file.total, file.symbolic_limit
    );
    if let Some(dir) = out_dir {
        let path = format!("{dir}/certify_report.json");
        write_artifact(&path, &serde_json::to_string_pretty(&file).unwrap());
        println!("wrote {path}");
    }
    if file.certified != file.total {
        std::process::exit(1);
    }
}

/// SERVE-LOAD: drive the network tier through the single / warm /
/// overload phases, record the artifact, optionally append the grid
/// points to a bench history, and gate on the robustness contract:
/// zero client-visible protocol errors, warm p99 within the deadline,
/// overload actually shed (`Overloaded` seen), and — under
/// `--require-warm 1` — zero tuner invocations (the warm-path
/// invariant).
fn run_dist(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    let (min, max) = range(opts, 8, 12);
    let threads = flag_usize(opts, "threads", 2);
    let budget = flag_usize(opts, "budget", 4);
    let reps = flag_usize(opts, "reps", 3);
    let m = machine_arg(opts);
    let mu = spiral_smp::topology::mu();
    let fig = spiral_bench::dist_fig::run_dist_figure(min, max, threads, mu, budget, reps, &m);
    println!(
        "DIST — fleet vs single process (host measured; predicted on {}; budget {})",
        fig.sim_machine, fig.budget
    );
    if !fig.fleet_available {
        println!("  (no dist-worker binary found: measured fleet columns are absent)");
    }
    println!(
        "  {:<6} {:>12} {:>12} {:>9} {:>10} {:>8}",
        "n", "single µs", "fleet µs", "speedup", "sim win?", "tuner"
    );
    for r in &fig.rows {
        let best = r
            .fleet
            .iter()
            .min_by(|a, b| a.measured_us.total_cmp(&b.measured_us));
        let (fleet_us, speedup) = best.map_or((f64::NAN, f64::NAN), |f| (f.measured_us, f.speedup));
        println!(
            "  2^{:<4} {:>12.1} {:>12.1} {:>8.2}x {:>10} {:>8}",
            r.log2n,
            r.single_us,
            fleet_us,
            speedup,
            if r.sim_predicts_win {
                format!("dist({})", r.sim_best_q)
            } else {
                "no".to_string()
            },
            if r.tuner_selects_dist {
                "dist"
            } else {
                "single"
            },
        );
    }
    match (fig.measured_crossover_log2n, fig.sim_crossover_log2n) {
        (0, 0) => println!(
            "  no crossover, measured or predicted: the exchange cost dominates on this grid, \
             and the tuner agrees (never selects dist)"
        ),
        (m_x, s_x) => println!(
            "  crossover: measured at {} / predicted at {}",
            if m_x == 0 {
                "never".to_string()
            } else {
                format!("2^{m_x}")
            },
            if s_x == 0 {
                "never".to_string()
            } else {
                format!("2^{s_x}")
            },
        ),
    }
    if let Some(dir) = out_dir {
        let path = std::path::Path::new(dir).join("dist_throughput.json");
        std::fs::write(&path, spiral_bench::dist_fig::to_json(&fig)).expect("write dist figure");
        println!("  wrote {}", path.display());
    }
}

fn run_serve_load(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    use spiral_bench::serve_load::{measure_serve_load, ServeLoadOpts};

    let (min, max) = range(opts, 6, 8);
    let mut slo = ServeLoadOpts {
        min_log2n: min,
        max_log2n: max,
        ..ServeLoadOpts::default()
    };
    if let Some(v) = opts.get("workers").and_then(|s| s.parse().ok()) {
        slo.workers = v;
    }
    if let Some(v) = opts.get("connections").and_then(|s| s.parse().ok()) {
        slo.connections = v;
    }
    if let Some(v) = opts.get("requests").and_then(|s| s.parse().ok()) {
        slo.requests_per_conn = v;
    }
    if let Some(v) = opts.get("batch").and_then(|s| s.parse().ok()) {
        slo.batch = v;
    }
    if let Some(v) = opts.get("deadline-ms").and_then(|s| s.parse().ok()) {
        slo.deadline_ms = v;
    }
    slo.wisdom = opts.get("wisdom").map(std::path::PathBuf::from);
    let require_warm = matches!(opts.get("require-warm").map(String::as_str), Some("1"));

    println!(
        "\nSERVE-LOAD — wire round-trips, n = 2^{min}..2^{max}, batch {}, \
         warm {} conn(s), overload {}x",
        slo.batch, slo.connections, slo.overload_factor
    );
    let file = match measure_serve_load(&slo) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("serve-load: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>6} {:>9} {:>5} {:>7} {:>6} {:>7} {:>7} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "log2n",
        "phase",
        "conns",
        "reqs",
        "ok",
        "ovld",
        "expired",
        "err",
        "p50 µs",
        "p95 µs",
        "p99 µs",
        "resp/s"
    );
    for r in &file.rows {
        println!(
            "{:>6} {:>9} {:>5} {:>7} {:>6} {:>7} {:>7} {:>5} {:>9} {:>9} {:>9} {:>9.0}",
            r.log2n,
            r.phase,
            r.connections,
            r.requests,
            r.ok,
            r.overloaded,
            r.expired,
            r.errors,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.rps
        );
    }
    println!(
        "tuner invocations across the run: {}",
        file.tuner_invocations
    );

    // The shed-don't-buffer criterion, recorded per size: the overload
    // phase's admitted p99 against 2x the single-client p99.
    for k in min..=max {
        let single = file
            .rows
            .iter()
            .find(|r| r.log2n == u64::from(k) && r.phase == "single");
        let over = file
            .rows
            .iter()
            .find(|r| r.log2n == u64::from(k) && r.phase == "overload");
        if let (Some(s), Some(o)) = (single, over) {
            if o.ok > 0 && s.p99_us > 0 {
                let ratio = o.p99_us as f64 / s.p99_us as f64;
                println!(
                    "  n=2^{k}: admitted-under-overload p99 = {:.2}x single-client p99 {}",
                    ratio,
                    if ratio <= 2.0 {
                        "(within 2x)"
                    } else {
                        "(over 2x — expected when the client storm shares the server's CPUs)"
                    }
                );
            }
        }
    }

    if let Some(dir) = out_dir {
        let path = format!("{dir}/serve_load.json");
        write_artifact(&path, &serde_json::to_string_pretty(&file).unwrap());
        println!("wrote {path}");
    }
    if let Some(hist_path) = opts.get("history") {
        match append_serve_history(&file, std::path::Path::new(hist_path)) {
            Ok(count) => println!("history: appended {count} grid point(s) to {hist_path}"),
            Err(e) => {
                eprintln!("serve-load: history append failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut failures = Vec::new();
    let protocol_errors: u64 = file.rows.iter().map(|r| r.protocol_errors).sum();
    if protocol_errors > 0 {
        failures.push(format!(
            "{protocol_errors} client-visible protocol error(s)"
        ));
    }
    let deadline_us = if file.deadline_ms == 0 {
        1_000_000 // the server's default 1 s budget
    } else {
        file.deadline_ms * 1000
    };
    for r in file.rows.iter().filter(|r| r.phase == "warm") {
        if r.ok < r.requests {
            failures.push(format!(
                "warm phase n=2^{} did not admit everything ({}/{} ok)",
                r.log2n, r.ok, r.requests
            ));
        }
        if r.p99_us >= deadline_us {
            failures.push(format!(
                "warm phase n=2^{} p99 {} µs breaches the {} µs deadline",
                r.log2n, r.p99_us, deadline_us
            ));
        }
    }
    let overloaded: u64 = file
        .rows
        .iter()
        .filter(|r| r.phase == "overload")
        .map(|r| r.overloaded)
        .sum();
    if overloaded == 0 {
        failures.push("overload phase saw no Overloaded responses — nothing was shed".to_string());
    }
    if require_warm && file.tuner_invocations > 0 {
        failures.push(format!(
            "--require-warm 1, but the tuner ran {} time(s) — wisdom was cold or stale",
            file.tuner_invocations
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("serve-load FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("serve-load: contract holds (shed under overload, warm p99 within deadline)");
}

/// Append the serve-load grid points as one run in a bench history
/// file (creating it if missing).
fn append_serve_history(
    file: &spiral_bench::serve_load::ServeLoadFile,
    path: &std::path::Path,
) -> Result<usize, String> {
    use spiral_bench::history::{BenchHistory, BenchRun};
    let entries = spiral_bench::serve_load::rows_to_entries(file);
    if entries.is_empty() {
        return Err("no successful requests to record".to_string());
    }
    let count = entries.len();
    let mut history = BenchHistory::load(path)?;
    history.append(BenchRun {
        seq: 0, // assigned by append
        unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        host: file.host.clone(),
        entries,
    });
    history.validate()?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    history.save(path)?;
    Ok(count)
}

/// The SERVE-DASH dashboard artifact: one warm load run's telemetry,
/// fetched over the wire (`SS01`) and cross-checked against the drain
/// report, plus the forced-shed tallies that exercised the flight
/// recorder.
#[derive(serde::Serialize, serde::Deserialize)]
struct ServeDashFile {
    /// Artifact layout version.
    schema: u64,
    /// Execution-pool threads behind the served plans.
    workers: u64,
    /// Warm-phase connections.
    connections: u64,
    /// Transform size as log2 n.
    log2n: u64,
    /// Transforms per request.
    batch: u64,
    /// `Ok` responses in the warm phase.
    warm_ok: u64,
    /// `Overloaded` responses in the forced-shed burst.
    shed_overloaded: u64,
    /// `Expired` responses in the forced-shed burst.
    shed_expired: u64,
    /// SLO breaches the server recorded (shed or over-budget).
    slo_breaches: u64,
    /// The server's own latency percentiles (zeros without `trace`).
    server: spiral_bench::serve_load::ServerLatencySummary,
    /// Full drain-time metrics snapshot (counters, gauges, histograms).
    metrics: spiral_serve::MetricsSnapshot,
}

fn run_serve_dash(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    use spiral_serve::{drive, Client, LoadSpec, PlanService, Server, ServerConfig, StatsKind};
    use std::sync::Arc;

    let log2n: u32 = opts.get("size").and_then(|s| s.parse().ok()).unwrap_or(8);
    let workers: usize = opts
        .get("workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let conns: usize = opts
        .get("connections")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .max(1);
    let requests: usize = opts
        .get("requests")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let batch: usize = opts.get("batch").and_then(|s| s.parse().ok()).unwrap_or(8);
    let n = 1usize << log2n;

    let service = Arc::new(PlanService::new(workers, spiral_smp::topology::mu()));
    if let Err(e) = service.sequential_plan(n) {
        eprintln!("serve-dash: planning DFT_{n} failed: {e}");
        std::process::exit(1);
    }
    let flight_path =
        out_dir.map(|dir| std::path::PathBuf::from(format!("{dir}/flight_record_shed.json")));
    let cfg = ServerConfig {
        workers: conns,
        conn_backlog: conns,
        queue_bound: conns * 2,
        flight_record_path: flight_path.clone(),
        ..ServerConfig::default()
    };
    let server = match Server::start(Arc::clone(&service), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-dash: server failed to start: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();

    println!("\nSERVE-DASH — n = 2^{log2n}, batch {batch}, {conns} warm conn(s)");
    let warm = drive(&LoadSpec {
        addr,
        connections: conns,
        requests_per_conn: requests,
        n,
        batch,
        deadline_ms: 0,
        reconnect_per_request: false,
        seed: 11,
    });
    println!("warm: {} ok / {} responses", warm.ok, warm.responses());

    // Telemetry over the wire, exactly as a monitoring agent would
    // fetch it: both exposition formats through the SS01 frame.
    let wire_requests = match Client::connect(addr) {
        Ok(mut c) => {
            let json = c.stats(StatsKind::Json).unwrap_or_default();
            let prom = c.stats(StatsKind::Prom).unwrap_or_default();
            println!(
                "SS01: JSON snapshot {} bytes, Prometheus exposition {} bytes",
                json.len(),
                prom.len()
            );
            spiral_serve::MetricsSnapshot::from_json(&json)
                .ok()
                .and_then(|s| s.counter("serve_requests_total"))
        }
        Err(e) => {
            eprintln!("serve-dash: stats connection failed: {e}");
            None
        }
    };

    // Forced shed: a reconnect-per-request burst past admission with a
    // 1 ms deadline — expiries and rejects, each an SLO breach, the
    // first of which persists the flight record.
    let shed = drive(&LoadSpec {
        addr,
        connections: conns * 4,
        requests_per_conn: (requests / 4).max(2),
        n,
        batch,
        deadline_ms: 1,
        reconnect_per_request: true,
        seed: 13,
    });
    println!(
        "forced shed: {} overloaded, {} expired, {} ok",
        shed.overloaded, shed.expired, shed.ok
    );

    let report = server.shutdown();
    if report.thread_panics > 0 {
        eprintln!("serve-dash: server lost a thread");
        std::process::exit(1);
    }
    let m = &report.metrics;
    if let (Some(wire), Some(fin)) = (wire_requests, m.counter("serve_requests_total")) {
        // The wire snapshot predates the shed burst; it can only lag.
        if wire > fin {
            eprintln!("serve-dash: wire snapshot ahead of drain accounting ({wire} > {fin})");
            std::process::exit(1);
        }
    }
    let dash = ServeDashFile {
        schema: 1,
        workers: workers as u64,
        connections: conns as u64,
        log2n: u64::from(log2n),
        batch: batch as u64,
        warm_ok: warm.ok,
        shed_overloaded: shed.overloaded,
        shed_expired: shed.expired,
        slo_breaches: m.counter("serve_slo_breaches_total").unwrap_or(0),
        server: spiral_bench::serve_load::ServerLatencySummary::from_metrics(m),
        metrics: report.metrics.clone(),
    };
    println!(
        "drain: {} requests, {} SLO breach(es), server p50/p99/p999 = {}/{}/{} µs",
        m.counter("serve_requests_total").unwrap_or(0),
        dash.slo_breaches,
        dash.server.p50_us,
        dash.server.p99_us,
        dash.server.p999_us
    );
    if let Some(dir) = out_dir {
        let path = format!("{dir}/serve_dash.json");
        write_artifact(&path, &serde_json::to_string_pretty(&dash).unwrap());
        println!("wrote {path}");
    }
    match &flight_path {
        Some(p) if p.exists() => println!("wrote {} (SLO-breach flight record)", p.display()),
        Some(p) => println!(
            "no flight record at {} — built without --features trace, or nothing breached",
            p.display()
        ),
        None => {}
    }
}

fn run_abl_serve_metrics(opts: &HashMap<String, String>, out_dir: Option<&str>) {
    use spiral_bench::serve_load::{measure_metrics_overhead, ServeLoadOpts};

    let log2n: u32 = opts.get("size").and_then(|s| s.parse().ok()).unwrap_or(8);
    let mut slo = ServeLoadOpts {
        min_log2n: log2n,
        max_log2n: log2n,
        requests_per_conn: 64,
        ..ServeLoadOpts::default()
    };
    if let Some(v) = opts.get("workers").and_then(|s| s.parse().ok()) {
        slo.workers = v;
    }
    if let Some(v) = opts.get("connections").and_then(|s| s.parse().ok()) {
        slo.connections = v;
    }
    if let Some(v) = opts.get("requests").and_then(|s| s.parse().ok()) {
        slo.requests_per_conn = v;
    }
    if let Some(v) = opts.get("batch").and_then(|s| s.parse().ok()) {
        slo.batch = v;
    }

    println!(
        "\nABL-SERVE-METRICS — warm phase n = 2^{log2n}, batch {}, {} conn(s), \
         telemetry recording off vs on",
        slo.batch, slo.connections
    );
    let file = match measure_metrics_overhead(&slo) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ablation-serve-metrics: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>8} {:>7} {:>6} {:>9} {:>9} {:>9}",
        "metrics", "reqs", "ok", "p50 µs", "p99 µs", "resp/s"
    );
    for r in &file.rows {
        println!(
            "{:>8} {:>7} {:>6} {:>9} {:>9} {:>9.0}",
            if r.metrics_enabled { "on" } else { "off" },
            r.requests,
            r.ok,
            r.p50_us,
            r.p99_us,
            r.rps
        );
    }
    println!(
        "overhead: p50 {:+.2}%, p99 {:+.2}% (target: ~1%; without --features trace the \
         histograms are compiled out and this measures the bare seam)",
        file.overhead_pct_p50, file.overhead_pct_p99
    );
    if let Some(dir) = out_dir {
        let path = format!("{dir}/abl_serve_metrics.json");
        write_artifact(&path, &serde_json::to_string_pretty(&file).unwrap());
        println!("wrote {path}");
    }
    // Gate only on gross regressions: single-digit-percent numbers on a
    // busy CI host are noise, an order of magnitude is a bug.
    if file.overhead_pct_p50 > 25.0 {
        eprintln!(
            "ablation-serve-metrics FAIL: p50 overhead {:.2}% is far past the ~1% budget",
            file.overhead_pct_p50
        );
        std::process::exit(1);
    }
}

fn run_search(opts: &HashMap<String, String>) {
    let m = machine_arg(opts);
    println!(
        "\nSEARCH-DP on {} — simulated cycles (lower=better)",
        m.name
    );
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "log2n", "DP", "(evals)", "random", "evolve", "radix-2"
    );
    for r in search_comparison(&m, &[8, 10, 12]) {
        println!(
            "{:>7} {:>12.0} {:>10} {:>12.0} {:>12.0} {:>12.0}",
            r.log2n, r.dp_cycles, r.dp_evaluated, r.random_cycles, r.evolve_cycles, r.radix2_cycles
        );
    }
}
