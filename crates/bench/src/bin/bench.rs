//! `bench` — the benchmark-history CLI.
//!
//! ```text
//! bench history record  [--out FILE] [--sizes 8,10] [--threads 1,2] [--reps 5] [--batch 32]
//! bench history compare [--file FILE] [--mad-factor 4.0] [--min-drop 0.05]
//! bench history show    [--file FILE]
//! ```
//!
//! `record` measures a (sizes × threads) grid of tuned transforms and
//! appends a run to the history file (default
//! `results/BENCH_<host>.json`, file created on first use). `compare`
//! checks the latest run against the most recent earlier run on the
//! same host and exits 1 if any grid point regressed beyond its
//! noise-aware threshold — the CI contract. `show` prints the stored
//! trajectories as sparklines.

use spiral_bench::ascii::sparkline;
use spiral_bench::history::{compare_latest, measure_grid, BenchHistory, BenchHost, CompareOpts};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "usage:
  bench history record  [--out FILE] [--sizes 8,10] [--threads 1,2] [--reps 5] [--batch 32]
  bench history compare [--file FILE] [--mad-factor 4.0] [--min-drop 0.05]
  bench history show    [--file FILE]";

fn run(args: &[String]) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("history") => history_cmd(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".to_string()),
    }
}

fn history_cmd(args: &[String]) -> Result<i32, String> {
    let (sub, rest) = args
        .split_first()
        .ok_or("missing history subcommand (record | compare | show)")?;
    let flags = parse_flags(rest, flag_names(sub)?)?;
    match sub.as_str() {
        "record" => record(&flags),
        "compare" => compare(&flags),
        "show" => show(&flags),
        _ => unreachable!(),
    }
}

fn flag_names(sub: &str) -> Result<&'static [&'static str], String> {
    match sub {
        "record" => Ok(&["--out", "--sizes", "--threads", "--reps", "--batch"]),
        "compare" => Ok(&["--file", "--mad-factor", "--min-drop"]),
        "show" => Ok(&["--file"]),
        other => Err(format!(
            "unknown history subcommand `{other}` (record | compare | show)"
        )),
    }
}

/// Strict flag parsing: every flag must be known and take a value; stray
/// positional arguments are errors.
fn parse_flags(args: &[String], known: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if !known.contains(&a.as_str()) {
            return Err(format!(
                "unexpected argument `{a}` (known flags: {})",
                known.join(", ")
            ));
        }
        let v = it
            .next()
            .ok_or_else(|| format!("flag {a} requires a value"))?;
        out.push((a.clone(), v.clone()));
    }
    Ok(out)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn default_path() -> PathBuf {
    PathBuf::from(format!(
        "results/BENCH_{}.json",
        BenchHost::current().slug()
    ))
}

fn history_path(flags: &[(String, String)], key: &str) -> PathBuf {
    flag(flags, key).map_or_else(default_path, PathBuf::from)
}

fn parse_list(s: &str, what: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad {what} entry `{t}`"))
        })
        .collect()
}

fn record(flags: &[(String, String)]) -> Result<i32, String> {
    let path = history_path(flags, "--out");
    let sizes: Vec<u32> = parse_list(flag(flags, "--sizes").unwrap_or("8,10"), "--sizes")?
        .into_iter()
        .map(|k| u32::try_from(k).expect("log2 size fits u32"))
        .collect();
    let threads = parse_list(flag(flags, "--threads").unwrap_or("1,2"), "--threads")?;
    let reps: usize = flag(flags, "--reps")
        .unwrap_or("5")
        .parse()
        .map_err(|_| "bad --reps value".to_string())?;

    let batch: Option<usize> = match flag(flags, "--batch") {
        Some(v) => Some(v.parse().map_err(|_| "bad --batch value".to_string())?),
        None => None,
    };

    let mut history = BenchHistory::load(&path)?;
    let mut run = measure_grid(&sizes, &threads, reps);
    if let Some(b) = batch {
        // Batched grid points ride along in the same run, keyed by
        // (log2n, threads, batch) so compare/trajectory track them
        // separately from the batch=1 grid.
        let rows = spiral_bench::batch::measure_batch_rows(&sizes, &threads, b, reps);
        run.entries
            .extend(spiral_bench::batch::rows_to_entries(&rows, reps));
    }
    if run.entries.is_empty() {
        return Err("no grid point was measurable (sizes too small for the thread counts?)".into());
    }
    println!(
        "recorded run on {} ({} grid points, {} reps each):",
        run.host.name,
        run.entries.len(),
        reps
    );
    for e in &run.entries {
        println!(
            "  n=2^{:<2} p={} b={:<3} c={:<3} {:>8.1} µs (±{:.1})  {:>6.3} GF/s (±{:.3})  [{}]",
            e.log2n,
            e.threads,
            e.batch,
            e.connections,
            e.median_us,
            e.mad_us,
            e.gflops,
            e.gflops_mad,
            e.plan_kind
        );
    }
    history.append(run);
    history.validate()?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    history.save(&path)?;
    println!(
        "history: {} run(s) in {}",
        history.runs.len(),
        path.display()
    );
    Ok(0)
}

fn compare(flags: &[(String, String)]) -> Result<i32, String> {
    let path = history_path(flags, "--file");
    let opts = CompareOpts {
        mad_factor: flag(flags, "--mad-factor")
            .unwrap_or("4.0")
            .parse()
            .map_err(|_| "bad --mad-factor value".to_string())?,
        min_rel_drop: flag(flags, "--min-drop")
            .unwrap_or("0.05")
            .parse()
            .map_err(|_| "bad --min-drop value".to_string())?,
    };
    let history = BenchHistory::load(&path)?;
    let Some(report) = compare_latest(&history, &opts) else {
        println!(
            "{}: no runs recorded yet — nothing to compare",
            path.display()
        );
        return Ok(0);
    };
    if report.lines.is_empty() {
        println!(
            "{}: no comparable baseline (first run on this host, or new grid points); \
             {} point(s) unmatched",
            path.display(),
            report.unmatched
        );
        return Ok(0);
    }
    println!(
        "comparing latest run against baseline ({}; threshold = max({}·MAD/base, {:.0}%)):",
        path.display(),
        opts.mad_factor,
        100.0 * opts.min_rel_drop
    );
    for l in &report.lines {
        println!(
            "  n=2^{:<2} p={} b={:<3} c={:<3} {:>6.3} → {:>6.3} GF/s  {:>+6.1}% (tol {:.1}%)  {}  {}",
            l.log2n,
            l.threads,
            l.batch,
            l.connections,
            l.base_gflops,
            l.cur_gflops,
            100.0 * l.rel_delta,
            100.0 * l.threshold,
            sparkline(&l.trajectory),
            if l.regressed { "REGRESSED" } else { "ok" }
        );
    }
    if report.unmatched > 0 {
        println!("  ({} point(s) had no baseline)", report.unmatched);
    }
    let regressions = report.regressions();
    if regressions > 0 {
        println!("{regressions} regression(s) detected");
        return Ok(1);
    }
    println!("no regressions");
    Ok(0)
}

fn show(flags: &[(String, String)]) -> Result<i32, String> {
    let path = history_path(flags, "--file");
    let history = BenchHistory::load(&path)?;
    if history.runs.is_empty() {
        println!("{}: empty history", path.display());
        return Ok(0);
    }
    println!(
        "{}: {} run(s), schema v{}",
        path.display(),
        history.runs.len(),
        history.schema
    );
    let latest = history.runs.last().expect("non-empty");
    println!(
        "latest: run #{} on {} ({} cores, µ={})",
        latest.seq, latest.host.name, latest.host.fingerprint.cores, latest.host.fingerprint.mu
    );
    for e in &latest.entries {
        let traj = history.trajectory(
            e.log2n,
            e.threads,
            e.batch,
            e.connections,
            e.processes,
            &e.backend,
            &latest.host.name,
        );
        println!(
            "  n=2^{:<2} p={} b={:<3} c={:<3} q={:<2} {:<6} {:>6.3} GF/s  {}  ({} run(s))",
            e.log2n,
            e.threads,
            e.batch,
            e.connections,
            e.processes,
            e.backend,
            e.gflops,
            sparkline(&traj),
            traj.len()
        );
    }
    Ok(0)
}
