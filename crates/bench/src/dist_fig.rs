//! DIST — measured multi-process fleet throughput against the
//! single-process winner, next to the simulator's exchange-cost
//! prediction.
//!
//! The paper's multicore story stops at threads; the `dist(q)` tier
//! adds a process boundary whose scatter/gather traffic is *modeled*
//! (`spiral_sim::estimate_dist`) before it is ever paid. This figure
//! closes the loop: for each size it measures the tuned single-process
//! plan and the same plan sharded over a real worker fleet, then checks
//! that the model's verdict (crossover or no crossover) agrees with
//! what the model-driven tuner actually selects. The run *asserts* the
//! agreement either way — a disagreement is a bug in the cost model's
//! wiring, not a data point.

use crate::history::{median, BenchHost};
use serde::Serialize;
use spiral_codegen::plan::Plan;
use spiral_codegen::shard::shard_plan;
use spiral_codegen::ParallelExecutor;
use spiral_dist::{DistConfig, DistExecutor};
use spiral_search::{CostModel, Tuner};
use spiral_sim::MachineSpec;
use spiral_spl::builder::dist_tag;
use spiral_spl::cplx::Cplx;
use std::time::Instant;

/// One measured fleet point at a given size.
#[derive(Clone, Debug, Serialize)]
pub struct DistFleetPoint {
    /// Worker process count.
    pub q: u64,
    /// Median wall-clock µs per transform through the fleet (scatter,
    /// worker compute, gather, manager tail — the full request path).
    pub measured_us: f64,
    /// `single_us / measured_us` (>1 = the fleet wins).
    pub speedup: f64,
    /// Whether the fleet's shard accounting balanced exactly at
    /// shutdown (it must).
    pub accounting_exact: bool,
}

/// One size's row: the single-process baseline, every fleet point, and
/// the model-side verdicts.
#[derive(Clone, Debug, Serialize)]
pub struct DistFigRow {
    /// Transform size as log2 n.
    pub log2n: u64,
    /// The single-process tuner winner measured as the baseline.
    pub choice: String,
    /// Median wall-clock µs per transform, single process.
    pub single_us: f64,
    /// Measured fleet points (empty when no worker binary is present).
    pub fleet: Vec<DistFleetPoint>,
    /// Whether the simulator's exchange-cost model predicts any
    /// `dist(q)` beating the single-process plan at this size.
    pub sim_predicts_win: bool,
    /// The winning q under the model (0 = the model predicts none).
    pub sim_best_q: u64,
    /// Whether the Sim-model tuner with this process budget selected a
    /// `dist(q)` plan at this size.
    pub tuner_selects_dist: bool,
    /// `sim_predicts_win == tuner_selects_dist` — asserted by the run.
    pub agreement: bool,
}

/// The whole DIST artifact (`results/dist_throughput.json`).
#[derive(Clone, Debug, Serialize)]
pub struct DistFigure {
    /// Artifact layout version.
    pub schema: u64,
    /// Host the measured columns ran on.
    pub host: String,
    /// Machine model behind the predicted columns.
    pub sim_machine: String,
    /// Process budget offered to the tuner and the fleet.
    pub budget: u64,
    /// Timing repetitions per measured point.
    pub reps: u64,
    /// Whether a worker binary was found (measured fleet columns exist).
    pub fleet_available: bool,
    /// Per-size rows.
    pub rows: Vec<DistFigRow>,
    /// Smallest measured size where some fleet point beat the single
    /// process (`0` = never — the expected outcome on a small host).
    pub measured_crossover_log2n: u64,
    /// Smallest size where the model predicts a fleet win (`0` = none).
    pub sim_crossover_log2n: u64,
    /// Every row's model-vs-tuner agreement held.
    pub agreement_all: bool,
}

/// Artifact layout version for [`DistFigure`].
pub const DIST_FIG_SCHEMA: u64 = 1;

fn time_reps(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut times = Vec::with_capacity(reps);
    // One warm-up repetition, then the measured ones.
    for rep in 0..=reps {
        let t0 = Instant::now();
        run();
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        if rep > 0 {
            times.push(dt);
        }
    }
    median(&times)
}

/// Measure the DIST sweep over `2^min ..= 2^max` with `budget` worker
/// processes allowed, on `threads`-thread plans, predicting on
/// `machine`.
///
/// Panics when a row's model-vs-tuner verdicts disagree: the tuner
/// prices `dist(q)` through the very estimate reported here, so any
/// mismatch means the wiring between them broke.
pub fn run_dist_figure(
    min: u32,
    max: u32,
    threads: usize,
    mu: usize,
    budget: usize,
    reps: usize,
    machine: &MachineSpec,
) -> DistFigure {
    let reps = reps.max(2);
    let fleet_available = spiral_dist::worker_binary().is_ok();
    let mut rows = Vec::new();
    for k in min..=max {
        let n = 1usize << k;
        // Deterministic single-process winner (the fleet baseline and
        // the plan every fleet variant re-shards).
        let Ok(Some(base)) = Tuner::new(threads, mu, CostModel::Analytic).tune_parallel(n) else {
            continue;
        };
        let exec = (base.plan.threads > 1).then(|| ParallelExecutor::with_auto_barrier(threads));
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new(i as f64 / n as f64, -(i as f64) / n as f64))
            .collect();
        let single_us = time_reps(reps, || {
            let out = match &exec {
                Some(e) => e
                    .try_execute(&base.plan, &x)
                    .expect("healthy tuned plan must execute"),
                None => base.plan.execute(&x),
            };
            std::hint::black_box(out);
        });

        // Model verdict: does any admissible q beat the simulated
        // single-process cycles on `machine`?
        let sim_base = spiral_sim::simulate_plan(&base.plan, machine, true).cycles;
        let mut sim_best_q = 0u64;
        let mut sim_best_cycles = sim_base;
        for q in [2usize, 4] {
            if q > budget {
                continue;
            }
            let Ok(plan) = Plan::from_formula(&dist_tag(q, base.formula.clone()), threads, mu)
            else {
                continue;
            };
            let plan = plan.fuse_exchanges();
            let Ok(spec) = shard_plan(&plan, q) else {
                continue;
            };
            let est = spiral_sim::estimate_dist(&plan, &spec, machine, budget, true);
            if est.cycles < sim_best_cycles {
                sim_best_cycles = est.cycles;
                sim_best_q = q as u64;
            }
        }
        let sim_predicts_win = sim_best_q != 0;

        // Tuner verdict: same model, same budget, full search.
        let tuner_selects_dist = Tuner::new(
            threads,
            mu,
            CostModel::Sim {
                machine: machine.clone(),
                warm: true,
            },
        )
        .with_process_budget(budget)
        .tune_parallel(n)
        .ok()
        .flatten()
        .is_some_and(|t| t.choice.contains("dist("));

        // Measured fleet points over real worker processes.
        let mut fleet = Vec::new();
        if fleet_available {
            for q in [2usize, 4] {
                if q > budget {
                    continue;
                }
                let tagged = dist_tag(q, base.formula.clone());
                let Ok(mut ex) = DistExecutor::new(&tagged, threads, mu, q, DistConfig::default())
                else {
                    continue;
                };
                let mut out = vec![Cplx::ZERO; n];
                let measured_us = time_reps(reps, || {
                    ex.execute_into(&x, &mut out)
                        .expect("healthy fleet must execute");
                    std::hint::black_box(&out);
                });
                let report = ex.shutdown();
                fleet.push(DistFleetPoint {
                    q: q as u64,
                    measured_us,
                    speedup: single_us / measured_us.max(1e-9),
                    accounting_exact: report.accounting.is_exact(),
                });
            }
        }

        let agreement = sim_predicts_win == tuner_selects_dist;
        assert!(
            agreement,
            "n=2^{k}: the model predicts dist win = {sim_predicts_win} but the tuner \
             selected dist = {tuner_selects_dist}; the tuner prices dist through this \
             same estimate, so they cannot disagree"
        );
        rows.push(DistFigRow {
            log2n: u64::from(k),
            choice: base.choice,
            single_us,
            fleet,
            sim_predicts_win,
            sim_best_q,
            tuner_selects_dist,
            agreement,
        });
    }

    let measured_crossover_log2n = rows
        .iter()
        .find(|r| r.fleet.iter().any(|f| f.speedup > 1.0))
        .map_or(0, |r| r.log2n);
    let sim_crossover_log2n = rows
        .iter()
        .find(|r| r.sim_predicts_win)
        .map_or(0, |r| r.log2n);
    DistFigure {
        schema: DIST_FIG_SCHEMA,
        host: BenchHost::current().name,
        sim_machine: machine.name.to_string(),
        budget: budget as u64,
        reps: reps as u64,
        fleet_available,
        rows,
        measured_crossover_log2n,
        sim_crossover_log2n,
        agreement_all: true, // asserted row by row above
    }
}

/// Render the artifact as pretty JSON.
pub fn to_json(fig: &DistFigure) -> String {
    serde_json::to_string_pretty(fig).expect("DistFigure serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_produces_consistent_rows() {
        let m = spiral_sim::core_duo();
        let fig = run_dist_figure(8, 9, 2, 4, 2, 2, &m);
        assert_eq!(fig.schema, DIST_FIG_SCHEMA);
        assert!(!fig.rows.is_empty());
        assert!(fig.agreement_all);
        for r in &fig.rows {
            assert!(r.single_us > 0.0, "{r:?}");
            assert!(r.agreement);
            for f in &r.fleet {
                assert!(f.measured_us > 0.0);
                assert!(f.accounting_exact, "{f:?}");
            }
        }
        let s = to_json(&fig);
        assert!(s.contains("\"sim_machine\""));
        assert!(s.contains("\"agreement_all\": true"));
    }

    #[test]
    fn budget_of_one_yields_no_fleet_and_no_predictions() {
        let m = spiral_sim::core_duo();
        let fig = run_dist_figure(8, 8, 2, 4, 1, 2, &m);
        for r in &fig.rows {
            assert!(r.fleet.is_empty());
            assert!(!r.sim_predicts_win);
            assert!(!r.tuner_selects_dist);
        }
        assert_eq!(fig.sim_crossover_log2n, 0);
        assert_eq!(fig.measured_crossover_log2n, 0);
    }
}
