//! ABL-SIMD — the short-vector backend vs the scalar interpreter.
//!
//! For every size in a sweep, compile the tuner's winning formula
//! *twice* — once with the `vec(ν)` tag at the host's detected lane
//! width and once without — and time both on the host. The two plans
//! differ only in which kernel stages take the ν-lane path, so the
//! ratio is the vectorization speedup and nothing else: same split
//! tree, same twiddles, same exchange fusion. The artifact
//! (`results/simd_ablation.json`) is the recorded evidence behind the
//! backend dimension of the bench history: vector points must earn
//! their keep against the scalar interpreter, not against a strawman.

use crate::history::BenchHost;
use serde::{Deserialize, Serialize};
use spiral_codegen::plan::Plan;
use spiral_codegen::ParallelExecutor;
use spiral_search::{CostModel, Tuner};
use spiral_spl::cplx::Cplx;
use spiral_spl::Spl;
use std::time::Instant;

/// Schema version of [`SimdAblationFile`]. Bump on any shape change.
pub const SIMD_ABLATION_SCHEMA_VERSION: u32 = 1;

/// One size's scalar-vs-vector pair: the same formula compiled under
/// both backends and timed on the host.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimdAblationRow {
    /// log2 of the transform size.
    pub log2n: u64,
    /// Thread count both plans ran at.
    pub threads: u64,
    /// Lane width ν of the vector plan (≥ 2 by construction).
    pub nu: u64,
    /// The shared split strategy (tuner choice, `vec(ν)` tag stripped).
    pub plan_kind: String,
    /// Scalar-backend µs per transform (min over reps).
    pub scalar_us: f64,
    /// Vector-backend µs per transform (min over reps).
    pub vector_us: f64,
    /// `scalar_us / vector_us` — the short-vector win.
    pub speedup: f64,
}

/// The `simd_ablation.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimdAblationFile {
    /// Schema version ([`SIMD_ABLATION_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Host the sweep ran on.
    pub host: BenchHost,
    /// SIMD width the backend detected (1 on scalar-only hosts and
    /// under `force-scalar` builds — the sweep then records no rows).
    pub detected_nu: u64,
    /// Per-size scalar/vector pairs.
    pub rows: Vec<SimdAblationRow>,
}

/// Internal-consistency check for a sweep artifact (also applied to
/// files re-read from disk by CI).
pub fn validate_file(f: &SimdAblationFile) -> Result<(), String> {
    if f.schema != SIMD_ABLATION_SCHEMA_VERSION {
        return Err(format!(
            "simd ablation schema {} (expected {})",
            f.schema, SIMD_ABLATION_SCHEMA_VERSION
        ));
    }
    if f.detected_nu < 1 {
        return Err("detected_nu must be ≥ 1".into());
    }
    for r in &f.rows {
        if r.nu < 2 {
            return Err(format!("row n=2^{}: vector row with ν={}", r.log2n, r.nu));
        }
        if !(r.scalar_us > 0.0 && r.vector_us > 0.0) {
            return Err(format!("row n=2^{}: non-positive timing", r.log2n));
        }
        let want = r.scalar_us / r.vector_us;
        if !r.speedup.is_finite() || (r.speedup - want).abs() > 1e-9 * want.abs() {
            return Err(format!(
                "row n=2^{}: speedup {} inconsistent with timings",
                r.log2n, r.speedup
            ));
        }
    }
    Ok(())
}

/// Minimum wall-clock µs of `f` over `reps + 1` invocations; the extra
/// first call is the warm-up, and min-of-reps suppresses scheduler
/// noise the same way the paper's timing loops do.
fn min_time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..=reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Sweep `n = 2^min_log2 .. 2^max_log2` at one thread count, pairing
/// each tuner winner with its counterpart on the other backend (the
/// `vec(ν)` tag stripped or added, same derivation as the bench grid).
/// Sizes where the tag does not take (no stage aligns at ν) are
/// skipped; on a scalar-only host the sweep records no rows at all
/// rather than a degenerate 1.0× comparison.
pub fn simd_ablation(
    min_log2: u32,
    max_log2: u32,
    threads: usize,
    reps: usize,
) -> SimdAblationFile {
    let reps = reps.max(2);
    let threads = threads.max(1);
    let mu = spiral_smp::topology::mu();
    let nu = spiral_codegen::detected_simd_width();
    let exec = (threads > 1).then(|| ParallelExecutor::with_auto_barrier(threads));
    let mut rows = Vec::new();
    if nu > 1 {
        for k in min_log2..=max_log2.max(min_log2) {
            let n = 1usize << k;
            let Ok(Some(tuned)) = Tuner::new(threads, mu, CostModel::Analytic).tune_parallel(n)
            else {
                continue;
            };
            let fuse = |plan: Plan| {
                if plan.threads > 1 {
                    plan.fuse_exchanges()
                } else {
                    plan
                }
            };
            // The winner plus its counterpart from the same formula
            // modulo the vec(ν) tag.
            let pair = if tuned.plan.vec_width > 1 {
                let Spl::Vec { a, .. } = &tuned.formula else {
                    continue;
                };
                let Ok(scalar) = Plan::from_formula(a, tuned.plan.threads, mu) else {
                    continue;
                };
                let base = tuned
                    .choice
                    .split(" + vec(")
                    .next()
                    .unwrap_or(&tuned.choice)
                    .to_string();
                Some((fuse(scalar), tuned.plan.clone(), base))
            } else {
                let tagged = spiral_spl::builder::vec_tag(nu, tuned.formula.clone());
                match Plan::from_formula(&tagged, tuned.plan.threads, mu) {
                    Ok(vector) => {
                        let vector = fuse(vector);
                        (vector.vec_width > 1)
                            .then(|| (tuned.plan.clone(), vector, tuned.choice.clone()))
                    }
                    Err(_) => None,
                }
            };
            let Some((scalar_plan, vector_plan, plan_kind)) = pair else {
                continue;
            };
            let x: Vec<Cplx> = (0..n)
                .map(|i| Cplx::new(i as f64 / n as f64, -(i as f64) / n as f64))
                .collect();
            let time = |plan: &Plan| {
                min_time_us(reps, || {
                    let out = match &exec {
                        Some(e) if plan.threads > 1 => e
                            .try_execute(plan, &x)
                            .expect("healthy tuned plan must execute"),
                        _ => plan.execute(&x),
                    };
                    std::hint::black_box(out);
                })
            };
            let scalar_us = time(&scalar_plan);
            let vector_us = time(&vector_plan);
            rows.push(SimdAblationRow {
                log2n: u64::from(k),
                threads: threads as u64,
                nu: vector_plan.vec_width as u64,
                plan_kind,
                scalar_us,
                vector_us,
                speedup: scalar_us / vector_us,
            });
        }
    }
    SimdAblationFile {
        schema: SIMD_ABLATION_SCHEMA_VERSION,
        host: BenchHost::current(),
        detected_nu: nu as u64,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_pairs_both_backends_and_validates() {
        let f = simd_ablation(6, 8, 1, 2);
        assert_eq!(f.schema, SIMD_ABLATION_SCHEMA_VERSION);
        validate_file(&f).expect("sweep artifact is internally consistent");
        if f.detected_nu <= 1 {
            // force-scalar build or scalar-only host: no comparison rows.
            assert!(f.rows.is_empty());
            return;
        }
        assert!(!f.rows.is_empty(), "vector host must produce pairs");
        for r in &f.rows {
            assert_eq!(r.threads, 1);
            assert!(r.nu >= 2);
            // plan_kind is the shared strategy; the tag is the ablated
            // variable, never part of the key.
            assert!(!r.plan_kind.contains("+ vec("));
        }
    }

    #[test]
    fn validation_rejects_inconsistent_rows() {
        let mut f = simd_ablation(6, 6, 1, 2);
        f.rows.push(SimdAblationRow {
            log2n: 6,
            threads: 1,
            nu: 4,
            plan_kind: "test".into(),
            scalar_us: 10.0,
            vector_us: 5.0,
            speedup: 7.0, // not scalar/vector
        });
        assert!(validate_file(&f).unwrap_err().contains("inconsistent"));
        f.rows.last_mut().unwrap().speedup = 2.0;
        f.rows.last_mut().unwrap().nu = 1;
        assert!(validate_file(&f).unwrap_err().contains("ν=1"));
    }

    #[test]
    fn serializes_round_trip() {
        let f = simd_ablation(6, 6, 1, 2);
        let json = serde_json::to_string(&f).unwrap();
        let back: SimdAblationFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, f.schema);
        assert_eq!(back.rows.len(), f.rows.len());
        assert_eq!(back.detected_nu, f.detected_nu);
    }
}
