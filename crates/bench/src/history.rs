//! Longitudinal benchmark history: record → store → compare.
//!
//! A single benchmark run answers "how fast is it now"; the paper's
//! engineering claims need "is it *still* that fast" — a perf trajectory
//! that survives across commits. This module maintains a
//! schema-versioned `BENCH_<host>.json` file of repeated runs: each run
//! measures a (size × threads) grid of tuned transforms with a
//! median-of-k + MAD protocol and stores throughput in pseudo-GFLOP/s
//! (`5·n·log₂n / t`, the FFT benchmarking convention), plus the host it
//! ran on. Comparison is *noise-aware*: a current entry regresses only
//! if it falls below its baseline by more than a MAD-scaled threshold,
//! so a noisy container doesn't cry wolf while a real 2× slowdown is
//! always flagged.
//!
//! Timing artifacts from different machines are incomparable, so every
//! run carries its [`BenchHost`] and comparison only pairs runs whose
//! host names match — recording on a new machine starts a fresh
//! trajectory inside the same file rather than comparing apples to
//! pears.

use serde::{Deserialize, Serialize};
use spiral_smp::topology::HostFingerprint;
use std::time::Instant;

/// Version stamp of the serialized [`BenchHistory`] layout; guarded by
/// the golden snapshot under `results/bench_history_schema.json`.
///
/// * v1 — initial layout (PR 4).
/// * v2 — host identity moved into the shared
///   [`spiral_smp::topology::HostFingerprint`] block (adds `features`),
///   and entries gained the `batch` grid dimension.
/// * v3 — entries gained the `connections` grid dimension, so the
///   served-throughput-under-concurrency points from `figures
///   serve-load` live in the same trajectory file as the in-process
///   grid (`connections = 1` for everything measured in-process).
/// * v4 — entries gained the `backend` grid dimension (`"scalar"` |
///   `"vector"`), so short-vector measurements never compare against
///   scalar baselines. v3 files migrate on load: every pre-existing
///   point was measured by the scalar interpreter and is stamped
///   `"scalar"`.
/// * v5 — entries gained the tail percentiles `p99_us`/`p999_us`
///   (per-transform, like `median_us`), so the serving tier's latency
///   tails are trended longitudinally alongside throughput. v4 files
///   migrate on load with `0.0` (= tails not measured for that point).
/// * v6 — entries gained the `processes` grid dimension: how many
///   worker processes executed the transform (`1` = in-process; `>1`
///   only for `dist(q)` fleet measurements from `figures dist`). A
///   comparison key, so fleet points trend against fleet baselines
///   only. v5 files migrate on load with `processes: 1`.
pub const BENCH_SCHEMA_VERSION: u64 = 6;

/// The `backend` value for points executed by the scalar interpreter.
pub const BACKEND_SCALAR: &str = "scalar";
/// The `backend` value for points executed by the short-vector backend.
pub const BACKEND_VECTOR: &str = "vector";

/// The backend label for a plan executing with short-vector width
/// `vec_width` (1 = scalar).
pub fn backend_label(vec_width: usize) -> &'static str {
    if vec_width > 1 {
        BACKEND_VECTOR
    } else {
        BACKEND_SCALAR
    }
}

/// The backend label implied by a tuner choice string: vec-tagged
/// winners carry a `"+ vec(ν)"` suffix.
pub fn backend_from_choice(choice: &str) -> &'static str {
    if choice.contains("+ vec(") {
        BACKEND_VECTOR
    } else {
        BACKEND_SCALAR
    }
}

/// The machine a benchmark run executed on: a human-facing name plus
/// the workspace-wide hardware [`HostFingerprint`] (the same identity
/// block `spiral-trace` profiles and `spiral-serve` wisdom carry).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchHost {
    /// Host name (kernel hostname; `"unknown-host"` when unavailable).
    pub name: String,
    /// Hardware identity (cores, µ, line size, compiled features).
    pub fingerprint: HostFingerprint,
}

impl BenchHost {
    /// The current host.
    pub fn current() -> BenchHost {
        BenchHost {
            name: hostname(),
            fingerprint: HostFingerprint::current(),
        }
    }

    /// Filesystem-safe slug of the host name (for `BENCH_<slug>.json`).
    pub fn slug(&self) -> String {
        let s: String = self
            .name
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let trimmed = s.trim_matches('-');
        if trimmed.is_empty() {
            "unknown-host".to_string()
        } else {
            trimmed.to_string()
        }
    }
}

fn hostname() -> String {
    #[cfg(target_os = "linux")]
    if let Ok(s) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let s = s.trim();
        if !s.is_empty() {
            return s.to_string();
        }
    }
    std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown-host".to_string())
}

/// One measured grid point: the tuned transform of size `2^log2n` at
/// `threads` threads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Transform size as log2 n.
    pub log2n: u64,
    /// Thread count.
    pub threads: u64,
    /// Independent transforms dispatched per request: `1` is the classic
    /// per-transform path; `>1` is a `BatchExecutor` grid point. Timing
    /// fields are always *per transform*, so batched and unbatched
    /// entries report comparable throughput.
    pub batch: u64,
    /// Concurrent client connections the measurement was taken under:
    /// `1` for every in-process grid point; `>1` only for network
    /// serve-load points, where `median_us` is the per-request
    /// round-trip over the wire rather than a bare execute.
    pub connections: u64,
    /// Worker processes that executed the transform: `1` for every
    /// in-process point; `q` for a `dist(q)` fleet point (the manager
    /// process is not counted). A comparison key.
    pub processes: u64,
    /// Execution backend of the measured plan: [`BACKEND_SCALAR`] or
    /// [`BACKEND_VECTOR`]. A comparison key — a vector point only ever
    /// compares against earlier vector points, never a scalar baseline
    /// (and vice versa).
    pub backend: String,
    /// What the tuner picked (e.g. `"multicore split 64x64"`); carried
    /// for interpretation, not used as a comparison key — the tuner may
    /// legitimately flip between equivalent splits across runs.
    pub plan_kind: String,
    /// Repetitions measured.
    pub reps: u64,
    /// Median wall-clock µs per transform over the reps.
    pub median_us: f64,
    /// Median absolute deviation of the per-rep µs.
    pub mad_us: f64,
    /// 99th-percentile µs per transform (`0.0` = not measured; tails
    /// need more samples than the in-process grid's default reps).
    pub p99_us: f64,
    /// 99.9th-percentile µs per transform (`0.0` = not measured).
    pub p999_us: f64,
    /// Median pseudo-GFLOP/s over the reps (`5·n·log₂n / t`).
    pub gflops: f64,
    /// MAD of the per-rep pseudo-GFLOP/s.
    pub gflops_mad: f64,
}

/// One recorded benchmark run: a grid of entries plus provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchRun {
    /// Run sequence number within the file (1-based, strictly
    /// increasing).
    pub seq: u64,
    /// Unix timestamp of the run in milliseconds.
    pub unix_ms: u64,
    /// Host the run executed on.
    pub host: BenchHost,
    /// Measured grid points.
    pub entries: Vec<BenchEntry>,
}

/// The whole stored history: schema version + runs, oldest first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchHistory {
    /// Serialization layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Recorded runs, oldest first.
    pub runs: Vec<BenchRun>,
}

impl Default for BenchHistory {
    fn default() -> BenchHistory {
        BenchHistory {
            schema: BENCH_SCHEMA_VERSION,
            runs: Vec::new(),
        }
    }
}

impl BenchHistory {
    /// Parse a history file's contents. v3 files (pre-`backend`) are
    /// migrated in place: every v3 point was measured by the scalar
    /// interpreter, so migration stamps `backend: "scalar"` and bumps
    /// the schema, preserving existing trajectories as the scalar
    /// baseline the new vector points sit alongside.
    pub fn from_json(s: &str) -> Result<BenchHistory, String> {
        let mut v: serde::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        migrate_v3(&mut v);
        migrate_v4(&mut v);
        migrate_v5(&mut v);
        let h = BenchHistory::from_value(&v).map_err(|e| e.to_string())?;
        h.validate()?;
        Ok(h)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BenchHistory serializes")
    }

    /// Load from `path`; a missing file is an empty history.
    pub fn load(path: &std::path::Path) -> Result<BenchHistory, String> {
        match std::fs::read_to_string(path) {
            Ok(s) => BenchHistory::from_json(&s),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(BenchHistory::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Write to `path` as pretty JSON.
    pub fn save(&self, path: &std::path::Path) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Structural validity: known schema, strictly increasing run
    /// sequence numbers, finite non-negative measurements.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported bench history schema {} (this build reads {})",
                self.schema, BENCH_SCHEMA_VERSION
            ));
        }
        let mut prev_seq = 0u64;
        for run in &self.runs {
            if run.seq <= prev_seq {
                return Err(format!(
                    "run sequence numbers must strictly increase: {} after {prev_seq}",
                    run.seq
                ));
            }
            prev_seq = run.seq;
            for e in &run.entries {
                let finite = [e.median_us, e.mad_us, e.gflops, e.gflops_mad]
                    .iter()
                    .all(|v| v.is_finite());
                if !finite || e.median_us <= 0.0 || e.gflops <= 0.0 || e.reps == 0 {
                    return Err(format!(
                        "run {}: entry (n=2^{}, p={}) has degenerate measurements: {e:?}",
                        run.seq, e.log2n, e.threads
                    ));
                }
                if e.backend != BACKEND_SCALAR && e.backend != BACKEND_VECTOR {
                    return Err(format!(
                        "run {}: entry (n=2^{}, p={}) has unknown backend {:?} \
                         (expected {BACKEND_SCALAR:?} or {BACKEND_VECTOR:?})",
                        run.seq, e.log2n, e.threads, e.backend
                    ));
                }
            }
        }
        Ok(())
    }

    /// Append `run`, assigning the next sequence number.
    pub fn append(&mut self, mut run: BenchRun) {
        run.seq = self.runs.last().map_or(0, |r| r.seq) + 1;
        self.runs.push(run);
    }

    /// The gflops trajectory of one grid point across all runs on
    /// `host_name`, oldest first (for sparklines). Runs missing the
    /// point are skipped.
    #[allow(clippy::too_many_arguments)]
    pub fn trajectory(
        &self,
        log2n: u64,
        threads: u64,
        batch: u64,
        connections: u64,
        processes: u64,
        backend: &str,
        host_name: &str,
    ) -> Vec<f64> {
        self.runs
            .iter()
            .filter(|r| r.host.name == host_name)
            .filter_map(|r| {
                r.entries
                    .iter()
                    .find(|e| {
                        e.log2n == log2n
                            && e.threads == threads
                            && e.batch == batch
                            && e.connections == connections
                            && e.processes == processes
                            && e.backend == backend
                    })
                    .map(|e| e.gflops)
            })
            .collect()
    }
}

/// In-place v3 → v4 schema migration on the parsed JSON tree: stamp
/// `backend: "scalar"` onto every entry (all v3 measurements were
/// scalar-interpreter runs) and rewrite the schema number. Any other
/// schema version passes through untouched for `validate` to judge.
fn migrate_v3(v: &mut serde::Value) {
    fn get_mut<'a>(v: &'a mut serde::Value, key: &str) -> Option<&'a mut serde::Value> {
        match v {
            serde::Value::Obj(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, x)| x),
            _ => None,
        }
    }
    if v.get("schema").and_then(serde::Value::as_f64) != Some(3.0) {
        return;
    }
    if let Some(serde::Value::Arr(runs)) = get_mut(v, "runs") {
        for run in runs {
            if let Some(serde::Value::Arr(entries)) = get_mut(run, "entries") {
                for e in entries {
                    if let serde::Value::Obj(fields) = e {
                        if !fields.iter().any(|(k, _)| k == "backend") {
                            fields.push((
                                "backend".to_string(),
                                serde::Value::Str(BACKEND_SCALAR.to_string()),
                            ));
                        }
                    }
                }
            }
        }
    }
    if let Some(s) = get_mut(v, "schema") {
        *s = serde::Value::Num(4.0);
    }
}

/// In-place v5 → v6 migration: entries gain the `processes` grid
/// dimension, stamped `1` — every pre-v6 measurement ran in-process.
fn migrate_v5(v: &mut serde::Value) {
    fn get_mut<'a>(v: &'a mut serde::Value, key: &str) -> Option<&'a mut serde::Value> {
        match v {
            serde::Value::Obj(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, x)| x),
            _ => None,
        }
    }
    if v.get("schema").and_then(serde::Value::as_f64) != Some(5.0) {
        return;
    }
    if let Some(serde::Value::Arr(runs)) = get_mut(v, "runs") {
        for run in runs {
            if let Some(serde::Value::Arr(entries)) = get_mut(run, "entries") {
                for e in entries {
                    if let serde::Value::Obj(fields) = e {
                        if !fields.iter().any(|(k, _)| k == "processes") {
                            fields.push(("processes".to_string(), serde::Value::Num(1.0)));
                        }
                    }
                }
            }
        }
    }
    if let Some(s) = get_mut(v, "schema") {
        *s = serde::Value::Num(6.0);
    }
}

/// In-place v4 → v5 migration: entries gain the tail percentiles,
/// stamped `0.0` (= not measured) for every pre-existing point.
fn migrate_v4(v: &mut serde::Value) {
    fn get_mut<'a>(v: &'a mut serde::Value, key: &str) -> Option<&'a mut serde::Value> {
        match v {
            serde::Value::Obj(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, x)| x),
            _ => None,
        }
    }
    if v.get("schema").and_then(serde::Value::as_f64) != Some(4.0) {
        return;
    }
    if let Some(serde::Value::Arr(runs)) = get_mut(v, "runs") {
        for run in runs {
            if let Some(serde::Value::Arr(entries)) = get_mut(run, "entries") {
                for e in entries {
                    if let serde::Value::Obj(fields) = e {
                        for key in ["p99_us", "p999_us"] {
                            if !fields.iter().any(|(k, _)| k == key) {
                                fields.push((key.to_string(), serde::Value::Num(0.0)));
                            }
                        }
                    }
                }
            }
        }
    }
    if let Some(s) = get_mut(v, "schema") {
        *s = serde::Value::Num(5.0);
    }
}

/// `5·n·log₂n / t` in GFLOP/s, for a size-`n` transform taking `us`
/// microseconds.
pub fn pseudo_gflops(n: usize, us: f64) -> f64 {
    if us <= 0.0 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2() / (us * 1e3)
}

/// Median of a sample (empty → 0).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let m = v.len() / 2;
    if v.len() % 2 == 1 {
        v[m]
    } else {
        0.5 * (v[m - 1] + v[m])
    }
}

/// Median absolute deviation from the median — the robust spread
/// estimate the regression threshold is scaled by.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Nearest-rank percentile of a sample, `p` in `[0, 100]` (empty → 0).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = (p.clamp(0.0, 100.0) / 100.0 * v.len() as f64).ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = (rank as usize).saturating_sub(1).min(v.len() - 1);
    v[idx]
}

/// Measure the (sizes × threads) grid on this host: tune each point
/// with the analytic model, run `reps` repetitions through the
/// fault-tolerant parallel path (or the plain sequential executor at
/// p=1), and summarize with median + MAD. Points the tuner cannot
/// produce (e.g. `(pµ)² ∤ n`) are skipped.
///
/// Each grid point is measured under *both* execution backends when the
/// host supports short vectors: the tuner's winner provides one of the
/// two, and the counterpart plan is derived from the same formula (the
/// `vec(ν)` tag stripped for the scalar point, or added at the detected
/// width for the vector point). Points where the counterpart fails to
/// vectorize (or the host is scalar-only) record the scalar entry alone.
pub fn measure_grid(sizes_log2: &[u32], threads: &[usize], reps: usize) -> BenchRun {
    use spiral_codegen::plan::Plan;
    use spiral_codegen::ParallelExecutor;
    use spiral_search::{CostModel, Tuner};
    use spiral_spl::cplx::Cplx;
    use spiral_spl::Spl;

    let reps = reps.max(2);
    let mu = spiral_smp::topology::mu();
    let host_nu = spiral_codegen::detected_simd_width();
    let mut entries = Vec::new();
    for &p in threads {
        let exec = (p > 1).then(|| ParallelExecutor::with_auto_barrier(p));
        for &k in sizes_log2 {
            let n = 1usize << k;
            let Ok(Some(tuned)) = Tuner::new(p.max(1), mu, CostModel::Analytic).tune_parallel(n)
            else {
                continue;
            };
            // The winner plus its counterpart on the other backend,
            // compiled from the same formula modulo the vec(ν) tag.
            let mut variants: Vec<(Plan, String)> =
                vec![(tuned.plan.clone(), tuned.choice.clone())];
            if tuned.plan.vec_width > 1 {
                if let Spl::Vec { a, .. } = &tuned.formula {
                    if let Ok(plan) = Plan::from_formula(a, tuned.plan.threads, mu) {
                        let plan = if plan.threads > 1 {
                            plan.fuse_exchanges()
                        } else {
                            plan
                        };
                        let base_choice = tuned
                            .choice
                            .split(" + vec(")
                            .next()
                            .unwrap_or(&tuned.choice)
                            .to_string();
                        variants.push((plan, base_choice));
                    }
                }
            } else if host_nu > 1 {
                let tagged = spiral_spl::builder::vec_tag(host_nu, tuned.formula.clone());
                if let Ok(plan) = Plan::from_formula(&tagged, tuned.plan.threads, mu) {
                    let plan = if plan.threads > 1 {
                        plan.fuse_exchanges()
                    } else {
                        plan
                    };
                    if plan.vec_width > 1 {
                        let choice = format!("{} + vec({})", tuned.choice, plan.vec_width);
                        variants.push((plan, choice));
                    }
                }
            }
            let x: Vec<Cplx> = (0..n)
                .map(|i| Cplx::new(i as f64 / n as f64, -(i as f64) / n as f64))
                .collect();
            for (plan, choice) in variants {
                let mut times_us = Vec::with_capacity(reps);
                // One warm-up rep (cold caches, lazy pool spin-up), then
                // the measured ones.
                for rep in 0..=reps {
                    let t0 = Instant::now();
                    let out = match &exec {
                        Some(e) => e
                            .try_execute(&plan, &x)
                            .expect("healthy tuned plan must execute"),
                        None => plan.execute(&x),
                    };
                    let dt = t0.elapsed().as_secs_f64() * 1e6;
                    std::hint::black_box(out);
                    if rep > 0 {
                        times_us.push(dt);
                    }
                }
                let per_rep_gflops: Vec<f64> =
                    times_us.iter().map(|&us| pseudo_gflops(n, us)).collect();
                entries.push(BenchEntry {
                    log2n: k as u64,
                    threads: p as u64,
                    batch: 1,
                    connections: 1,
                    processes: 1,
                    backend: backend_label(plan.vec_width).to_string(),
                    plan_kind: choice,
                    reps: reps as u64,
                    median_us: median(&times_us),
                    mad_us: mad(&times_us),
                    p99_us: percentile(&times_us, 99.0),
                    p999_us: percentile(&times_us, 99.9),
                    gflops: median(&per_rep_gflops),
                    gflops_mad: mad(&per_rep_gflops),
                });
            }
        }
    }
    BenchRun {
        seq: 0, // assigned by BenchHistory::append
        unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        host: BenchHost::current(),
        entries,
    }
}

/// Regression-detection knobs.
#[derive(Clone, Copy, Debug)]
pub struct CompareOpts {
    /// The relative threshold is at least `mad_factor · MAD / baseline`
    /// — how many robust standard-deviation-equivalents of noise a drop
    /// must exceed.
    pub mad_factor: f64,
    /// Floor on the relative threshold, so near-zero-MAD baselines don't
    /// flag sub-percent jitter.
    pub min_rel_drop: f64,
}

impl Default for CompareOpts {
    fn default() -> CompareOpts {
        CompareOpts {
            mad_factor: 4.0,
            min_rel_drop: 0.05,
        }
    }
}

/// One grid point's comparison verdict.
#[derive(Clone, Debug)]
pub struct CompareLine {
    /// Transform size as log2 n.
    pub log2n: u64,
    /// Thread count.
    pub threads: u64,
    /// Transforms per dispatched request (1 = unbatched).
    pub batch: u64,
    /// Concurrent connections (1 = in-process measurement).
    pub connections: u64,
    /// Worker processes (1 = in-process; q for a dist(q) fleet point).
    pub processes: u64,
    /// Execution backend (`"scalar"` | `"vector"`), a comparison key.
    pub backend: String,
    /// Current run's tuner choice.
    pub plan_kind: String,
    /// Baseline pseudo-GFLOP/s (most recent earlier run, same host).
    pub base_gflops: f64,
    /// Current pseudo-GFLOP/s.
    pub cur_gflops: f64,
    /// `(cur - base) / base`: negative = slower.
    pub rel_delta: f64,
    /// The noise-aware relative drop that would have been tolerated.
    pub threshold: f64,
    /// Whether the drop exceeds the threshold.
    pub regressed: bool,
    /// Gflops trajectory across all same-host runs (for sparklines).
    pub trajectory: Vec<f64>,
}

/// Comparison of the latest run against its per-host baseline.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Per-point verdicts, grid order.
    pub lines: Vec<CompareLine>,
    /// Grid points in the latest run with no comparable baseline
    /// (first run on this host, or new grid point).
    pub unmatched: usize,
}

impl CompareReport {
    /// Points that regressed.
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| l.regressed).count()
    }
}

/// Compare the latest run against the most recent earlier run on the
/// same host. `None` when the history holds no runs at all.
pub fn compare_latest(history: &BenchHistory, opts: &CompareOpts) -> Option<CompareReport> {
    let latest = history.runs.last()?;
    let mut report = CompareReport::default();
    for cur in &latest.entries {
        let base = history.runs[..history.runs.len() - 1]
            .iter()
            .rev()
            .filter(|r| r.host.name == latest.host.name)
            .find_map(|r| {
                r.entries.iter().find(|e| {
                    e.log2n == cur.log2n
                        && e.threads == cur.threads
                        && e.batch == cur.batch
                        && e.connections == cur.connections
                        && e.processes == cur.processes
                        && e.backend == cur.backend
                })
            });
        let Some(base) = base else {
            report.unmatched += 1;
            continue;
        };
        let rel_delta = (cur.gflops - base.gflops) / base.gflops;
        // Noise floor: the larger of the two runs' MADs, scaled.
        let noise = opts.mad_factor * base.gflops_mad.max(cur.gflops_mad) / base.gflops;
        let threshold = noise.max(opts.min_rel_drop);
        report.lines.push(CompareLine {
            log2n: cur.log2n,
            threads: cur.threads,
            batch: cur.batch,
            connections: cur.connections,
            processes: cur.processes,
            backend: cur.backend.clone(),
            plan_kind: cur.plan_kind.clone(),
            base_gflops: base.gflops,
            cur_gflops: cur.gflops,
            rel_delta,
            threshold,
            regressed: rel_delta < -threshold,
            trajectory: history.trajectory(
                cur.log2n,
                cur.threads,
                cur.batch,
                cur.connections,
                cur.processes,
                &cur.backend,
                &latest.host.name,
            ),
        });
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(log2n: u64, threads: u64, gflops: f64, gflops_mad: f64) -> BenchEntry {
        BenchEntry {
            log2n,
            threads,
            batch: 1,
            connections: 1,
            processes: 1,
            backend: BACKEND_SCALAR.to_string(),
            plan_kind: "test".to_string(),
            reps: 5,
            median_us: 100.0,
            mad_us: 1.0,
            p99_us: 0.0,
            p999_us: 0.0,
            gflops,
            gflops_mad,
        }
    }

    fn vec_entry(log2n: u64, threads: u64, gflops: f64, gflops_mad: f64) -> BenchEntry {
        BenchEntry {
            backend: BACKEND_VECTOR.to_string(),
            plan_kind: "test + vec(4)".to_string(),
            ..entry(log2n, threads, gflops, gflops_mad)
        }
    }

    fn run_with(entries: Vec<BenchEntry>) -> BenchRun {
        BenchRun {
            seq: 0,
            unix_ms: 1_700_000_000_000,
            host: BenchHost {
                name: "test-host".to_string(),
                fingerprint: HostFingerprint {
                    cores: 2,
                    mu: 4,
                    cache_line_bytes: 64,
                    simd_width: 4,
                    process_budget: 2,
                    features: vec!["simd4".to_string()],
                },
            },
            entries,
        }
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        // MAD of {1,2,3,4,100}: median 3, deviations {2,1,0,1,97} → 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 100.0]), 1.0);
    }

    #[test]
    fn pseudo_gflops_formula() {
        // 2^10 points in 51.2 µs: 5·1024·10 / 51 200 ns = 1 GFLOP/s.
        assert!((pseudo_gflops(1024, 51.2) - 1.0).abs() < 1e-12);
        assert_eq!(pseudo_gflops(1024, 0.0), 0.0);
    }

    #[test]
    fn append_assigns_increasing_seq_and_validates() {
        let mut h = BenchHistory::default();
        h.append(run_with(vec![entry(10, 2, 1.0, 0.01)]));
        h.append(run_with(vec![entry(10, 2, 1.1, 0.01)]));
        assert_eq!(h.runs[0].seq, 1);
        assert_eq!(h.runs[1].seq, 2);
        h.validate().unwrap();
        let round = BenchHistory::from_json(&h.to_json()).unwrap();
        assert_eq!(round, h);
    }

    #[test]
    fn validate_rejects_bad_histories() {
        let h = BenchHistory {
            schema: 99,
            ..Default::default()
        };
        assert!(h.validate().is_err());

        let mut h = BenchHistory::default();
        h.append(run_with(vec![entry(10, 2, 1.0, 0.01)]));
        h.runs[0].seq = 0; // not strictly positive/increasing
        assert!(h.validate().is_err());

        let mut h = BenchHistory::default();
        h.append(run_with(vec![entry(10, 2, f64::NAN, 0.01)]));
        assert!(h.validate().is_err());
    }

    #[test]
    fn identical_runs_do_not_regress() {
        let mut h = BenchHistory::default();
        h.append(run_with(vec![
            entry(10, 2, 1.0, 0.02),
            entry(12, 2, 2.0, 0.02),
        ]));
        h.append(run_with(vec![
            entry(10, 2, 1.0, 0.02),
            entry(12, 2, 2.0, 0.02),
        ]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.lines.len(), 2);
        assert_eq!(r.regressions(), 0);
        assert_eq!(r.unmatched, 0);
    }

    #[test]
    fn synthetic_2x_slowdown_is_flagged() {
        let mut h = BenchHistory::default();
        h.append(run_with(vec![entry(14, 2, 2.0, 0.05)]));
        h.append(run_with(vec![entry(14, 2, 1.0, 0.05)])); // 2× slower
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.regressions(), 1);
        let l = &r.lines[0];
        assert!(l.regressed);
        assert!((l.rel_delta + 0.5).abs() < 1e-12);
        assert_eq!(l.trajectory, vec![2.0, 1.0]);
    }

    #[test]
    fn noisy_baseline_widens_the_threshold() {
        let mut h = BenchHistory::default();
        // 10% MAD → threshold 4·0.1 = 40%; a 20% drop is within noise.
        h.append(run_with(vec![entry(10, 2, 1.0, 0.1)]));
        h.append(run_with(vec![entry(10, 2, 0.8, 0.1)]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.regressions(), 0);
        assert!(r.lines[0].threshold >= 0.4);
    }

    #[test]
    fn foreign_host_runs_are_not_compared() {
        let mut h = BenchHistory::default();
        let mut other = run_with(vec![entry(10, 2, 9.0, 0.01)]);
        other.host.name = "other-host".to_string();
        h.append(other);
        h.append(run_with(vec![entry(10, 2, 1.0, 0.01)]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.lines.len(), 0);
        assert_eq!(r.unmatched, 1);
    }

    #[test]
    fn first_run_has_no_baseline() {
        let mut h = BenchHistory::default();
        h.append(run_with(vec![entry(10, 2, 1.0, 0.01)]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.lines.len(), 0);
        assert_eq!(r.unmatched, 1);
        assert!(compare_latest(&BenchHistory::default(), &CompareOpts::default()).is_none());
    }

    /// The point of the backend dimension: a vector measurement must
    /// never be judged against a scalar baseline (or vice versa), even
    /// when every other key coordinate matches.
    #[test]
    fn backends_never_compare_against_each_other() {
        let mut h = BenchHistory::default();
        // Baseline run: fast scalar point only.
        h.append(run_with(vec![entry(10, 2, 9.0, 0.01)]));
        // Latest run: a slower *vector* point at the same coordinates.
        h.append(run_with(vec![vec_entry(10, 2, 1.0, 0.01)]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.lines.len(), 0, "cross-backend pairing is forbidden");
        assert_eq!(r.unmatched, 1);

        // With a genuine vector baseline the vector point compares —
        // against the vector trajectory only.
        let mut h = BenchHistory::default();
        h.append(run_with(vec![
            entry(10, 2, 9.0, 0.01),
            vec_entry(10, 2, 2.0, 0.01),
        ]));
        h.append(run_with(vec![
            entry(10, 2, 9.0, 0.01),
            vec_entry(10, 2, 1.0, 0.01),
        ]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.lines.len(), 2);
        let vec_line = r
            .lines
            .iter()
            .find(|l| l.backend == BACKEND_VECTOR)
            .unwrap();
        assert!(vec_line.regressed, "2→1 GF/s on the vector trajectory");
        assert_eq!(vec_line.base_gflops, 2.0);
        assert_eq!(vec_line.trajectory, vec![2.0, 1.0]);
        let scalar_line = r
            .lines
            .iter()
            .find(|l| l.backend == BACKEND_SCALAR)
            .unwrap();
        assert!(!scalar_line.regressed);
    }

    /// v3 files (no `backend` field) migrate on load: entries are
    /// stamped `"scalar"`, the schema bumps to 4, and the migrated
    /// history round-trips as native v4.
    #[test]
    fn v3_history_migrates_to_v4_on_load() {
        let v3 = r#"{
          "schema": 3,
          "runs": [
            {
              "seq": 1,
              "unix_ms": 1700000000000,
              "host": {
                "name": "old-host",
                "fingerprint": {
                  "cores": 2, "mu": 4, "cache_line_bytes": 64, "features": []
                }
              },
              "entries": [
                {
                  "log2n": 10, "threads": 2, "batch": 1, "connections": 1,
                  "plan_kind": "multicore split 16x64", "reps": 5,
                  "median_us": 100.0, "mad_us": 1.0,
                  "gflops": 0.5, "gflops_mad": 0.01
                }
              ]
            }
          ]
        }"#;
        let h = BenchHistory::from_json(v3).expect("v3 must migrate");
        assert_eq!(h.schema, BENCH_SCHEMA_VERSION);
        assert_eq!(h.runs[0].entries[0].backend, BACKEND_SCALAR);
        // The pre-simd_width fingerprint defaults to the scalar claim.
        assert_eq!(h.runs[0].host.fingerprint.simd_width, 1);
        // Migrated output is native v4: parses again without migration.
        let round = BenchHistory::from_json(&h.to_json()).unwrap();
        assert_eq!(round, h);
    }

    /// v5 files (no `processes` field) migrate on load: entries are
    /// stamped `processes: 1` and the schema chains to v6.
    #[test]
    fn v5_history_migrates_to_v6_on_load() {
        let v5 = r#"{
          "schema": 5,
          "runs": [
            {
              "seq": 1,
              "unix_ms": 1700000000000,
              "host": {
                "name": "old-host",
                "fingerprint": {
                  "cores": 2, "mu": 4, "cache_line_bytes": 64,
                  "simd_width": 4, "features": ["simd4"]
                }
              },
              "entries": [
                {
                  "log2n": 10, "threads": 2, "batch": 1, "connections": 1,
                  "backend": "scalar",
                  "plan_kind": "multicore split 16x64", "reps": 5,
                  "median_us": 100.0, "mad_us": 1.0,
                  "p99_us": 110.0, "p999_us": 120.0,
                  "gflops": 0.5, "gflops_mad": 0.01
                }
              ]
            }
          ]
        }"#;
        let h = BenchHistory::from_json(v5).expect("v5 must migrate");
        assert_eq!(h.schema, BENCH_SCHEMA_VERSION);
        assert_eq!(h.runs[0].entries[0].processes, 1);
        let round = BenchHistory::from_json(&h.to_json()).unwrap();
        assert_eq!(round, h);
    }

    /// The point of the processes dimension: a fleet measurement never
    /// trends against the in-process baseline at the same coordinates.
    #[test]
    fn process_counts_never_compare_against_each_other() {
        fn dist_entry(log2n: u64, threads: u64, gflops: f64, mad: f64) -> BenchEntry {
            BenchEntry {
                processes: 2,
                plan_kind: "test + dist(2)".to_string(),
                ..entry(log2n, threads, gflops, mad)
            }
        }
        let mut h = BenchHistory::default();
        h.append(run_with(vec![entry(14, 2, 4.0, 0.01)]));
        h.append(run_with(vec![dist_entry(14, 2, 1.0, 0.01)]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.lines.len(), 0, "cross-process pairing is forbidden");
        assert_eq!(r.unmatched, 1);

        // With a genuine fleet baseline, the fleet point compares —
        // against the fleet trajectory only.
        let mut h = BenchHistory::default();
        h.append(run_with(vec![
            entry(14, 2, 4.0, 0.01),
            dist_entry(14, 2, 2.0, 0.01),
        ]));
        h.append(run_with(vec![
            entry(14, 2, 4.0, 0.01),
            dist_entry(14, 2, 1.0, 0.01),
        ]));
        let r = compare_latest(&h, &CompareOpts::default()).unwrap();
        assert_eq!(r.lines.len(), 2);
        let fleet = r.lines.iter().find(|l| l.processes == 2).unwrap();
        assert!(fleet.regressed, "2 -> 1 GF/s on the fleet trajectory");
        assert_eq!(fleet.base_gflops, 2.0);
        assert_eq!(fleet.trajectory, vec![2.0, 1.0]);
        assert!(!r.lines.iter().find(|l| l.processes == 1).unwrap().regressed);
    }

    /// Unknown backend labels and unknown future schemas still fail.
    #[test]
    fn unknown_backend_or_schema_is_rejected() {
        let mut h = BenchHistory::default();
        let mut e = entry(10, 2, 1.0, 0.01);
        e.backend = "quantum".to_string();
        h.append(run_with(vec![e]));
        let err = h.validate().unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");

        let h6 = BenchHistory {
            schema: BENCH_SCHEMA_VERSION + 1,
            ..Default::default()
        };
        assert!(h6.validate().is_err(), "future schemas are not migrated");
    }

    #[test]
    fn backend_labels_derive_from_width_and_choice() {
        assert_eq!(backend_label(1), BACKEND_SCALAR);
        assert_eq!(backend_label(4), BACKEND_VECTOR);
        assert_eq!(
            backend_from_choice("sequential tree (8 x 8)"),
            BACKEND_SCALAR
        );
        assert_eq!(
            backend_from_choice("multicore split 16x64 + vec(4)"),
            BACKEND_VECTOR
        );
    }

    #[test]
    fn host_slug_is_filesystem_safe() {
        let mut host = BenchHost::current();
        host.name = "CI runner.42!".to_string();
        assert_eq!(host.slug(), "ci-runner-42");
        host.name = "---".to_string();
        assert_eq!(host.slug(), "unknown-host");
    }

    #[test]
    fn measure_grid_records_real_entries() {
        // Small grid so the test stays fast; p=2 needs n ≥ (pµ)² = 64.
        let run = measure_grid(&[8], &[1, 2], 2);
        assert!(!run.entries.is_empty());
        assert_eq!(run.host, BenchHost::current());
        for e in &run.entries {
            assert!(e.median_us > 0.0 && e.median_us.is_finite(), "{e:?}");
            assert!(e.gflops > 0.0, "{e:?}");
            assert!(!e.plan_kind.is_empty());
        }
        // Both thread counts measured at 2^8.
        assert!(run.entries.iter().any(|e| e.threads == 1));
        assert!(run.entries.iter().any(|e| e.threads == 2));
        // On a SIMD-capable host every grid point carries both backend
        // variants, and the labels agree with the choice strings.
        if spiral_codegen::detected_simd_width() > 1 {
            for p in [1u64, 2] {
                assert!(
                    run.entries
                        .iter()
                        .any(|e| e.threads == p && e.backend == BACKEND_SCALAR),
                    "missing scalar point at p={p}"
                );
                assert!(
                    run.entries
                        .iter()
                        .any(|e| e.threads == p && e.backend == BACKEND_VECTOR),
                    "missing vector point at p={p}"
                );
            }
        }
        for e in &run.entries {
            assert_eq!(e.backend, backend_from_choice(&e.plan_kind), "{e:?}");
        }
        let mut h = BenchHistory::default();
        h.append(run);
        h.validate().unwrap();
    }
}
