//! Compile-and-time harness for the emitted C — the paper's real
//! pipeline is "generate C, compile with the platform compiler, measure";
//! this module reproduces that loop for host wall-clock comparisons.

use spiral_codegen::cemit::{emit_c, CFlavor};
use spiral_codegen::plan::Plan;
use std::io::Write;
use std::process::Command;

/// True if a system C compiler is available.
pub fn have_cc() -> bool {
    Command::new("cc").arg("--version").output().is_ok()
}

/// Emit `plan` as C, compile with `cc -O3`, run a repeat-loop timing
/// harness, and return the best per-transform time in microseconds.
/// Returns `None` if no compiler is available or anything fails.
pub fn time_emitted_c(plan: &Plan, reps: usize) -> Option<f64> {
    if !have_cc() {
        return None;
    }
    let n = plan.n;
    let code = emit_c(plan, CFlavor::OpenMp);
    let main = format!(
        r#"
#include <stdio.h>
#include <time.h>
void spiral_dft_{n}(const double *x, double *y);
int main(void) {{
    static double x[2*{n}], y[2*{n}];
    for (int k = 0; k < {n}; k++) {{ x[2*k] = 0.1 * k; x[2*k+1] = 1.0 - 0.05 * k; }}
    spiral_dft_{n}(x, y); /* warm-up */
    double best = 1e30;
    for (int r = 0; r < {reps}; r++) {{
        struct timespec t0, t1;
        clock_gettime(CLOCK_MONOTONIC, &t0);
        spiral_dft_{n}(x, y);
        clock_gettime(CLOCK_MONOTONIC, &t1);
        double us = (t1.tv_sec - t0.tv_sec) * 1e6 + (t1.tv_nsec - t0.tv_nsec) * 1e-3;
        if (us < best) best = us;
    }}
    /* keep the result alive */
    volatile double sink = y[0] + y[1];
    (void)sink;
    printf("%.6f\n", best);
    return 0;
}}
"#
    );
    let dir = std::env::temp_dir().join(format!("spiral_cbench_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).ok()?;
    let src = dir.join("dft.c");
    let main_c = dir.join("main.c");
    let exe = dir.join("bench");
    std::fs::File::create(&src)
        .ok()?
        .write_all(code.as_bytes())
        .ok()?;
    std::fs::File::create(&main_c)
        .ok()?
        .write_all(main.as_bytes())
        .ok()?;
    let out = Command::new("cc")
        .args(["-O3", "-march=native", "-fopenmp", "-o"])
        .arg(&exe)
        .arg(&src)
        .arg(&main_c)
        .arg("-lm")
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let run = Command::new(&exe).output().ok()?;
    let _ = std::fs::remove_dir_all(&dir);
    if !run.status.success() {
        return None;
    }
    String::from_utf8_lossy(&run.stdout).trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_rewrite::sequential_dft;

    #[test]
    fn emitted_c_times_when_cc_present() {
        if !have_cc() {
            eprintln!("skipping: no cc");
            return;
        }
        let plan = Plan::from_formula(&sequential_dft(256, 8), 1, 4).unwrap();
        let t = time_emitted_c(&plan, 5).expect("timing failed");
        assert!(t > 0.0 && t < 1e6, "unreasonable time {t} µs");
    }
}
