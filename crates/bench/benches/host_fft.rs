//! Host wall-clock microbenchmarks: tuned generated plans vs. the
//! baseline FFTs (sequential — the container has one CPU; parallel
//! behaviour is covered by the simulator harness and `parallel_exec`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spiral_baselines::{FftwLikeConfig, FftwLikeFft, IterativeFft, RecursiveFft, StockhamFft};
use spiral_search::{CostModel, Tuner};
use spiral_spl::cplx::Cplx;

fn input(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|k| Cplx::new(k as f64 * 0.7, 1.0 - k as f64 * 0.2))
        .collect()
}

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_dft");
    for k in [8u32, 10, 12] {
        let n = 1usize << k;
        let x = input(n);
        group.throughput(Throughput::Elements(n as u64));

        let tuner = Tuner::new(1, 4, CostModel::Analytic);
        let plan = tuner.tune_sequential(n).expect("analytic tuning").plan;
        group.bench_with_input(BenchmarkId::new("spiral_tuned", k), &x, |b, x| {
            b.iter(|| plan.execute(x));
        });

        let fftw = FftwLikeFft::new(n, FftwLikeConfig::default());
        group.bench_with_input(BenchmarkId::new("fftw_like", k), &x, |b, x| {
            b.iter(|| fftw.run(x));
        });

        let iter = IterativeFft::new(n);
        group.bench_with_input(BenchmarkId::new("iterative_radix2", k), &x, |b, x| {
            b.iter(|| iter.run(x));
        });

        let stock = StockhamFft::new(n);
        group.bench_with_input(BenchmarkId::new("stockham", k), &x, |b, x| {
            b.iter(|| stock.run(x));
        });

        if k <= 10 {
            let rec = RecursiveFft::new(n);
            group.bench_with_input(BenchmarkId::new("recursive", k), &x, |b, x| {
                b.iter(|| rec.run(x));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_sequential
}
criterion_main!(benches);
