//! Codelet microbenchmarks: hand-unrolled kernels vs. generated DAG
//! interpretation — justifies the fast paths for sizes 2/4/8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spiral_codegen::codelet::{generate_dft_dag, Codelet};
use spiral_spl::cplx::Cplx;
use std::sync::Arc;

fn bench_codelets(c: &mut Criterion) {
    let mut group = c.benchmark_group("codelets");
    for n in [2usize, 4, 8, 16, 32] {
        let x: Vec<Cplx> = (0..n).map(|k| Cplx::new(k as f64, -1.0)).collect();
        let mut out = vec![Cplx::ZERO; n];
        let mut scratch = Vec::new();

        let hand = Codelet::for_size(n);
        group.bench_with_input(BenchmarkId::new("default", n), &n, |b, _| {
            b.iter(|| {
                hand.apply(&x, &mut out, &mut scratch);
                out[0]
            });
        });

        let dag = Codelet::Dag(Arc::new(generate_dft_dag(n)));
        group.bench_with_input(BenchmarkId::new("dag_interp", n), &n, |b, _| {
            b.iter(|| {
                dag.apply(&x, &mut out, &mut scratch);
                out[0]
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_codelets
}
criterion_main!(benches);
