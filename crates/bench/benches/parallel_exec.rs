//! Real-thread plan execution: sequential vs. 2-thread parallel plans on
//! this host. NOTE: the benchmark container has a single CPU, so the
//! parallel numbers measure *scheduling overhead*, not speedup — the
//! speedup shapes come from the simulator harness (`figures fig3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spiral_codegen::plan::Plan;
use spiral_codegen::ParallelExecutor;
use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
use spiral_smp::barrier::BarrierKind;
use spiral_spl::cplx::Cplx;

fn input(n: usize) -> Vec<Cplx> {
    (0..n).map(|k| Cplx::new(k as f64, 0.5)).collect()
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_execution");
    for k in [10u32, 12] {
        let n = 1usize << k;
        let x = input(n);

        let seq = Plan::from_formula(&sequential_dft(n, 8), 1, 4).unwrap();
        group.bench_with_input(BenchmarkId::new("sequential", k), &x, |b, x| {
            b.iter(|| seq.execute(x));
        });

        let par_formula = multicore_dft_expanded(n, 2, 4, None, 8).unwrap();
        let par = Plan::from_formula(&par_formula, 2, 4).unwrap();
        group.bench_with_input(
            BenchmarkId::new("parallel_schedule_1thread", k),
            &x,
            |b, x| b.iter(|| par.execute(x)),
        );

        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        group.bench_with_input(BenchmarkId::new("parallel_2threads", k), &x, |b, x| {
            b.iter(|| exec.execute(&par, x));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_parallel
}
criterion_main!(benches);
