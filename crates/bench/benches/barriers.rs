//! ABL-BAR: barrier overhead — the "low-latency minimal overhead
//! synchronization" design point of §3.2. Spin vs. parking barrier
//! round-trip cost at 2 and 4 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spiral_smp::barrier::{Barrier, BarrierKind};
use spiral_smp::pool::Pool;

fn bench_barriers(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_roundtrip");
    for p in [2usize, 4] {
        for kind in [BarrierKind::Spin, BarrierKind::Park] {
            let pool = Pool::new(p);
            let name = format!("{kind:?}_p{p}");
            group.bench_function(BenchmarkId::new("barrier", name.clone()), |b| {
                b.iter_custom(|iters| {
                    let barrier = kind.build(p);
                    let barrier: &dyn Barrier = &*barrier;
                    let start = std::time::Instant::now();
                    pool.run(&|_tid| {
                        for _ in 0..iters {
                            barrier.wait();
                        }
                    });
                    start.elapsed()
                });
            });
            // The watchdog path the executor actually uses: same
            // round-trip with a (never-expiring) deadline armed, so the
            // comparison quantifies what deadline accounting costs.
            group.bench_function(BenchmarkId::new("barrier_deadline", name), |b| {
                b.iter_custom(|iters| {
                    let barrier = kind.build(p);
                    let barrier: &dyn Barrier = &*barrier;
                    let deadline = std::time::Duration::from_secs(60);
                    let start = std::time::Instant::now();
                    pool.run(&|_tid| {
                        for _ in 0..iters {
                            let _ = barrier.wait_deadline(deadline);
                        }
                    });
                    start.elapsed()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_barriers
}
criterion_main!(benches);
