//! Golden snapshot of the SERVE-LOAD artifact schema. CI's serve-load
//! smoke and external dashboards parse `results/serve_load.json`, so
//! its JSON shape is pinned under `results/`. If this test fails after
//! an intentional schema change, bump `SERVE_LOAD_SCHEMA_VERSION` and
//! regenerate with `UPDATE_GOLDEN=1 cargo test -p spiral-bench --test
//! serve_load_schema`.

use spiral_bench::history::BenchHost;
use spiral_bench::serve_load::{
    validate_file, ServeLoadFile, ServeLoadRow, ServerLatencySummary, SERVE_LOAD_SCHEMA_VERSION,
};
use spiral_smp::topology::HostFingerprint;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/serve_load_schema.json")
}

/// Fixed literals, NOT a live run: the golden pins the *shape*, and
/// must be byte-identical on every machine that runs this test.
fn fixture() -> ServeLoadFile {
    let row = |phase: &str, connections: u64, ok: u64, overloaded: u64| ServeLoadRow {
        log2n: 8,
        batch: 8,
        connections,
        phase: phase.to_string(),
        plan_kind: "sequential tree (8 x 8) + vec(4)".to_string(),
        requests: connections * 32,
        ok,
        overloaded,
        expired: 0,
        errors: 0,
        protocol_errors: 0,
        p50_us: 400,
        p95_us: 700,
        p99_us: 900,
        p999_us: 1200,
        rps: 2000.0,
    };
    ServeLoadFile {
        schema: SERVE_LOAD_SCHEMA_VERSION,
        host: BenchHost {
            name: "example-host".to_string(),
            fingerprint: HostFingerprint {
                cores: 4,
                mu: 4,
                cache_line_bytes: 64,
                simd_width: 4,
                process_budget: 2,
                features: vec!["simd4".to_string()],
            },
        },
        workers: 2,
        deadline_ms: 0,
        tuner_invocations: 0,
        server: ServerLatencySummary {
            samples: 1440,
            p50_us: 380,
            p99_us: 850,
            p999_us: 1100,
        },
        rows: vec![
            row("single", 1, 32, 0),
            row("warm", 4, 128, 0),
            row("overload", 40, 700, 580),
        ],
    }
}

#[test]
fn serve_load_json_matches_golden_snapshot() {
    let got = serde_json::to_string_pretty(&fixture()).unwrap();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        ),
    };
    assert_eq!(
        got.trim(),
        want.trim(),
        "serve-load schema drifted from results/serve_load_schema.json.\n\
         If intentional: bump SERVE_LOAD_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1."
    );
}

#[test]
fn golden_snapshot_round_trips_and_validates() {
    if let Ok(s) = std::fs::read_to_string(golden_path()) {
        let file: ServeLoadFile = serde_json::from_str(&s).expect("golden parses");
        assert_eq!(file.schema, SERVE_LOAD_SCHEMA_VERSION);
        validate_file(&file).expect("golden validates");
        assert_eq!(file.rows.len(), 3);
    }
}

#[test]
fn fixture_passes_its_own_validation() {
    validate_file(&fixture()).expect("fixture is internally consistent");
}
