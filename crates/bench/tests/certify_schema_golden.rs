//! Golden snapshot of the certification report schema. The report is an
//! interchange surface — CI gates and external tooling parse it — so
//! its JSON shape is pinned under `results/`. If this test fails after
//! an intentional schema change, bump `CERTIFY_SCHEMA_VERSION` and
//! regenerate with `UPDATE_GOLDEN=1 cargo test -p spiral-bench --test
//! certify_schema_golden`.

use spiral_bench::certify::{CertifyReportFile, CertifyRow, CERTIFY_SCHEMA_VERSION};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/certify_schema.json")
}

/// Fixed literals, NOT a live sweep: the golden pins the *shape*, and
/// must be identical regardless of lowering changes.
fn fixture() -> CertifyReportFile {
    CertifyReportFile {
        schema: CERTIFY_SCHEMA_VERSION,
        symbolic_limit: 64,
        total: 2,
        certified: 1,
        rows: vec![
            CertifyRow {
                n: 16,
                threads: 1,
                mu: 1,
                shape: "sequential leaf 4".to_string(),
                dataflow_certified: true,
                symbolic_certified: Some(true),
                findings: vec![],
            },
            CertifyRow {
                n: 32,
                threads: 2,
                mu: 2,
                shape: "multicore default split, fused exchanges".to_string(),
                dataflow_certified: true,
                symbolic_certified: Some(false),
                findings: vec![
                    "symbolic pass, index 1: interpreter (hand kernels) semantics: \
                     plan(e_1)[1] = 1 ≈ (1.000000+0.000000i), but DFT_32[1,1] = ω_32^1 \
                     — plan is not DFT_32"
                        .to_string(),
                ],
            },
        ],
    }
}

#[test]
fn certify_json_matches_golden_snapshot() {
    let got = serde_json::to_string_pretty(&fixture()).unwrap();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        ),
    };
    assert_eq!(
        got.trim(),
        want.trim(),
        "certify report schema drifted from results/certify_schema.json.\n\
         If intentional: bump CERTIFY_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1."
    );
}

#[test]
fn golden_snapshot_round_trips() {
    if let Ok(s) = std::fs::read_to_string(golden_path()) {
        let file: CertifyReportFile = serde_json::from_str(&s).expect("golden parses");
        assert_eq!(file.schema, CERTIFY_SCHEMA_VERSION);
        assert_eq!(file.rows.len(), file.total);
    }
}

/// The live sweep at small sizes certifies everything and serializes
/// through the same schema the golden pins.
#[test]
fn live_sweep_is_fully_certified_and_serializes() {
    let file = spiral_bench::certify::certification_sweep(2, 4, 2);
    assert_eq!(file.certified, file.total);
    assert!(file.total > 0);
    // The sweep must include vector-tagged shapes, and (per the line
    // above) prove 100% of them: the short-vector backend ships only
    // under the same exact certification as the scalar lowering.
    assert!(
        file.rows.iter().any(|r| r.shape.contains("+ vec(")),
        "sweep must cover vec(ν)-tagged plan shapes"
    );
    // Likewise the dist(q) sharded shapes: the shard-boundary pass runs
    // inside the sweep, and 100% of sharded shapes prove out.
    assert!(
        file.rows.iter().any(|r| r.shape.contains("+ dist(")),
        "sweep must cover dist(q) sharded plan shapes"
    );
    let json = serde_json::to_string(&file).unwrap();
    let back: CertifyReportFile = serde_json::from_str(&json).unwrap();
    assert_eq!(back.total, file.total);
}
