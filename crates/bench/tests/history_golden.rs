//! Golden test: the serialized `BenchHistory` layout is frozen against a
//! snapshot under `results/`. CI's `bench history compare` and external
//! dashboards parse `BENCH_<host>.json` files; accidental field renames
//! must fail loudly here. Intentional changes: bump
//! `BENCH_SCHEMA_VERSION` and regenerate with `UPDATE_GOLDEN=1 cargo
//! test -p spiral-bench --test history_golden`.

use spiral_bench::history::{BenchEntry, BenchHistory, BenchHost, BenchRun, BENCH_SCHEMA_VERSION};
use spiral_smp::topology::HostFingerprint;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_history_schema.json")
}

/// A fully populated, deterministic history exercising every field.
/// Fixed literals, NOT `BenchHost::current()`: the golden must be
/// byte-identical on every machine that runs this test.
fn representative_history() -> BenchHistory {
    let host = BenchHost {
        name: "example-host".to_string(),
        fingerprint: HostFingerprint {
            cores: 4,
            mu: 4,
            cache_line_bytes: 64,
            simd_width: 4,
            process_budget: 2,
            features: vec!["trace".to_string(), "simd4".to_string()],
        },
    };
    BenchHistory {
        schema: BENCH_SCHEMA_VERSION,
        runs: vec![
            BenchRun {
                seq: 1,
                unix_ms: 1_700_000_000_000,
                host: host.clone(),
                entries: vec![BenchEntry {
                    log2n: 12,
                    threads: 2,
                    batch: 1,
                    connections: 1,
                    processes: 1,
                    backend: "scalar".to_string(),
                    plan_kind: "multicore split 64x64".to_string(),
                    reps: 5,
                    median_us: 120.5,
                    mad_us: 2.25,
                    p99_us: 125.0,
                    p999_us: 130.25,
                    gflops: 1.75,
                    gflops_mad: 0.03,
                }],
            },
            BenchRun {
                seq: 2,
                unix_ms: 1_700_000_060_000,
                host,
                entries: vec![
                    BenchEntry {
                        log2n: 12,
                        threads: 2,
                        batch: 1,
                        connections: 1,
                        processes: 1,
                        backend: "scalar".to_string(),
                        plan_kind: "multicore split 64x64".to_string(),
                        reps: 5,
                        median_us: 118.0,
                        mad_us: 1.5,
                        p99_us: 121.0,
                        p999_us: 124.5,
                        gflops: 1.79,
                        gflops_mad: 0.02,
                    },
                    BenchEntry {
                        log2n: 12,
                        threads: 2,
                        batch: 1,
                        connections: 1,
                        processes: 1,
                        backend: "vector".to_string(),
                        plan_kind: "multicore split 64x64 + vec(4)".to_string(),
                        reps: 5,
                        median_us: 95.0,
                        mad_us: 1.2,
                        p99_us: 97.5,
                        p999_us: 101.0,
                        gflops: 2.22,
                        gflops_mad: 0.02,
                    },
                    BenchEntry {
                        log2n: 8,
                        threads: 2,
                        batch: 32,
                        connections: 1,
                        processes: 1,
                        backend: "scalar".to_string(),
                        plan_kind: "batched sequential 2^8".to_string(),
                        reps: 5,
                        median_us: 4.2,
                        mad_us: 0.1,
                        p99_us: 0.0,
                        p999_us: 0.0,
                        gflops: 2.4,
                        gflops_mad: 0.05,
                    },
                    BenchEntry {
                        log2n: 8,
                        threads: 2,
                        batch: 8,
                        connections: 8,
                        processes: 1,
                        backend: "vector".to_string(),
                        plan_kind: "served sequential 2^8".to_string(),
                        reps: 64,
                        median_us: 350.0,
                        mad_us: 12.0,
                        p99_us: 410.0,
                        p999_us: 520.0,
                        gflops: 0.03,
                        gflops_mad: 0.002,
                    },
                    BenchEntry {
                        log2n: 12,
                        threads: 2,
                        batch: 1,
                        connections: 1,
                        processes: 2,
                        backend: "vector".to_string(),
                        plan_kind: "multicore split 64x64 + vec(4) + dist(2)".to_string(),
                        reps: 5,
                        median_us: 140.0,
                        mad_us: 3.5,
                        p99_us: 150.0,
                        p999_us: 161.0,
                        gflops: 1.51,
                        gflops_mad: 0.04,
                    },
                ],
            },
        ],
    }
}

#[test]
fn bench_history_json_matches_golden_snapshot() {
    let got = representative_history().to_json();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "BenchHistory JSON layout drifted from {}.\n\
         If intentional: bump BENCH_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

#[test]
fn golden_snapshot_parses_and_validates() {
    let want = representative_history();
    if let Ok(s) = std::fs::read_to_string(golden_path()) {
        let parsed = BenchHistory::from_json(&s).expect("golden snapshot must parse");
        assert_eq!(parsed, want);
        parsed.validate().expect("golden snapshot must validate");
    }
    // Missing file is reported by the other test; don't fail twice.
}
