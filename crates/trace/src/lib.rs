//! # spiral-trace — per-stage/per-thread execution observability
//!
//! The paper's central runtime claims — static schedules are
//! load-balanced across `p` threads, and barrier synchronization is
//! cheap enough for an early parallel crossover — are checked statically
//! by `spiral-verify` and end-to-end by the wall-clock benches. This
//! crate adds the missing middle layer: *measuring where time actually
//! goes inside a run*, per stage and per thread.
//!
//! Two pieces:
//!
//! * [`Collector`] — the in-run recorder. One cache-line-padded slot per
//!   `(stage, thread)` pair (64-byte aligned, matching
//!   [`spiral_smp::CACHE_LINE_BYTES`]), written only by its owning
//!   thread through the [`spiral_smp::trace::TraceSink`] hook, so
//!   recording adds no shared-write contention to the run it observes.
//! * [`RunProfile`] — the aggregated, serializable result, with the
//!   derived metrics the paper's claims are stated in: per-stage
//!   load-imbalance ratio (`max/mean` compute time), barrier-wait share,
//!   and per-stage throughput.
//!
//! Profiles of repeated runs [`merge`](RunProfile::try_merge)
//! associatively and commutatively (they are sums of per-slot counters),
//! and every derived metric is invariant under permutation of the thread
//! slots — both properties are enforced by the crate's property tests.
//!
//! The layer is feature-gated end to end (`trace` on `spiral-smp`,
//! `spiral-codegen`, …, mirroring the `faults` pattern): with the
//! feature off nothing here is reachable from the executors and the
//! instrumentation cost is exactly zero; with it on, the cost is two
//! monotonic clock reads and one padded-slot accumulation per
//! `(stage, thread)` — bounded, and measured by the `ablation-trace`
//! bench.

#![warn(missing_docs)]

pub mod metrics;
#[cfg(feature = "sink")]
pub mod recorder;
#[cfg(feature = "sink")]
pub mod timeline;

#[cfg(feature = "sink")]
pub use recorder::FlightRecorder;
#[cfg(feature = "sink")]
pub use timeline::{Timeline, TimelineEvent, TimelineEventKind};

use serde::{Deserialize, Serialize};
#[cfg(feature = "sink")]
use spiral_smp::trace::TraceSink;
#[cfg(feature = "sink")]
use spiral_smp::CACHE_LINE_BYTES;
#[cfg(feature = "sink")]
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Duration → saturating nanosecond count (u64 holds ~584 years).
pub(crate) fn ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Version stamp of the serialized [`RunProfile`] layout; bumped on any
/// field change so downstream readers (`figures trace`, the golden
/// snapshot under `results/`) can detect drift.
///
/// * v1 — initial layout (PR 3).
/// * v2 — added the [`HostMeta`] `host` block.
/// * v3 — the host block gained `simd_width` (detected short-vector
///   lane count; v2 profiles deserialize with the scalar default 1).
/// * v4 — added `timeline_dropped` (events overwritten in bounded
///   timeline rings while the profiled runs were recorded).
pub const SCHEMA_VERSION: u64 = 4;

/// The host a profile was measured on. Timing artifacts are meaningless
/// without this context: a 2-thread run on a 1-core container and on a
/// 32-core server produce structurally identical profiles with wildly
/// different barrier shares.
///
/// This is the workspace-wide [`spiral_smp::topology::HostFingerprint`]
/// (field layout unchanged from the struct this crate used to define, so
/// serialized v2 profiles stay readable).
pub use spiral_smp::topology::HostFingerprint as HostMeta;

/// One `(stage, thread)` accumulation slot, padded to a full cache line
/// so concurrent writers never share a line (the same guarantee the
/// executor's data buffers get from `smp::align`).
#[cfg(feature = "sink")]
#[repr(align(64))]
#[derive(Default)]
struct Slot {
    compute_ns: AtomicU64,
    barrier_wait_ns: AtomicU64,
    jobs: AtomicU64,
    elements: AtomicU64,
}

#[cfg(feature = "sink")]
const _: () = assert!(std::mem::align_of::<Slot>() == CACHE_LINE_BYTES);
#[cfg(feature = "sink")]
const _: () = assert!(std::mem::size_of::<Slot>() == CACHE_LINE_BYTES);

/// One per-thread pool-job slot, padded like [`Slot`].
#[cfg(feature = "sink")]
#[repr(align(64))]
#[derive(Default)]
struct JobSlot {
    total_ns: AtomicU64,
}

/// In-run recorder: `threads × stages` padded slots plus one pool-job
/// slot per thread. Implements [`TraceSink`]; plug it into
/// `ParallelExecutor::try_execute_traced` (feature `trace`) or any other
/// instrumented runner, then [`finish`](Collector::finish) it into a
/// [`RunProfile`].
#[cfg(feature = "sink")]
pub struct Collector {
    threads: usize,
    stages: usize,
    /// Indexed `tid * stages + stage`: a thread's slots are contiguous.
    slots: Box<[Slot]>,
    jobs: Box<[JobSlot]>,
}

#[cfg(feature = "sink")]
impl Collector {
    /// Collector for `threads` threads and `stages` plan steps.
    pub fn new(threads: usize, stages: usize) -> Collector {
        let threads = threads.max(1);
        Collector {
            threads,
            stages,
            slots: (0..threads * stages).map(|_| Slot::default()).collect(),
            jobs: (0..threads).map(|_| JobSlot::default()).collect(),
        }
    }

    /// Number of thread slots.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of stage slots.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Zero every slot (reuse across runs without reallocating).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.compute_ns.store(0, Ordering::Relaxed);
            s.barrier_wait_ns.store(0, Ordering::Relaxed);
            s.jobs.store(0, Ordering::Relaxed);
            s.elements.store(0, Ordering::Relaxed);
        }
        for j in self.jobs.iter() {
            j.total_ns.store(0, Ordering::Relaxed);
        }
    }

    /// Aggregate the recorded slots into a [`RunProfile`]. `labels` are
    /// the stage IR labels (padded/truncated to the slot count), `n` the
    /// transform size, `wall` the whole-run wall-clock span.
    pub fn finish(&self, n: usize, labels: &[String], wall: Duration) -> RunProfile {
        let stages = (0..self.stages)
            .map(|si| StageProfile {
                index: si as u64,
                label: labels.get(si).cloned().unwrap_or_else(|| "?".to_string()),
                threads: (0..self.threads)
                    .map(|tid| {
                        let s = &self.slots[tid * self.stages + si];
                        ThreadStageStats {
                            compute_ns: s.compute_ns.load(Ordering::Relaxed),
                            barrier_wait_ns: s.barrier_wait_ns.load(Ordering::Relaxed),
                            jobs: s.jobs.load(Ordering::Relaxed),
                            elements: s.elements.load(Ordering::Relaxed),
                        }
                    })
                    .collect(),
            })
            .collect();
        RunProfile {
            schema: SCHEMA_VERSION,
            n: n as u64,
            threads: self.threads as u64,
            runs: 1,
            wall_ns: ns_u64(wall),
            host: HostMeta::current(),
            pool_job_ns: self
                .jobs
                .iter()
                .map(|j| j.total_ns.load(Ordering::Relaxed))
                .collect(),
            timeline_dropped: 0,
            stages,
        }
    }
}

#[cfg(feature = "sink")]
impl TraceSink for Collector {
    fn stage(
        &self,
        tid: usize,
        stage: usize,
        compute: Duration,
        barrier_wait: Duration,
        jobs: u64,
        elements: u64,
    ) {
        if tid >= self.threads || stage >= self.stages {
            return;
        }
        // Relaxed: each slot is written by exactly one thread; the
        // publisher's run-completion synchronization orders the final
        // reads in `finish`.
        let s = &self.slots[tid * self.stages + stage];
        s.compute_ns.fetch_add(ns_u64(compute), Ordering::Relaxed);
        s.barrier_wait_ns
            .fetch_add(ns_u64(barrier_wait), Ordering::Relaxed);
        s.jobs.fetch_add(jobs, Ordering::Relaxed);
        s.elements.fetch_add(elements, Ordering::Relaxed);
    }

    fn pool_job(&self, tid: usize, total: Duration) {
        if let Some(j) = self.jobs.get(tid) {
            j.total_ns.fetch_add(ns_u64(total), Ordering::Relaxed);
        }
    }
}

/// What one thread did in one stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStageStats {
    /// Nanoseconds spent executing the scheduled portion.
    pub compute_ns: u64,
    /// Nanoseconds blocked at the stage barrier (arrival → release).
    pub barrier_wait_ns: u64,
    /// Schedulable units (chunks / block ranges) executed.
    pub jobs: u64,
    /// Output elements written.
    pub elements: u64,
}

/// Per-thread measurements of one plan stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage index in plan order.
    pub index: u64,
    /// Stage IR label (e.g. `par[2x128]`, `exchange(mu=4)`).
    pub label: String,
    /// One entry per thread slot, indexed by `tid`.
    pub threads: Vec<ThreadStageStats>,
}

impl StageProfile {
    /// Total compute nanoseconds across threads.
    pub fn compute_ns(&self) -> u64 {
        self.threads.iter().map(|t| t.compute_ns).sum()
    }

    /// Total barrier-wait nanoseconds across threads.
    pub fn barrier_wait_ns(&self) -> u64 {
        self.threads.iter().map(|t| t.barrier_wait_ns).sum()
    }

    /// Total output elements written across threads.
    pub fn elements(&self) -> u64 {
        self.threads.iter().map(|t| t.elements).sum()
    }

    /// Load-imbalance ratio of this stage: `max / mean` per-thread
    /// compute time. `1.0` is perfect balance; a stage nobody computed
    /// in reports `1.0`. Invariant under permutation of thread slots.
    pub fn imbalance(&self) -> f64 {
        ratio_max_mean(self.threads.iter().map(|t| t.compute_ns))
    }

    /// Like [`imbalance`](Self::imbalance) but over the *element*
    /// counts, which are deterministic properties of the static schedule
    /// (timing-free — comparable to `spiral-verify`'s static verdict on
    /// any host).
    pub fn element_imbalance(&self) -> f64 {
        ratio_max_mean(self.threads.iter().map(|t| t.elements))
    }

    /// Stage throughput in elements per second: elements written divided
    /// by the stage's critical-path compute time (slowest thread).
    pub fn throughput_eps(&self) -> f64 {
        let span = self.threads.iter().map(|t| t.compute_ns).max().unwrap_or(0);
        if span == 0 {
            return 0.0;
        }
        self.elements() as f64 * 1e9 / span as f64
    }
}

/// Aggregated profile of one (or, after merging, several) traced runs.
///
/// All counter fields are plain sums, so merging profiles of repeated
/// runs is associative and commutative, and every derived metric — built
/// from per-thread sums via max/mean — is invariant under permutation of
/// the thread slots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Serialization layout version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Transform size.
    pub n: u64,
    /// Thread-slot count.
    pub threads: u64,
    /// Number of runs accumulated into this profile.
    pub runs: u64,
    /// Wall-clock nanoseconds summed over the accumulated runs.
    pub wall_ns: u64,
    /// Host/build the profile was measured on.
    pub host: HostMeta,
    /// Whole-job nanoseconds per thread (pool-level spans).
    pub pool_job_ns: Vec<u64>,
    /// Timeline events overwritten (ring-wrap drops) while the profiled
    /// runs were recorded: 0 when no bounded `Timeline` was attached or
    /// nothing wrapped, nonzero when the rings lost history — a profile
    /// whose timeline silently truncated must say so.
    pub timeline_dropped: u64,
    /// Per-stage measurements, in plan order.
    pub stages: Vec<StageProfile>,
}

impl RunProfile {
    /// Total compute nanoseconds over all stages and threads.
    pub fn total_compute_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.compute_ns()).sum()
    }

    /// Total barrier-wait nanoseconds over all stages and threads.
    pub fn total_barrier_wait_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.barrier_wait_ns()).sum()
    }

    /// Worst per-stage load-imbalance ratio (`max/mean` compute time),
    /// over stages where any thread computed.
    pub fn max_stage_imbalance(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.imbalance())
            .fold(1.0, f64::max)
    }

    /// Aggregate load-imbalance ratio: `max/mean` of per-thread compute
    /// time summed across all stages.
    pub fn load_imbalance(&self) -> f64 {
        let per = self.per_thread_compute_ns();
        ratio_max_mean(per.into_iter())
    }

    /// Per-thread compute nanoseconds summed across stages.
    pub fn per_thread_compute_ns(&self) -> Vec<u64> {
        let p = usize::try_from(self.threads).unwrap_or(usize::MAX);
        let mut per = vec![0u64; p];
        for s in &self.stages {
            for (tid, t) in s.threads.iter().enumerate() {
                if tid < p {
                    per[tid] += t.compute_ns;
                }
            }
        }
        per
    }

    /// Barrier-wait share of thread busy time: total barrier-wait
    /// nanoseconds over total (compute + barrier-wait) nanoseconds, in
    /// `[0, 1]`. This is the fraction of the threads' in-run time spent
    /// synchronizing — the quantity the paper's "minimal synchronization
    /// overhead" claim (§3.2) bounds. `0.0` when nothing was recorded.
    pub fn barrier_share(&self) -> f64 {
        let wait = self.total_barrier_wait_ns();
        let busy = self.total_compute_ns() + wait;
        if busy == 0 {
            return 0.0;
        }
        wait as f64 / busy as f64
    }

    /// Barrier-wait share of wall time: total wait over
    /// `threads × wall`. Sensitive to host oversubscription (threads
    /// time-slicing inflate wall); prefer [`barrier_share`] for
    /// assertions.
    pub fn barrier_share_of_wall(&self) -> f64 {
        let denom = self.threads.saturating_mul(self.wall_ns);
        if denom == 0 {
            return 0.0;
        }
        self.total_barrier_wait_ns() as f64 / denom as f64
    }

    /// Merge two profiles of the same shape (same `n`, `threads`, stage
    /// count, and stage labels) by summing every counter. Associative
    /// and commutative; `Err` describes the first shape mismatch.
    pub fn try_merge(&self, other: &RunProfile) -> Result<RunProfile, String> {
        if self.schema != other.schema {
            return Err(format!(
                "schema mismatch: {} vs {}",
                self.schema, other.schema
            ));
        }
        if self.n != other.n || self.threads != other.threads {
            return Err(format!(
                "shape mismatch: n {} threads {} vs n {} threads {}",
                self.n, self.threads, other.n, other.threads
            ));
        }
        if self.stages.len() != other.stages.len() {
            return Err(format!(
                "stage count mismatch: {} vs {}",
                self.stages.len(),
                other.stages.len()
            ));
        }
        if self.host != other.host {
            return Err(format!(
                "host mismatch: {:?} vs {:?} (merging profiles from \
                 different hosts would average incomparable clocks)",
                self.host, other.host
            ));
        }
        let stages = self
            .stages
            .iter()
            .zip(&other.stages)
            .map(|(a, b)| {
                if a.label != b.label {
                    return Err(format!(
                        "stage {} label mismatch: {} vs {}",
                        a.index, a.label, b.label
                    ));
                }
                let p = a.threads.len().max(b.threads.len());
                let threads = (0..p)
                    .map(|tid| {
                        let x = a.threads.get(tid).copied().unwrap_or_default();
                        let y = b.threads.get(tid).copied().unwrap_or_default();
                        ThreadStageStats {
                            compute_ns: x.compute_ns + y.compute_ns,
                            barrier_wait_ns: x.barrier_wait_ns + y.barrier_wait_ns,
                            jobs: x.jobs + y.jobs,
                            elements: x.elements + y.elements,
                        }
                    })
                    .collect();
                Ok(StageProfile {
                    index: a.index,
                    label: a.label.clone(),
                    threads,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let pool_job_ns = (0..self.pool_job_ns.len().max(other.pool_job_ns.len()))
            .map(|tid| {
                self.pool_job_ns.get(tid).copied().unwrap_or(0)
                    + other.pool_job_ns.get(tid).copied().unwrap_or(0)
            })
            .collect();
        Ok(RunProfile {
            schema: self.schema,
            n: self.n,
            threads: self.threads,
            runs: self.runs + other.runs,
            wall_ns: self.wall_ns + other.wall_ns,
            host: self.host.clone(),
            pool_job_ns,
            timeline_dropped: self.timeline_dropped + other.timeline_dropped,
            stages,
        })
    }

    /// Stamp the drop count of the bounded [`Timeline`] that observed
    /// these runs: nonzero means the ring wrapped and the exported
    /// timeline is missing its oldest events.
    #[cfg(feature = "sink")]
    pub fn with_timeline(mut self, timeline: &Timeline) -> RunProfile {
        self.timeline_dropped = timeline.total_dropped();
        self
    }

    /// Relabel the thread slots through `perm` (`perm[new_tid] =
    /// old_tid`). Physical thread identity carries no schedule meaning,
    /// so every derived metric is invariant under this map — the
    /// property tests pin that down.
    pub fn permute_threads(&self, perm: &[usize]) -> RunProfile {
        let remap_u64 = |v: &[u64]| -> Vec<u64> {
            perm.iter()
                .map(|&old| v.get(old).copied().unwrap_or(0))
                .collect()
        };
        RunProfile {
            schema: self.schema,
            n: self.n,
            threads: self.threads,
            runs: self.runs,
            wall_ns: self.wall_ns,
            host: self.host.clone(),
            pool_job_ns: remap_u64(&self.pool_job_ns),
            timeline_dropped: self.timeline_dropped,
            stages: self
                .stages
                .iter()
                .map(|s| StageProfile {
                    index: s.index,
                    label: s.label.clone(),
                    threads: perm
                        .iter()
                        .map(|&old| s.threads.get(old).copied().unwrap_or_default())
                        .collect(),
                })
                .collect(),
        }
    }

    /// Serialize to pretty JSON (the `figures trace` interchange form;
    /// layout guarded by the golden snapshot under `results/`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunProfile serializes")
    }

    /// Parse a profile back from [`to_json`](Self::to_json) output.
    pub fn from_json(s: &str) -> Result<RunProfile, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// `max / mean` of a non-empty integer sequence; `1.0` when the sum is
/// zero (an all-idle stage is not "imbalanced").
fn ratio_max_mean(values: impl Iterator<Item = u64>) -> f64 {
    let mut max = 0u64;
    let mut sum = 0u64;
    let mut count = 0u64;
    for v in values {
        max = max.max(v);
        sum += v;
        count += 1;
    }
    if sum == 0 || count == 0 {
        return 1.0;
    }
    max as f64 * count as f64 / sum as f64
}

#[cfg(all(test, feature = "sink"))]
mod tests {
    use super::*;

    /// A deterministic profile for metric tests: 2 stages × 3 threads.
    fn sample() -> RunProfile {
        let c = Collector::new(3, 2);
        // Stage 0: balanced 100ns each, 8 elements each.
        for tid in 0..3 {
            c.stage(
                tid,
                0,
                Duration::from_nanos(100),
                Duration::from_nanos(10),
                1,
                8,
            );
        }
        // Stage 1: thread 2 does double work.
        for (tid, ns) in [(0usize, 100u64), (1, 100), (2, 200)] {
            c.stage(
                tid,
                1,
                Duration::from_nanos(ns),
                Duration::from_nanos(5),
                1,
                ns / 10,
            );
        }
        c.pool_job(0, Duration::from_nanos(400));
        c.pool_job(1, Duration::from_nanos(400));
        c.pool_job(2, Duration::from_nanos(500));
        c.finish(
            64,
            &["par[3x8]".to_string(), "exchange(mu=4)".to_string()],
            Duration::from_nanos(600),
        )
    }

    #[test]
    fn metrics_from_collected_slots() {
        let p = sample();
        assert_eq!(p.threads, 3);
        assert_eq!(p.stages.len(), 2);
        assert!((p.stages[0].imbalance() - 1.0).abs() < 1e-12);
        // Stage 1: max 200, mean 400/3.
        let want = 200.0 / (400.0 / 3.0);
        assert!((p.stages[1].imbalance() - want).abs() < 1e-12);
        assert!((p.max_stage_imbalance() - want).abs() < 1e-12);
        // Barrier share: waits 3*10 + 3*5 = 45; compute 300 + 400 = 700.
        assert!((p.barrier_share() - 45.0 / 745.0).abs() < 1e-12);
        assert_eq!(p.per_thread_compute_ns(), vec![200, 200, 300]);
    }

    #[test]
    fn merge_sums_counters_and_runs() {
        let p = sample();
        let m = p.try_merge(&p).unwrap();
        assert_eq!(m.runs, 2);
        assert_eq!(m.wall_ns, 2 * p.wall_ns);
        assert_eq!(m.total_compute_ns(), 2 * p.total_compute_ns());
        // Ratios are scale-invariant: doubling every counter fixes them.
        assert!((m.max_stage_imbalance() - p.max_stage_imbalance()).abs() < 1e-12);
        assert!((m.barrier_share() - p.barrier_share()).abs() < 1e-12);
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let p = sample();
        let mut q = p.clone();
        q.n = 128;
        assert!(p.try_merge(&q).is_err());
        let mut r = p.clone();
        r.stages[0].label = "other".to_string();
        assert!(p.try_merge(&r).is_err());
        let mut h = p.clone();
        h.host.cores += 1;
        assert!(p.try_merge(&h).is_err());
    }

    #[test]
    fn finish_stamps_current_host() {
        let p = sample();
        assert_eq!(p.schema, SCHEMA_VERSION);
        assert_eq!(p.host, HostMeta::current());
        assert!(p.host.cores >= 1);
        assert!(p.host.mu >= 1);
        assert!(p.host.cache_line_bytes.is_power_of_two());
        // spiral-trace linked in implies the trace layer is compiled in.
        assert!(p.host.features.iter().any(|f| f == "trace"));
    }

    #[test]
    fn json_roundtrip() {
        let p = sample();
        let s = p.to_json();
        let q = RunProfile::from_json(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn idle_stage_reports_unit_imbalance() {
        let c = Collector::new(4, 1);
        let p = c.finish(16, &["seq".to_string()], Duration::from_nanos(1));
        assert_eq!(p.stages[0].imbalance(), 1.0);
        assert_eq!(p.barrier_share(), 0.0);
        assert_eq!(p.stages[0].throughput_eps(), 0.0);
    }

    #[test]
    fn collector_ignores_out_of_range_slots() {
        let c = Collector::new(2, 1);
        c.stage(7, 0, Duration::from_nanos(1), Duration::from_nanos(1), 1, 1);
        c.stage(0, 9, Duration::from_nanos(1), Duration::from_nanos(1), 1, 1);
        c.pool_job(5, Duration::from_nanos(1));
        let p = c.finish(4, &["x".to_string()], Duration::from_nanos(1));
        assert_eq!(p.total_compute_ns(), 0);
        assert_eq!(p.pool_job_ns, vec![0, 0]);
    }

    #[test]
    fn slots_are_line_padded() {
        let c = Collector::new(2, 3);
        let base = c.slots.as_ptr() as usize;
        assert_eq!(base % CACHE_LINE_BYTES, 0);
        for i in 0..c.slots.len() {
            let addr = &c.slots[i] as *const Slot as usize;
            assert_eq!(addr % CACHE_LINE_BYTES, 0);
        }
    }
}
