//! Flight recorder: an always-on bounded [`Timeline`] plus triggered
//! Perfetto persistence.
//!
//! The offline [`Timeline`] workflow is "instrument a run, export it".
//! A serving process needs the inverse: record *continuously* into small
//! bounded rings (so memory stays fixed and the hot path stays
//! single-writer lock-free), and only when something goes wrong — an SLO
//! breach, a shed request, an explicit `SS01 dump` — export the recent
//! past as a Perfetto trace with the triggering request marked. That is
//! exactly a flight recorder: nobody reads it until the incident, and
//! then the last seconds before the incident are the evidence.
//!
//! The recorder is a thin policy layer over [`Timeline`]:
//!
//! * it forwards the [`TimelineSink`] hooks, so server workers record
//!   `RequestServe` spans and dispatchers record `PoolExecute` spans
//!   into it exactly as they would into any timeline;
//! * [`FlightRecorder::breach`] records an [`MarkKind::SloBreach`]
//!   instant carrying the triggering request's sequence number — the
//!   exported trace shows the mark on the same lane, at the same
//!   timestamp, as the request's span — and latches, so the *first*
//!   breach asks the caller to persist and later breaches only mark;
//! * [`FlightRecorder::dump`] exports everything currently held as
//!   Chrome-trace/Perfetto JSON.
//!
//! Ring capacity bounds the retained history: at `c` slots per thread
//! and an event rate `r`, the recorder holds the last `c / r` seconds.
//! Overwritten history is never silent — the wrap counter is exported in
//! the trace's `otherData.dropped_events` and as a gauge in the serving
//! metrics snapshot.

use crate::timeline::Timeline;
use spiral_smp::trace::{MarkKind, SpanKind, TimelineSink};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Default per-thread ring capacity of an always-on recorder: small
/// enough to be memory-irrelevant (24 B/slot), large enough to hold the
/// last few thousand request spans per worker.
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

/// Always-on bounded timeline with breach-triggered export.
pub struct FlightRecorder {
    timeline: Timeline,
    breaches: AtomicU64,
    dump_latch: AtomicBool,
}

impl FlightRecorder {
    /// Recorder for `threads` recording threads at the default capacity.
    pub fn new(threads: usize) -> FlightRecorder {
        FlightRecorder::with_capacity(threads, DEFAULT_RECORDER_CAPACITY)
    }

    /// Recorder with an explicit per-thread ring capacity (≥ 1).
    pub fn with_capacity(threads: usize, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            timeline: Timeline::with_capacity(threads, capacity),
            breaches: AtomicU64::new(0),
            dump_latch: AtomicBool::new(false),
        }
    }

    /// The underlying timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// SLO breaches recorded so far.
    pub fn breaches(&self) -> u64 {
        self.breaches.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap across all threads (the drop counter the
    /// serving metrics snapshot exposes as a gauge).
    pub fn dropped_events(&self) -> u64 {
        self.timeline.total_dropped()
    }

    /// Record an SLO breach for the request with sequence number `seq`
    /// on recording thread `tid` at `at`. Returns `true` exactly once —
    /// for the first breach — telling the caller to persist
    /// [`dump`](Self::dump) now; subsequent breaches only add their mark
    /// to the rings.
    pub fn breach(&self, tid: usize, seq: u32, at: Instant) -> bool {
        self.mark(tid, MarkKind::SloBreach, seq, at);
        self.breaches.fetch_add(1, Ordering::Relaxed);
        !self.dump_latch.swap(true, Ordering::Relaxed)
    }

    /// Re-arm the first-breach persistence latch (a new load phase may
    /// want a fresh incident capture).
    pub fn rearm(&self) {
        self.dump_latch.store(false, Ordering::Relaxed);
    }

    /// Export everything currently held as Chrome-trace/Perfetto JSON.
    /// Breach marks render as `SLO BREACH request <seq>` instants in the
    /// `slo` category, on the same lane and timestamp as the triggering
    /// request's `request <seq>` span.
    pub fn dump(&self) -> String {
        self.timeline.chrome_trace(&[])
    }
}

impl TimelineSink for FlightRecorder {
    fn span(&self, tid: usize, kind: SpanKind, stage: u32, start: Instant, end: Instant) {
        self.timeline.span(tid, kind, stage, start, end);
    }

    fn mark(&self, tid: usize, kind: MarkKind, stage: u32, at: Instant) {
        self.timeline.mark(tid, kind, stage, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;
    use std::time::Duration;

    #[test]
    fn breach_marks_and_latches_once() {
        let fr = FlightRecorder::with_capacity(2, 16);
        let now = Instant::now();
        fr.span(
            0,
            SpanKind::RequestServe,
            7,
            now,
            now + Duration::from_micros(50),
        );
        assert!(fr.breach(0, 7, now + Duration::from_micros(50)));
        assert!(!fr.breach(0, 8, now + Duration::from_micros(60)));
        assert_eq!(fr.breaches(), 2);
        fr.rearm();
        assert!(fr.breach(1, 9, now + Duration::from_micros(70)));
    }

    #[test]
    fn dump_is_valid_perfetto_with_breach_marked() {
        let fr = FlightRecorder::with_capacity(1, 16);
        let now = Instant::now();
        fr.span(
            0,
            SpanKind::RequestServe,
            3,
            now,
            now + Duration::from_micros(80),
        );
        fr.span(
            0,
            SpanKind::PoolExecute,
            0,
            now + Duration::from_micros(10),
            now + Duration::from_micros(70),
        );
        fr.breach(0, 3, now + Duration::from_micros(80));
        let json = fr.dump();
        let v: Value = serde_json::from_str(&json).expect("dump parses as JSON");
        assert!(matches!(v.get("traceEvents"), Some(Value::Arr(_))));
        assert!(json.contains("SLO BREACH request 3"));
        assert!(json.contains("request 3"));
        assert!(json.contains("pool execute 0"));
    }

    #[test]
    fn bounded_rings_report_drops() {
        let fr = FlightRecorder::with_capacity(1, 4);
        let now = Instant::now();
        for seq in 0..10u32 {
            fr.span(0, SpanKind::RequestServe, seq, now, now);
        }
        assert_eq!(fr.dropped_events(), 6);
        assert!(fr.dump().contains("\"dropped_events\": 6"));
    }
}
