//! Event-timeline recording and Chrome-trace/Perfetto export.
//!
//! [`crate::Collector`] answers *how much* time each (stage, thread)
//! pair spent computing and waiting; it cannot answer *when*. Scheduling
//! gaps, barrier convoys (every thread arriving staggered behind one
//! straggler), and tuner candidate churn are temporal phenomena, so this
//! module adds the missing recorder: a [`Timeline`] of timestamped spans
//! and instants, one bounded lock-free ring buffer per thread, fed
//! through the [`spiral_smp::trace::TimelineSink`] hook.
//!
//! Design constraints, in order:
//!
//! 1. **No shared writes.** Every event for thread `tid` is recorded *by*
//!    thread `tid` into its own ring; rings are separate allocations, so
//!    recording never bounces a cache line between threads.
//! 2. **Bounded.** Each ring holds a fixed number of slots and wraps,
//!    keeping the most recent events; [`Timeline::dropped`] reports how
//!    many were overwritten. Recording never allocates.
//! 3. **Safe.** Slots are plain relaxed atomics (single writer, readers
//!    only after the run's completion synchronization), so the recorder
//!    is data-race-free by construction — no `unsafe`.
//!
//! The exporter ([`Timeline::chrome_trace`]) emits the Chrome
//! trace-event JSON format (`B`/`E` duration events plus `i` instants),
//! which loads directly in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev).

use serde::Value;
use spiral_smp::trace::{MarkKind, SpanKind, TimelineSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default per-thread ring capacity: a traced transform emits ~2 spans +
/// 1 mark per stage per thread, so 4096 slots cover plans hundreds of
/// stages deep with room for repeated runs.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What one timeline event is. Span kinds carry a duration
/// (`start_ns < end_ns` possible); mark kinds are instants
/// (`start_ns == end_ns`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimelineEventKind {
    /// A thread's whole pool job.
    PoolJob,
    /// One thread's portion of one stage.
    StageCompute,
    /// Blocked at the stage barrier (arrival → release).
    BarrierWait,
    /// The tuner evaluating one candidate (stage = candidate index).
    TunerCandidate,
    /// One whole transform executed as part of a batch (stage =
    /// transform index within the batch).
    BatchTransform,
    /// Instant: the stage barrier released this thread.
    BarrierRelease,
    /// Instant: a watchdog expired on this thread.
    WatchdogFire,
    /// Instant: the tuner quarantined a candidate.
    TunerReject,
    /// One served network request on a server worker thread (stage =
    /// request sequence number on that worker).
    RequestServe,
    /// One coalesced batch pushed through the plan executor by a serving
    /// dispatcher (stage = dispatch sequence number).
    PoolExecute,
    /// Instant: a serving SLO breach (deadline blown or request shed);
    /// stage = the triggering request's sequence number.
    SloBreach,
}

impl TimelineEventKind {
    /// True for instantaneous marks (zero-duration events).
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            TimelineEventKind::BarrierRelease
                | TimelineEventKind::WatchdogFire
                | TimelineEventKind::TunerReject
                | TimelineEventKind::SloBreach
        )
    }

    fn code(self) -> u64 {
        match self {
            TimelineEventKind::PoolJob => 0,
            TimelineEventKind::StageCompute => 1,
            TimelineEventKind::BarrierWait => 2,
            TimelineEventKind::TunerCandidate => 3,
            TimelineEventKind::BarrierRelease => 4,
            TimelineEventKind::WatchdogFire => 5,
            TimelineEventKind::TunerReject => 6,
            TimelineEventKind::BatchTransform => 7,
            TimelineEventKind::RequestServe => 8,
            TimelineEventKind::PoolExecute => 9,
            TimelineEventKind::SloBreach => 10,
        }
    }

    fn from_code(c: u64) -> TimelineEventKind {
        match c {
            0 => TimelineEventKind::PoolJob,
            1 => TimelineEventKind::StageCompute,
            2 => TimelineEventKind::BarrierWait,
            3 => TimelineEventKind::TunerCandidate,
            4 => TimelineEventKind::BarrierRelease,
            5 => TimelineEventKind::WatchdogFire,
            7 => TimelineEventKind::BatchTransform,
            8 => TimelineEventKind::RequestServe,
            9 => TimelineEventKind::PoolExecute,
            10 => TimelineEventKind::SloBreach,
            _ => TimelineEventKind::TunerReject,
        }
    }

    /// Chrome trace-event category string.
    pub fn category(self) -> &'static str {
        match self {
            TimelineEventKind::PoolJob => "pool",
            TimelineEventKind::StageCompute | TimelineEventKind::BatchTransform => "compute",
            TimelineEventKind::BarrierWait | TimelineEventKind::BarrierRelease => "barrier",
            TimelineEventKind::TunerCandidate | TimelineEventKind::TunerReject => "tuner",
            TimelineEventKind::WatchdogFire => "fault",
            TimelineEventKind::RequestServe | TimelineEventKind::PoolExecute => "serve",
            TimelineEventKind::SloBreach => "slo",
        }
    }
}

/// One recorded event, timestamps in nanoseconds since the timeline's
/// epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Logical thread that recorded the event.
    pub tid: usize,
    /// Event kind (span or instant).
    pub kind: TimelineEventKind,
    /// Stage index for executor events, candidate index for tuner
    /// events, 0 for pool jobs.
    pub stage: u32,
    /// Start offset from the timeline epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset; equals `start_ns` for instants.
    pub end_ns: u64,
}

impl TimelineEvent {
    /// Span duration in nanoseconds (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One slot of a thread ring: `meta` packs `kind` (low 32 bits) and
/// `stage` (high 32 bits). Plain atomics so concurrent (misuse) access
/// can tear an event logically but never races.
#[derive(Default)]
struct Slot {
    meta: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

/// One thread's bounded event ring: a separate allocation per thread so
/// writer threads never share lines, with the write counter padded away
/// from the slots.
#[repr(align(64))]
struct ThreadRing {
    /// Total events ever recorded by the owner (wraps modulo capacity
    /// into `slots`; monotone, so `written - capacity` events were
    /// dropped once it exceeds the capacity).
    written: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(capacity: usize) -> ThreadRing {
        ThreadRing {
            written: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::default()).collect(),
        }
    }

    /// Record one event. Only the owning thread calls this on the hot
    /// path; relaxed stores are enough because readers are ordered after
    /// the run by the pool's completion synchronization.
    fn push(&self, kind: TimelineEventKind, stage: u32, start_ns: u64, end_ns: u64) {
        let i = self.written.load(Ordering::Relaxed);
        let slot = &self.slots
            [usize::try_from(i % self.slots.len() as u64).expect("index below capacity")];
        slot.meta
            .store(kind.code() | (u64::from(stage) << 32), Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.end_ns.store(end_ns, Ordering::Relaxed);
        self.written.store(i + 1, Ordering::Release);
    }

    /// Events currently held, oldest first.
    fn events(&self, tid: usize, out: &mut Vec<TimelineEvent>) {
        let written = self.written.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let held = written.min(cap);
        // Oldest surviving event is at index `written - held` (mod cap).
        for k in 0..held {
            let i = usize::try_from((written - held + k) % cap).expect("index below capacity");
            let meta = self.slots[i].meta.load(Ordering::Relaxed);
            out.push(TimelineEvent {
                tid,
                kind: TimelineEventKind::from_code(meta & 0xffff_ffff),
                stage: (meta >> 32) as u32,
                start_ns: self.slots[i].start_ns.load(Ordering::Relaxed),
                end_ns: self.slots[i].end_ns.load(Ordering::Relaxed),
            });
        }
    }
}

/// Bounded, lock-free event-timeline recorder: one ring per thread,
/// timestamps relative to the construction epoch. Implements
/// [`TimelineSink`]; plug it into
/// `ParallelExecutor::try_execute_observed`, `Pool::try_run_observed`,
/// or the tuner's observed search (all feature `trace`).
pub struct Timeline {
    epoch: Instant,
    rings: Box<[ThreadRing]>,
}

impl Timeline {
    /// Timeline for `threads` threads with the default ring capacity.
    pub fn new(threads: usize) -> Timeline {
        Timeline::with_capacity(threads, DEFAULT_RING_CAPACITY)
    }

    /// Timeline with an explicit per-thread ring capacity (≥ 1).
    pub fn with_capacity(threads: usize, capacity: usize) -> Timeline {
        let threads = threads.max(1);
        let capacity = capacity.max(1);
        Timeline {
            epoch: Instant::now(),
            rings: (0..threads).map(|_| ThreadRing::new(capacity)).collect(),
        }
    }

    /// Number of thread rings.
    pub fn threads(&self) -> usize {
        self.rings.len()
    }

    /// Per-thread ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.rings[0].slots.len()
    }

    /// Events dropped (overwritten after ring wrap) on thread `tid`.
    pub fn dropped(&self, tid: usize) -> u64 {
        self.rings.get(tid).map_or(0, |r| {
            r.written
                .load(Ordering::Acquire)
                .saturating_sub(r.slots.len() as u64)
        })
    }

    /// Total events dropped across all threads.
    pub fn total_dropped(&self) -> u64 {
        (0..self.rings.len()).map(|t| self.dropped(t)).sum()
    }

    /// Forget all recorded events (reuse across runs; the epoch is
    /// unchanged, so timestamps stay comparable across the reuse).
    pub fn reset(&self) {
        for r in self.rings.iter() {
            r.written.store(0, Ordering::Release);
        }
    }

    /// Offset of `t` from the epoch in nanoseconds (0 if `t` predates
    /// the epoch, which cannot happen for events recorded through the
    /// sink after construction).
    fn offset_ns(&self, t: Instant) -> u64 {
        crate::ns_u64(t.saturating_duration_since(self.epoch))
    }

    /// All held events, ordered by thread then chronologically (the
    /// per-thread recording order, which is start-time sorted because
    /// each thread records its own events as they finish).
    pub fn events(&self) -> Vec<TimelineEvent> {
        let mut out = Vec::new();
        for (tid, ring) in self.rings.iter().enumerate() {
            ring.events(tid, &mut out);
        }
        out
    }

    /// Summed duration of all spans of `kind`, nanoseconds.
    pub fn total_ns(&self, kind: TimelineEventKind) -> u64 {
        self.events()
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration_ns())
            .sum()
    }

    /// Number of `kind` events recorded for `stage`.
    pub fn count(&self, kind: TimelineEventKind, stage: u32) -> usize {
        self.events()
            .iter()
            .filter(|e| e.kind == kind && e.stage == stage)
            .count()
    }

    /// Export as Chrome trace-event JSON (loads in `chrome://tracing`
    /// and Perfetto). Spans become `B`/`E` duration-event pairs on
    /// `pid 0`, one Chrome "thread" per pool thread; instants become
    /// thread-scoped `i` events. `labels[stage]`, when provided, names
    /// executor stage events after the plan's stage IR labels.
    pub fn chrome_trace(&self, labels: &[String]) -> String {
        let mut events: Vec<Value> = Vec::new();
        // Process/thread metadata so Perfetto shows meaningful lanes.
        events.push(meta_event("process_name", 0, "spiral-fft run"));
        for tid in 0..self.rings.len() {
            events.push(meta_event_tid(
                "thread_name",
                tid,
                &format!("pool thread {tid}"),
            ));
        }
        let mut per_thread = self.events();
        // Chrome requires B/E properly ordered per thread; our rings are
        // already chronological per thread, but instants recorded at a
        // span boundary must not precede the span's E. Sort stably by
        // (tid, start) keeping recording order for ties.
        per_thread.sort_by_key(|e| (e.tid, e.start_ns));
        for e in &per_thread {
            let name = event_name(e, labels);
            let cat = e.kind.category();
            if e.kind.is_instant() {
                events.push(obj(vec![
                    ("name", Value::Str(name)),
                    ("cat", Value::Str(cat.to_string())),
                    ("ph", Value::Str("i".to_string())),
                    ("s", Value::Str("t".to_string())),
                    ("ts", Value::Num(e.start_ns as f64 / 1e3)),
                    ("pid", Value::Num(0.0)),
                    ("tid", Value::Num(e.tid as f64)),
                ]));
            } else {
                let common = |ph: &str, ts_ns: u64| {
                    obj(vec![
                        ("name", Value::Str(name.clone())),
                        ("cat", Value::Str(cat.to_string())),
                        ("ph", Value::Str(ph.to_string())),
                        ("ts", Value::Num(ts_ns as f64 / 1e3)),
                        ("pid", Value::Num(0.0)),
                        ("tid", Value::Num(e.tid as f64)),
                    ])
                };
                events.push(common("B", e.start_ns));
                events.push(common("E", e.end_ns));
            }
        }
        // B/E pairs of zero-length spans must still appear B-before-E;
        // the per-event emission above guarantees it. Nested spans
        // (compute inside pool job) are fine: Chrome nests by timestamps.
        let doc = obj(vec![
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::Str("ns".to_string())),
            (
                "otherData",
                obj(vec![
                    ("producer", Value::Str("spiral-trace".to_string())),
                    ("dropped_events", Value::Num(self.total_dropped() as f64)),
                ]),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
    }
}

impl TimelineSink for Timeline {
    fn span(&self, tid: usize, kind: SpanKind, stage: u32, start: Instant, end: Instant) {
        if let Some(ring) = self.rings.get(tid) {
            let kind = match kind {
                SpanKind::PoolJob => TimelineEventKind::PoolJob,
                SpanKind::StageCompute => TimelineEventKind::StageCompute,
                SpanKind::BarrierWait => TimelineEventKind::BarrierWait,
                SpanKind::TunerCandidate => TimelineEventKind::TunerCandidate,
                SpanKind::BatchTransform => TimelineEventKind::BatchTransform,
                SpanKind::RequestServe => TimelineEventKind::RequestServe,
                SpanKind::PoolExecute => TimelineEventKind::PoolExecute,
            };
            let s = self.offset_ns(start);
            ring.push(kind, stage, s, self.offset_ns(end).max(s));
        }
    }

    fn mark(&self, tid: usize, kind: MarkKind, stage: u32, at: Instant) {
        if let Some(ring) = self.rings.get(tid) {
            let kind = match kind {
                MarkKind::BarrierRelease => TimelineEventKind::BarrierRelease,
                MarkKind::WatchdogFire => TimelineEventKind::WatchdogFire,
                MarkKind::TunerReject => TimelineEventKind::TunerReject,
                MarkKind::SloBreach => TimelineEventKind::SloBreach,
            };
            let t = self.offset_ns(at);
            ring.push(kind, stage, t, t);
        }
    }
}

/// Human-readable event name for the exported trace.
fn event_name(e: &TimelineEvent, labels: &[String]) -> String {
    let stage_label = || {
        labels
            .get(e.stage as usize)
            .cloned()
            .unwrap_or_else(|| format!("stage {}", e.stage))
    };
    match e.kind {
        TimelineEventKind::PoolJob => "pool job".to_string(),
        TimelineEventKind::StageCompute => stage_label(),
        TimelineEventKind::BarrierWait => format!("barrier after {}", stage_label()),
        TimelineEventKind::BarrierRelease => format!("release {}", stage_label()),
        TimelineEventKind::WatchdogFire => format!("WATCHDOG {}", stage_label()),
        TimelineEventKind::TunerCandidate => format!("candidate {}", e.stage),
        TimelineEventKind::TunerReject => format!("reject candidate {}", e.stage),
        TimelineEventKind::BatchTransform => format!("batch transform {}", e.stage),
        TimelineEventKind::RequestServe => format!("request {}", e.stage),
        TimelineEventKind::PoolExecute => format!("pool execute {}", e.stage),
        TimelineEventKind::SloBreach => format!("SLO BREACH request {}", e.stage),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn meta_event(name: &str, pid: usize, value: &str) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::Num(pid as f64)),
        ("args", obj(vec![("name", Value::Str(value.to_string()))])),
    ])
}

fn meta_event_tid(name: &str, tid: usize, value: &str) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::Num(0.0)),
        ("tid", Value::Num(tid as f64)),
        ("args", obj(vec![("name", Value::Str(value.to_string()))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn t(epoch: Instant, ns: u64) -> Instant {
        epoch + Duration::from_nanos(ns)
    }

    /// A deterministic 2-thread, 2-stage timeline.
    fn sample() -> Timeline {
        let tl = Timeline::with_capacity(2, 64);
        let e = tl.epoch;
        for tid in 0..2usize {
            let skew = (tid as u64) * 10;
            tl.span(tid, SpanKind::StageCompute, 0, t(e, 100 + skew), t(e, 200));
            tl.span(tid, SpanKind::BarrierWait, 0, t(e, 200), t(e, 230));
            tl.mark(tid, MarkKind::BarrierRelease, 0, t(e, 230));
            tl.span(tid, SpanKind::StageCompute, 1, t(e, 230), t(e, 300));
            tl.span(tid, SpanKind::BarrierWait, 1, t(e, 300), t(e, 310));
            tl.mark(tid, MarkKind::BarrierRelease, 1, t(e, 310));
            tl.span(tid, SpanKind::PoolJob, 0, t(e, 90 + skew), t(e, 315));
        }
        tl
    }

    #[test]
    fn records_and_reads_back_in_order() {
        let tl = sample();
        let ev = tl.events();
        assert_eq!(ev.len(), 14);
        // Per-thread chronological recording order is preserved.
        for tid in 0..2 {
            let mine: Vec<_> = ev.iter().filter(|e| e.tid == tid).collect();
            assert_eq!(mine.len(), 7);
            assert_eq!(mine[0].kind, TimelineEventKind::StageCompute);
            assert_eq!(mine.last().unwrap().kind, TimelineEventKind::PoolJob);
        }
        assert_eq!(tl.total_dropped(), 0);
        assert_eq!(tl.count(TimelineEventKind::BarrierRelease, 0), 2);
        assert_eq!(tl.count(TimelineEventKind::BarrierRelease, 1), 2);
    }

    #[test]
    fn totals_sum_span_durations() {
        let tl = sample();
        // Thread 0 compute: 100 + 70; thread 1: 90 + 70.
        assert_eq!(tl.total_ns(TimelineEventKind::StageCompute), 330);
        assert_eq!(tl.total_ns(TimelineEventKind::BarrierWait), 2 * (30 + 10));
        // Instants have zero duration.
        assert_eq!(tl.total_ns(TimelineEventKind::BarrierRelease), 0);
    }

    #[test]
    fn ring_wraps_keeping_most_recent() {
        let tl = Timeline::with_capacity(1, 4);
        let e = tl.epoch;
        for i in 0..10u32 {
            tl.mark(0, MarkKind::BarrierRelease, i, t(e, u64::from(i) * 100));
        }
        assert_eq!(tl.dropped(0), 6);
        let ev = tl.events();
        assert_eq!(ev.len(), 4);
        // Oldest-first among the survivors: stages 6, 7, 8, 9.
        let stages: Vec<u32> = ev.iter().map(|x| x.stage).collect();
        assert_eq!(stages, vec![6, 7, 8, 9]);
    }

    #[test]
    fn reset_clears_events() {
        let tl = sample();
        assert!(!tl.events().is_empty());
        tl.reset();
        assert!(tl.events().is_empty());
        assert_eq!(tl.total_dropped(), 0);
    }

    #[test]
    fn out_of_range_tid_is_ignored() {
        let tl = Timeline::with_capacity(2, 8);
        let e = tl.epoch;
        tl.span(9, SpanKind::PoolJob, 0, t(e, 0), t(e, 10));
        tl.mark(9, MarkKind::WatchdogFire, 0, t(e, 5));
        assert!(tl.events().is_empty());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_balanced_phases() {
        let tl = sample();
        let s = tl.chrome_trace(&["par[2x8]".to_string(), "exchange".to_string()]);
        let v: Value = serde_json::from_str(&s).expect("chrome trace parses");
        let events = match v.get("traceEvents") {
            Some(Value::Arr(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let mut begins = 0usize;
        let mut ends = 0usize;
        for ev in events {
            match ev.get("ph") {
                Some(Value::Str(p)) if p == "B" => begins += 1,
                Some(Value::Str(p)) if p == "E" => ends += 1,
                Some(Value::Str(p)) => assert!(p == "i" || p == "M", "unexpected ph {p}"),
                other => panic!("event without ph: {other:?}"),
            }
        }
        assert_eq!(begins, ends);
        assert_eq!(begins, 10); // 5 spans per thread.
        assert!(s.contains("par[2x8]"));
        assert!(s.contains("pool thread 1"));
    }

    #[test]
    fn instant_span_collapses_rather_than_inverting() {
        let tl = Timeline::with_capacity(1, 8);
        let e = tl.epoch;
        // end < start (clock weirdness) must clamp, not underflow.
        tl.span(0, SpanKind::StageCompute, 0, t(e, 100), t(e, 50));
        let ev = tl.events();
        assert_eq!(ev[0].start_ns, 100);
        assert_eq!(ev[0].end_ns, 100);
    }
}
