//! Live telemetry primitives: lock-free log-linear histograms, monotonic
//! counters, gauges, and a static-layout [`MetricsRegistry`].
//!
//! [`crate::Collector`] and [`crate::Timeline`] observe *one run* and are
//! read after it completes. A serving process needs the complement:
//! metrics that accumulate across millions of requests and can be
//! snapshotted *while the hot path keeps writing*. Three primitives:
//!
//! * [`Histogram`] / [`ShardedHistogram`] — HDR-style log-linear latency
//!   histograms: [`MAGNITUDES`] base-2 magnitude groups ×
//!   [`SUB_BUCKETS`] linear sub-buckets. Recording is one array index
//!   computation (a `leading_zeros` and a shift) plus relaxed atomic
//!   adds — no locks, no allocation, wait-free. The sharded form gives
//!   each writer thread its own cache-line-padded bucket array, so the
//!   hot path never bounces a line between threads; snapshots merge the
//!   shards.
//! * [`Counter`] / [`Gauge`] — cache-line-padded monotonic counter and
//!   settable gauge.
//! * [`MetricsRegistry`] — a *static-layout* registry: the full metric
//!   set is declared up front as a `&'static [MetricSpec]` slice and
//!   validated once at construction (unique names, Prometheus suffix
//!   conventions); after that, lookups hand out plain references and the
//!   hot path holds them with zero further synchronization.
//!
//! Snapshots ([`MetricsSnapshot`]) are schema-versioned serializable
//! values ([`METRICS_SCHEMA_VERSION`]) with two renderings: JSON (the
//! `SS01` stats frame payload, layout frozen by the golden under
//! `results/serve_metrics_schema.json`) and Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`], checked by
//! [`lint_prometheus`]).
//!
//! ## Accuracy contract
//!
//! A value `v ≥ 8` lands in the bucket `[lo, lo + lo/8)` whose width is
//! 1/8 of its lower bound; quantiles report the bucket midpoint clamped
//! to the recorded `[min, max]`. The relative quantile error is
//! therefore bounded by the relative bucket width
//! [`MAX_RELATIVE_QUANTILE_ERROR`] (= 1/[`SUB_BUCKETS`]); values below 8
//! are exact. The property tests pin this bound, plus merge
//! associativity/commutativity and quantile monotonicity, across
//! adversarial value sets.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Version stamp of the serialized [`MetricsSnapshot`] layout; bumped on
/// any field change so downstream readers (the `serve stats` CLI, the
/// golden snapshot under `results/`) can detect drift.
///
/// * v1 — initial layout (counters, gauges, sparse histograms).
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Base-2 magnitude groups: one per possible `u64` bit position (the top
/// two groups are unreachable for `u64` inputs and always empty, keeping
/// the layout a full 64 × 8 grid).
pub const MAGNITUDES: usize = 64;

/// Linear sub-buckets per magnitude group; the relative bucket width —
/// and so the quantile error bound — is `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: usize = 8;

/// Total bucket count of one histogram (64 × 8).
pub const BUCKET_COUNT: usize = MAGNITUDES * SUB_BUCKETS;

/// Upper bound on the relative error of [`HistogramSnapshot::quantile`]:
/// the relative width of one log-linear bucket, `1 / SUB_BUCKETS`.
pub const MAX_RELATIVE_QUANTILE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Bucket index of `value`: values below [`SUB_BUCKETS`] map linearly
/// (exact); larger values map to magnitude group `⌊log2 v⌋ - 2` and the
/// 3 bits below the leading bit. Total for every `u64`; never panics.
pub fn bucket_index(value: u64) -> usize {
    let sub_buckets = u64::try_from(SUB_BUCKETS).expect("SUB_BUCKETS fits u64");
    if value < sub_buckets {
        return usize::try_from(value).expect("value below SUB_BUCKETS");
    }
    // value ≥ 8 ⟹ the leading bit position m is in 3..=63.
    let m = 63 - usize::try_from(value.leading_zeros()).expect("leading_zeros fits usize");
    let sub = usize::try_from((value >> (m - 3)) & 0x7).expect("3 bits fit usize");
    (m - 2) * SUB_BUCKETS + sub
}

/// Half-open value range `[lo, hi)` covered by bucket `index`.
/// Unreachable top-of-range buckets report a collapsed
/// `(u64::MAX, u64::MAX)`. Panics if `index ≥ BUCKET_COUNT`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    let group = index / SUB_BUCKETS;
    let sub = u64::try_from(index % SUB_BUCKETS).expect("sub-bucket fits u64");
    if group == 0 {
        return (sub, sub + 1);
    }
    let m = group + 2; // leading-bit position of the group's values
    if m >= 64 {
        return (u64::MAX, u64::MAX);
    }
    let width = 1u64 << (m - 3);
    let lo = (1u64 << m) + sub * width;
    (lo, lo.saturating_add(width))
}

/// Representative value reported for bucket `index`: the midpoint of its
/// range (exact for the linear group 0).
pub fn bucket_midpoint(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// One lock-free log-linear histogram: [`BUCKET_COUNT`] relaxed atomic
/// buckets plus count/sum/min/max. Recording is wait-free and safe from
/// any number of threads; prefer [`ShardedHistogram`] on hot paths so
/// each writer owns its lines.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty (normalized to 0 in snapshots).
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (for latencies: nanoseconds).
    pub fn record(&self, value: u64) {
        // Relaxed everywhere: buckets are independent counters; snapshot
        // readers tolerate a momentarily inconsistent (count, buckets)
        // pair and the serving tier reads snapshots at quiescent points
        // (drain) when exactness matters.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as saturating nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(crate::ns_u64(d));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current contents into a serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push(BucketCount {
                    index: u64::try_from(i).expect("bucket index fits u64"),
                    count: c,
                });
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        let raw_min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            // Normalize the empty sentinel: u64::MAX is not exactly
            // representable in the JSON number model.
            min: if count == 0 { 0 } else { raw_min },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket and the summary fields (reuse between runs; not
    /// atomic with respect to concurrent writers).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// One shard of a [`ShardedHistogram`], aligned to a cache line so the
/// hot summary fields of adjacent shards never share one.
#[repr(align(64))]
struct Shard(Histogram);

/// A histogram sharded one-writer-per-thread: writer `w` only ever
/// touches shard `w % writers`, each shard is cache-line-aligned with a
/// separately allocated bucket array, so concurrent recording shares no
/// cache lines at all. [`snapshot`](ShardedHistogram::snapshot) merges
/// the shards (merging is associative and commutative, so the result is
/// shard-order independent).
pub struct ShardedHistogram {
    shards: Box<[Shard]>,
}

impl ShardedHistogram {
    /// A histogram with one shard per expected writer thread (≥ 1).
    pub fn new(writers: usize) -> ShardedHistogram {
        ShardedHistogram {
            shards: (0..writers.max(1))
                .map(|_| Shard(Histogram::new()))
                .collect(),
        }
    }

    /// Number of writer shards.
    pub fn writers(&self) -> usize {
        self.shards.len()
    }

    /// Record `value` on writer `writer`'s shard (indices wrap, so any
    /// stable per-thread id works).
    pub fn record(&self, writer: usize, value: u64) {
        self.shards[writer % self.shards.len()].0.record(value);
    }

    /// Record a duration as saturating nanoseconds.
    pub fn record_duration(&self, writer: usize, d: Duration) {
        self.record(writer, crate::ns_u64(d));
    }

    /// Total values recorded across shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.0.count()).sum()
    }

    /// Merge all shards into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for s in self.shards.iter() {
            out = out
                .try_merge(&s.0.snapshot())
                .expect("shards of one histogram always merge");
        }
        out
    }

    /// Zero every shard.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.0.reset();
        }
    }
}

/// One nonzero histogram bucket in a snapshot (sparse form).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index (`< BUCKET_COUNT`).
    pub index: u64,
    /// Recorded values in the bucket.
    pub count: u64,
}

/// Point-in-time copy of a histogram: sparse nonzero buckets (ascending
/// index) plus exact count/sum/min/max.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Nonzero buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The empty snapshot (identity element of [`try_merge`](Self::try_merge)).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Structural validity: bucket indices strictly ascending and in
    /// range, bucket counts nonzero and summing to `count`. `Err`
    /// describes the first violation — this is the guard that catches a
    /// mis-sized or corrupted bucket index before it is merged or
    /// quantiled (the property tests' negative control).
    pub fn validate(&self) -> Result<(), String> {
        let mut total = 0u64;
        let mut prev: Option<u64> = None;
        for b in &self.buckets {
            if b.index >= u64::try_from(BUCKET_COUNT).expect("BUCKET_COUNT fits u64") {
                return Err(format!(
                    "bucket index {} out of range (layout is {} buckets)",
                    b.index, BUCKET_COUNT
                ));
            }
            if let Some(p) = prev {
                if b.index <= p {
                    return Err(format!("bucket indices not ascending at {}", b.index));
                }
            }
            if b.count == 0 {
                return Err(format!("zero-count bucket {} in sparse form", b.index));
            }
            prev = Some(b.index);
            total = total.saturating_add(b.count);
        }
        if total != self.count {
            return Err(format!(
                "bucket counts sum to {total} but count is {}",
                self.count
            ));
        }
        Ok(())
    }

    /// Merge two snapshots by summing bucket counts. Associative and
    /// commutative (property-tested); `Err` if either side fails
    /// [`validate`](Self::validate).
    pub fn try_merge(&self, other: &HistogramSnapshot) -> Result<HistogramSnapshot, String> {
        self.validate()?;
        other.validate()?;
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.buckets.len() || j < other.buckets.len() {
            let a = self.buckets.get(i);
            let b = other.buckets.get(j);
            match (a, b) {
                (Some(x), Some(y)) if x.index == y.index => {
                    buckets.push(BucketCount {
                        index: x.index,
                        count: x.count + y.count,
                    });
                    i += 1;
                    j += 1;
                }
                (Some(x), Some(y)) if x.index < y.index => {
                    buckets.push(*x);
                    i += 1;
                }
                (Some(_), Some(y)) => {
                    buckets.push(*y);
                    j += 1;
                }
                (Some(x), None) => {
                    buckets.push(*x);
                    i += 1;
                }
                (None, Some(y)) => {
                    buckets.push(*y);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        let count = self.count + other.count;
        let min = match (self.is_empty(), other.is_empty()) {
            (true, true) => 0,
            (true, false) => other.min,
            (false, true) => self.min,
            (false, false) => self.min.min(other.min),
        };
        Ok(HistogramSnapshot {
            buckets,
            count,
            // Wrapping, to match `Histogram::record`'s relaxed
            // `fetch_add`: merging snapshots equals recording the union.
            sum: self.sum.wrapping_add(other.sum),
            min,
            max: self.max.max(other.max),
        })
    }

    /// Quantile estimate by cumulative rank walk: the midpoint of the
    /// bucket holding the `⌈q·count⌉`-th smallest value, clamped to the
    /// recorded `[min, max]`. Monotone in `q`; relative error bounded by
    /// [`MAX_RELATIVE_QUANTILE_ERROR`]; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut cum = 0u64;
        for b in &self.buckets {
            cum += b.count;
            if cum as f64 >= rank {
                let idx = usize::try_from(b.index)
                    .unwrap_or(BUCKET_COUNT - 1)
                    .min(BUCKET_COUNT - 1);
                return bucket_midpoint(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean recorded value (exact: `sum / count`); 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }
}

/// Cache-line-padded monotonic counter.
#[repr(align(64))]
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Cache-line-padded gauge (settable point-in-time value).
#[repr(align(64))]
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at 0.
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

const _: () = assert!(std::mem::align_of::<Counter>() == 64);
const _: () = assert!(std::mem::align_of::<Gauge>() == 64);

/// Metric kind in a [`MetricSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter; name must end `_total`.
    Counter,
    /// Point-in-time gauge; name must not carry a counter/histogram suffix.
    Gauge,
    /// Log-linear histogram; name must end `_seconds` (latency, recorded
    /// as nanoseconds and exposed as seconds) or `_size` (dimensionless).
    Histogram,
}

/// One declared metric in a registry's static layout.
#[derive(Clone, Copy, Debug)]
pub struct MetricSpec {
    /// Prometheus-style snake_case name, unique within the registry.
    pub name: &'static str,
    /// One-line human description (the `# HELP` text).
    pub help: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
}

/// Suffix conventions enforced at registry construction and by
/// [`lint_prometheus`]: counters end `_total`, histograms end `_seconds`
/// (nanosecond-recorded latencies, exposed in seconds) or `_size`
/// (dimensionless), gauges carry neither reserved suffix.
fn check_name(name: &str, kind: MetricKind) -> Result<(), String> {
    let is_counterish = name.ends_with("_total");
    let is_histish = name.ends_with("_seconds") || name.ends_with("_size");
    match kind {
        MetricKind::Counter if !is_counterish => {
            Err(format!("counter `{name}` must end with `_total`"))
        }
        MetricKind::Histogram if !is_histish => Err(format!(
            "histogram `{name}` must end with `_seconds` or `_size`"
        )),
        MetricKind::Gauge if is_counterish || is_histish => Err(format!(
            "gauge `{name}` must not use a counter/histogram suffix"
        )),
        _ => Ok(()),
    }
}

/// A static-layout metrics registry: the complete metric set is declared
/// as one `&'static` spec slice, validated once, and allocated once.
/// There is no runtime registration — a name lookup failure is a
/// programming error and panics, so hot paths resolve their handles at
/// startup and then touch only padded atomics.
pub struct MetricsRegistry {
    specs: &'static [MetricSpec],
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    histograms: Vec<ShardedHistogram>,
}

impl MetricsRegistry {
    /// Build a registry for `specs`, with `writers` histogram shards per
    /// histogram. `Err` on duplicate names or suffix-convention
    /// violations (the layout is part of the crate's contract; a bad
    /// spec slice must fail loudly at startup, not at exposition time).
    pub fn new(specs: &'static [MetricSpec], writers: usize) -> Result<MetricsRegistry, String> {
        for (i, s) in specs.iter().enumerate() {
            check_name(s.name, s.kind)?;
            if specs[..i].iter().any(|t| t.name == s.name) {
                return Err(format!("duplicate metric name `{}`", s.name));
            }
        }
        Ok(MetricsRegistry {
            specs,
            counters: specs
                .iter()
                .filter(|s| s.kind == MetricKind::Counter)
                .map(|_| Counter::new())
                .collect(),
            gauges: specs
                .iter()
                .filter(|s| s.kind == MetricKind::Gauge)
                .map(|_| Gauge::new())
                .collect(),
            histograms: specs
                .iter()
                .filter(|s| s.kind == MetricKind::Histogram)
                .map(|_| ShardedHistogram::new(writers))
                .collect(),
        })
    }

    /// The declared layout.
    pub fn specs(&self) -> &'static [MetricSpec] {
        self.specs
    }

    fn slot(&self, name: &str, kind: MetricKind) -> usize {
        let mut slot = 0usize;
        for s in self.specs {
            if s.kind == kind {
                if s.name == name {
                    return slot;
                }
                slot += 1;
            }
        }
        panic!("metric `{name}` with kind {kind:?} is not in the registry layout");
    }

    /// The declared counter `name` (panics if absent — static layout).
    pub fn counter(&self, name: &str) -> &Counter {
        &self.counters[self.slot(name, MetricKind::Counter)]
    }

    /// The declared gauge `name` (panics if absent — static layout).
    pub fn gauge(&self, name: &str) -> &Gauge {
        &self.gauges[self.slot(name, MetricKind::Gauge)]
    }

    /// The declared histogram `name` (panics if absent — static layout).
    pub fn histogram(&self, name: &str) -> &ShardedHistogram {
        &self.histograms[self.slot(name, MetricKind::Histogram)]
    }

    /// Snapshot every metric, in declaration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let (mut ci, mut gi, mut hi) = (0usize, 0usize, 0usize);
        for s in self.specs {
            match s.kind {
                MetricKind::Counter => {
                    snap.counters.push(CounterSample {
                        name: s.name.to_string(),
                        help: s.help.to_string(),
                        value: self.counters[ci].get(),
                    });
                    ci += 1;
                }
                MetricKind::Gauge => {
                    snap.gauges.push(GaugeSample {
                        name: s.name.to_string(),
                        help: s.help.to_string(),
                        value: self.gauges[gi].get(),
                    });
                    gi += 1;
                }
                MetricKind::Histogram => {
                    snap.histograms.push(HistogramSample {
                        name: s.name.to_string(),
                        help: s.help.to_string(),
                        histogram: self.histograms[hi].snapshot(),
                    });
                    hi += 1;
                }
            }
        }
        snap
    }
}

/// One exported counter value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name (`*_total`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Counter value.
    pub value: u64,
}

/// One exported gauge value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Gauge value.
    pub value: u64,
}

/// One exported histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name (`*_seconds` latencies record nanoseconds and are
    /// exposed in seconds; `*_size` histograms are dimensionless).
    pub name: String,
    /// Help text.
    pub help: String,
    /// The sparse histogram contents.
    pub histogram: HistogramSnapshot,
}

/// A schema-versioned, serializable copy of a full metric set — the
/// payload of the `SS01` stats frame and the `serve stats` CLI.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Serialization layout version ([`METRICS_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Counters, in declaration order.
    pub counters: Vec<CounterSample>,
    /// Gauges, in declaration order.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, in declaration order.
    pub histograms: Vec<HistogramSample>,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot::new()
    }
}

impl MetricsSnapshot {
    /// An empty snapshot at the current schema version.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot {
            schema: METRICS_SCHEMA_VERSION,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.histogram)
    }

    /// Serialize to pretty JSON (layout frozen by the golden under
    /// `results/serve_metrics_schema.json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("MetricsSnapshot serializes")
    }

    /// Parse a snapshot back from [`to_json`](Self::to_json) output.
    pub fn from_json(s: &str) -> Result<MetricsSnapshot, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Render as Prometheus text exposition: `# HELP`/`# TYPE` headers,
    /// plain samples for counters and gauges, cumulative
    /// `_bucket{le=...}`/`_sum`/`_count` series for histograms.
    /// `*_seconds` histograms record nanoseconds and are exposed in
    /// seconds (bucket bounds and sum divided by 1e9); `*_size`
    /// histograms expose raw bucket bounds. Output passes
    /// [`lint_prometheus`] by construction.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            header(&mut out, &c.name, &c.help, "counter");
            out.push_str(&format!("{} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            header(&mut out, &g.name, &g.help, "gauge");
            out.push_str(&format!("{} {}\n", g.name, g.value));
        }
        for h in &self.histograms {
            let seconds = h.name.ends_with("_seconds");
            header(&mut out, &h.name, &h.help, "histogram");
            let mut cum = 0u64;
            for b in &h.histogram.buckets {
                cum += b.count;
                let idx = usize::try_from(b.index)
                    .unwrap_or(BUCKET_COUNT - 1)
                    .min(BUCKET_COUNT - 1);
                let (_, hi) = bucket_bounds(idx);
                let le = if seconds {
                    format!("{}", hi as f64 / 1e9)
                } else {
                    format!("{}", hi)
                };
                out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", h.name));
            }
            out.push_str(&format!(
                "{}_bucket{{le=\"+Inf\"}} {}\n",
                h.name, h.histogram.count
            ));
            let sum = if seconds {
                format!("{}", h.histogram.sum as f64 / 1e9)
            } else {
                format!("{}", h.histogram.sum)
            };
            out.push_str(&format!("{}_sum {sum}\n", h.name));
            out.push_str(&format!("{}_count {}\n", h.name, h.histogram.count));
        }
        out
    }
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let help = help.replace('\\', "\\\\").replace('\n', "\\n");
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// Lint a Prometheus text exposition: every sample must belong to a
/// declared `# TYPE`; no metric may be declared twice; counters must end
/// `_total`; histograms must end `_seconds` or `_size`; gauges must not
/// use a reserved suffix; histogram `_bucket` series must be cumulative
/// (nondecreasing) and close with an `le="+Inf"` bucket equal to
/// `_count`. `Err` describes the first violation.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    struct Decl {
        kind: String,
        last_bucket: Option<u64>,
        inf_bucket: Option<u64>,
        count: Option<u64>,
        samples: u64,
    }
    let mut decls: Vec<(String, Decl)> = Vec::new();
    let find = |decls: &mut Vec<(String, Decl)>, name: &str| -> Option<usize> {
        decls.iter().position(|(n, _)| n == name)
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with("# HELP") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or(format!("line {lineno}: TYPE without name"))?;
            let kind = it
                .next()
                .ok_or(format!("line {lineno}: TYPE without kind"))?;
            if find(&mut decls, name).is_some() {
                return Err(format!("duplicate metric name `{name}`"));
            }
            match kind {
                "counter" if !name.ends_with("_total") => {
                    return Err(format!("counter `{name}` must end with `_total`"));
                }
                "histogram" if !(name.ends_with("_seconds") || name.ends_with("_size")) => {
                    return Err(format!(
                        "histogram `{name}` must end with `_seconds` or `_size`"
                    ));
                }
                "gauge"
                    if name.ends_with("_total")
                        || name.ends_with("_seconds")
                        || name.ends_with("_size") =>
                {
                    return Err(format!("gauge `{name}` uses a reserved suffix"));
                }
                "counter" | "gauge" | "histogram" => {}
                other => return Err(format!("line {lineno}: unknown TYPE `{other}`")),
            }
            decls.push((
                name.to_string(),
                Decl {
                    kind: kind.to_string(),
                    last_bucket: None,
                    inf_bucket: None,
                    count: None,
                    samples: 0,
                },
            ));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: `name{labels} value` or `name value`.
        let name_end = line
            .find(['{', ' '])
            .ok_or(format!("line {lineno}: malformed sample `{line}`"))?;
        let sample_name = &line[..name_end];
        let value_str = line
            .rsplit(' ')
            .next()
            .ok_or(format!("line {lineno}: sample without value"))?;
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {lineno}: non-numeric value `{value_str}`"))?;
        if !value.is_finite() {
            return Err(format!("line {lineno}: non-finite value `{value_str}`"));
        }
        // Count-valued series (bucket/count) must be exact integers.
        let int_value: Option<u64> = value_str.parse().ok();
        // Attribute the sample to its declaration.
        let (base, series) = if let Some(b) = sample_name.strip_suffix("_bucket") {
            (b, "bucket")
        } else if let Some(b) = sample_name.strip_suffix("_sum") {
            (b, "sum")
        } else if let Some(b) = sample_name.strip_suffix("_count") {
            (b, "count")
        } else {
            (sample_name, "plain")
        };
        // Prefer the histogram interpretation when the base name is a
        // declared histogram; otherwise the full name must be declared.
        let slot = match find(&mut decls, base) {
            Some(i) if decls[i].1.kind == "histogram" && series != "plain" => i,
            _ => find(&mut decls, sample_name)
                .ok_or(format!("sample `{sample_name}` has no TYPE declaration"))?,
        };
        let d = &mut decls[slot].1;
        d.samples += 1;
        if d.kind == "histogram" && series == "bucket" {
            let count = int_value.ok_or(format!("line {lineno}: non-integral bucket count"))?;
            if let Some(prev) = d.last_bucket {
                if count < prev {
                    return Err(format!(
                        "histogram `{base}` bucket series not cumulative at line {lineno}"
                    ));
                }
            }
            d.last_bucket = Some(count);
            if line.contains("le=\"+Inf\"") {
                d.inf_bucket = Some(count);
            }
        }
        if d.kind == "histogram" && series == "count" {
            d.count = Some(int_value.ok_or(format!("line {lineno}: non-integral count"))?);
        }
        if d.kind != "histogram" && series != "plain" {
            return Err(format!(
                "`{sample_name}` looks like a histogram series but `{base}` is a {}",
                d.kind
            ));
        }
    }
    for (name, d) in &decls {
        if d.samples == 0 {
            return Err(format!("metric `{name}` declared but never sampled"));
        }
        if d.kind == "histogram" {
            let inf = d
                .inf_bucket
                .ok_or(format!("histogram `{name}` has no le=\"+Inf\" bucket"))?;
            let count = d
                .count
                .ok_or(format!("histogram `{name}` has no _count sample"))?;
            if inf != count {
                return Err(format!(
                    "histogram `{name}`: +Inf bucket {inf} != count {count}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        // Exact for the linear group.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), usize::try_from(v).unwrap());
            assert_eq!(bucket_midpoint(bucket_index(v)), v);
        }
        // Monotone (non-decreasing) across magnitudes, and every value
        // falls inside its bucket's bounds.
        let probes = [
            8u64,
            9,
            15,
            16,
            100,
            1_000,
            4_095,
            4_096,
            1 << 20,
            (1 << 20) + 17,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut prev = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(i < BUCKET_COUNT);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} outside [{lo},{hi})"
            );
            prev = i;
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            if lo < 8 || hi == u64::MAX {
                continue; // exact linear group / saturated top
            }
            let width = hi - lo;
            assert!(
                width as f64 / lo as f64 <= MAX_RELATIVE_QUANTILE_ERROR + 1e-12,
                "bucket {i}: width {width} over lo {lo}"
            );
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        s.validate().unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!((p50 as f64 - 500.0).abs() / 500.0 <= MAX_RELATIVE_QUANTILE_ERROR);
        assert!((p99 as f64 - 990.0).abs() / 990.0 <= MAX_RELATIVE_QUANTILE_ERROR);
        assert!(s.quantile(0.0) >= 1);
        let p100 = s.quantile(1.0);
        assert!((p100 as f64 - 1000.0).abs() / 1000.0 <= MAX_RELATIVE_QUANTILE_ERROR);
    }

    #[test]
    fn empty_histogram_is_identity() {
        let s = HistogramSnapshot::empty();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        let h = Histogram::new();
        h.record(42);
        let t = h.snapshot();
        assert_eq!(s.try_merge(&t).unwrap(), t);
        assert_eq!(t.try_merge(&s).unwrap(), t);
    }

    #[test]
    fn sharded_recording_is_contention_free_and_merges() {
        let sh = ShardedHistogram::new(4);
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let sh = &sh;
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        sh.record(w, v * 7 + u64::try_from(w).unwrap());
                    }
                });
            }
        });
        let s = sh.snapshot();
        s.validate().unwrap();
        assert_eq!(s.count, 4000);
        assert_eq!(sh.count(), 4000);
    }

    #[test]
    fn merge_rejects_out_of_range_bucket_index() {
        let bogus = HistogramSnapshot {
            buckets: vec![BucketCount {
                index: u64::try_from(BUCKET_COUNT).unwrap(),
                count: 1,
            }],
            count: 1,
            sum: 1,
            min: 1,
            max: 1,
        };
        assert!(bogus.validate().is_err());
        assert!(HistogramSnapshot::empty().try_merge(&bogus).is_err());
        assert!(bogus.try_merge(&HistogramSnapshot::empty()).is_err());
    }

    const SPECS: &[MetricSpec] = &[
        MetricSpec {
            name: "test_requests_total",
            help: "requests",
            kind: MetricKind::Counter,
        },
        MetricSpec {
            name: "test_queue_depth",
            help: "queue depth",
            kind: MetricKind::Gauge,
        },
        MetricSpec {
            name: "test_latency_seconds",
            help: "latency",
            kind: MetricKind::Histogram,
        },
        MetricSpec {
            name: "test_batch_size",
            help: "batch size",
            kind: MetricKind::Histogram,
        },
    ];

    #[test]
    fn registry_static_layout_round_trips() {
        let reg = MetricsRegistry::new(SPECS, 2).unwrap();
        reg.counter("test_requests_total").add(3);
        reg.gauge("test_queue_depth").set(5);
        reg.histogram("test_latency_seconds").record(0, 1_000_000);
        reg.histogram("test_latency_seconds").record(1, 2_000_000);
        reg.histogram("test_batch_size").record(0, 8);
        let snap = reg.snapshot();
        assert_eq!(snap.schema, METRICS_SCHEMA_VERSION);
        assert_eq!(snap.counter("test_requests_total"), Some(3));
        assert_eq!(snap.gauge("test_queue_depth"), Some(5));
        assert_eq!(snap.histogram("test_latency_seconds").unwrap().count, 2);
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        lint_prometheus(&snap.to_prometheus()).unwrap();
    }

    #[test]
    fn registry_rejects_bad_layouts() {
        const DUP: &[MetricSpec] = &[
            MetricSpec {
                name: "x_total",
                help: "",
                kind: MetricKind::Counter,
            },
            MetricSpec {
                name: "x_total",
                help: "",
                kind: MetricKind::Counter,
            },
        ];
        assert!(MetricsRegistry::new(DUP, 1).is_err());
        const BAD_COUNTER: &[MetricSpec] = &[MetricSpec {
            name: "x_count",
            help: "",
            kind: MetricKind::Counter,
        }];
        assert!(MetricsRegistry::new(BAD_COUNTER, 1).is_err());
        const BAD_HIST: &[MetricSpec] = &[MetricSpec {
            name: "x_latency",
            help: "",
            kind: MetricKind::Histogram,
        }];
        assert!(MetricsRegistry::new(BAD_HIST, 1).is_err());
        const BAD_GAUGE: &[MetricSpec] = &[MetricSpec {
            name: "x_total",
            help: "",
            kind: MetricKind::Gauge,
        }];
        assert!(MetricsRegistry::new(BAD_GAUGE, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "not in the registry layout")]
    fn registry_lookup_of_undeclared_metric_panics() {
        let reg = MetricsRegistry::new(SPECS, 1).unwrap();
        let _ = reg.counter("test_absent_total");
    }

    #[test]
    fn prometheus_lint_catches_violations() {
        // Duplicate declaration.
        assert!(lint_prometheus(
            "# TYPE a_total counter\na_total 1\n# TYPE a_total counter\na_total 2\n"
        )
        .is_err());
        // Counter without _total.
        assert!(lint_prometheus("# TYPE a counter\na 1\n").is_err());
        // Histogram without a unit suffix.
        assert!(lint_prometheus("# TYPE a histogram\na_count 0\n").is_err());
        // Undeclared sample.
        assert!(lint_prometheus("stray_metric 1\n").is_err());
        // Non-cumulative buckets.
        assert!(lint_prometheus(
            "# TYPE h_seconds histogram\n\
             h_seconds_bucket{le=\"1\"} 5\nh_seconds_bucket{le=\"2\"} 3\n\
             h_seconds_bucket{le=\"+Inf\"} 5\nh_seconds_sum 1\nh_seconds_count 5\n"
        )
        .is_err());
        // +Inf mismatching _count.
        assert!(lint_prometheus(
            "# TYPE h_seconds histogram\n\
             h_seconds_bucket{le=\"+Inf\"} 4\nh_seconds_sum 1\nh_seconds_count 5\n"
        )
        .is_err());
        // A well-formed document passes.
        lint_prometheus(
            "# HELP a_total things\n# TYPE a_total counter\na_total 7\n\
             # TYPE g gauge\ng 2\n\
             # TYPE h_seconds histogram\n\
             h_seconds_bucket{le=\"0.001\"} 3\nh_seconds_bucket{le=\"+Inf\"} 5\n\
             h_seconds_sum 0.004\nh_seconds_count 5\n",
        )
        .unwrap();
    }

    #[test]
    fn seconds_histograms_expose_second_valued_bounds() {
        let reg = MetricsRegistry::new(SPECS, 1).unwrap();
        // 1ms recorded as nanoseconds.
        reg.histogram("test_latency_seconds").record(0, 1_000_000);
        let text = reg.snapshot().to_prometheus();
        // The le bound must be on the order of 1e-3, not 1e6.
        let le_line = text
            .lines()
            .find(|l| l.starts_with("test_latency_seconds_bucket{le=\"0.001"))
            .unwrap_or_else(|| panic!("no second-valued le bound in:\n{text}"));
        assert!(le_line.ends_with(" 1"));
        lint_prometheus(&text).unwrap();
    }
}
