//! Golden test: the serialized `RunProfile` layout is frozen against a
//! snapshot under `results/`. Downstream consumers (`figures trace`,
//! external plotting) parse this JSON; accidental field renames or
//! structure changes must fail loudly here. Intentional changes: bump
//! `SCHEMA_VERSION` and regenerate with `UPDATE_GOLDEN=1 cargo test -p
//! spiral-trace --test golden`.

use spiral_trace::{HostMeta, RunProfile, StageProfile, ThreadStageStats, SCHEMA_VERSION};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/trace_profile_schema.json")
}

/// A fully populated, deterministic profile exercising every field.
fn representative_profile() -> RunProfile {
    RunProfile {
        schema: SCHEMA_VERSION,
        n: 1024,
        threads: 2,
        runs: 3,
        wall_ns: 123_456,
        // Fixed literal, NOT `HostMeta::current()`: the golden must be
        // byte-identical on every machine that runs this test.
        host: HostMeta {
            cores: 4,
            mu: 4,
            cache_line_bytes: 64,
            simd_width: 4,
            process_budget: 2,
            features: vec!["trace".to_string(), "simd4".to_string()],
        },
        pool_job_ns: vec![120_000, 118_500],
        // A wrapped ring: the golden pins that drop counts serialize.
        timeline_dropped: 3,
        stages: vec![
            StageProfile {
                index: 0,
                label: "par[2x512]+gather".to_string(),
                threads: vec![
                    ThreadStageStats {
                        compute_ns: 50_000,
                        barrier_wait_ns: 1_200,
                        jobs: 3,
                        elements: 1536,
                    },
                    ThreadStageStats {
                        compute_ns: 49_000,
                        barrier_wait_ns: 2_100,
                        jobs: 3,
                        elements: 1536,
                    },
                ],
            },
            StageProfile {
                index: 1,
                label: "exchange(mu=4)".to_string(),
                threads: vec![
                    ThreadStageStats {
                        compute_ns: 8_000,
                        barrier_wait_ns: 300,
                        jobs: 128,
                        elements: 1536,
                    },
                    ThreadStageStats {
                        compute_ns: 8_100,
                        barrier_wait_ns: 250,
                        jobs: 128,
                        elements: 1536,
                    },
                ],
            },
        ],
    }
}

#[test]
fn run_profile_json_matches_golden_snapshot() {
    let got = representative_profile().to_json();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got.trim(),
        want.trim(),
        "RunProfile JSON layout drifted from {}.\n\
         If intentional: bump SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

#[test]
fn golden_snapshot_parses_back() {
    let want = representative_profile();
    let s = std::fs::read_to_string(golden_path());
    if let Ok(s) = s {
        let parsed = RunProfile::from_json(&s).expect("golden snapshot must parse");
        assert_eq!(parsed, want);
        assert_eq!(parsed.schema, SCHEMA_VERSION);
    }
    // Missing file is reported by the other test; don't fail twice.
}
