//! Cross-validation of `spiral-verify`'s *static* load-balance verdicts
//! against *measured* profiles from the instrumented executor.
//!
//! The element counters in a `RunProfile` are deterministic properties
//! of the static schedule, so the static/measured comparison is exact on
//! any host; the timing comparison additionally needs real parallelism
//! and is skipped on single-core machines.

use spiral_codegen::plan::Plan;
use spiral_codegen::ParallelExecutor;
use spiral_rewrite::multicore_dft_expanded;
use spiral_smp::topology::processors;
use spiral_spl::cplx::Cplx;
use spiral_verify::{static_stage_balance, verify_plan, DiagKind, VerifyOptions};

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(0.5 + j as f64, -(j as f64) * 0.25))
        .collect()
}

fn balanced_plan(n: usize, p: usize) -> Plan {
    let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
    Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges()
}

#[test]
fn static_balance_agrees_with_measured_elements_on_generated_plans() {
    for (n, p) in [(1024usize, 2usize), (1024, 4), (4096, 2), (4096, 4)] {
        let plan = balanced_plan(n, p);
        // Static verdict: every stage balanced, no LoadImbalance finding.
        let ratios = static_stage_balance(&plan);
        assert_eq!(ratios.len(), plan.steps.len());
        for (si, r) in ratios.iter().enumerate() {
            assert!(
                *r <= 1.05,
                "n={n} p={p}: static stage {si} imbalance {r:.3}"
            );
        }
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(!report.has_kind(DiagKind::LoadImbalance), "n={n} p={p}");
        // Measured counterpart: the executed schedule distributes
        // elements the way the analyzer said it would.
        let exec = ParallelExecutor::with_auto_barrier(p);
        let (_, profile) = exec.try_execute_traced(&plan, &ramp(n)).unwrap();
        for s in &profile.stages {
            assert!(
                s.element_imbalance() <= 1.05,
                "n={n} p={p} stage {} ({}): measured element imbalance {:.3} \
                 contradicts the clean static verdict",
                s.index,
                s.label,
                s.element_imbalance()
            );
            // Every thread took part in every stage of a balanced plan.
            assert!(
                s.threads.iter().all(|t| t.jobs > 0),
                "n={n} p={p} stage {} ({}): idle thread in a balanced plan",
                s.index,
                s.label
            );
        }
    }
}

#[test]
fn static_and_measured_agree_on_a_deliberately_imbalanced_plan() {
    // 4 chunk programs scheduled round-robin onto 3 threads: thread 0
    // gets two chunks, threads 1–2 one each — a 1.5× imbalance both
    // analyses must report, and report identically (chunk programs are
    // identical, so flop ratios equal element ratios exactly).
    let n = 1024;
    let mut plan = balanced_plan(n, 4);
    plan.threads = 3;
    let static_ratios = static_stage_balance(&plan);
    let worst_static = static_ratios.iter().cloned().fold(1.0, f64::max);
    assert!(
        worst_static > 1.25,
        "static analysis missed the imbalance: {static_ratios:?}"
    );
    let exec = ParallelExecutor::with_auto_barrier(3);
    let (out, profile) = exec.try_execute_traced(&plan, &ramp(n)).unwrap();
    // Execution is still correct — imbalance is a performance defect.
    spiral_spl::cplx::assert_slices_close(&out, &spiral_spl::builder::dft(n).eval(&ramp(n)), 1e-7);
    let worst_measured = profile
        .stages
        .iter()
        .map(|s| s.element_imbalance())
        .fold(1.0, f64::max);
    assert!(
        worst_measured > 1.25,
        "measurement missed the imbalance the analyzer predicted"
    );
    // Exact agreement on the Par stages: 2 chunks vs 4/3 mean = 1.5.
    for (si, s) in profile.stages.iter().enumerate() {
        if s.label.starts_with("par") {
            assert!(
                (s.element_imbalance() - static_ratios[si]).abs() < 1e-12,
                "stage {si} ({}): measured {:.4} vs static {:.4}",
                s.label,
                s.element_imbalance(),
                static_ratios[si]
            );
        }
    }
}

#[test]
fn measured_compute_time_tracks_static_balance_on_multicore_hosts() {
    // The timing half of the cross-check: on a host with real
    // parallelism, a statically balanced plan must also measure as
    // balanced (within scheduler noise, best of 5).
    let cores = processors();
    if cores < 2 {
        eprintln!("skipping timing cross-check: host has {cores} core(s)");
        return;
    }
    let p = 2;
    let n = 1 << 14;
    let plan = balanced_plan(n, p);
    assert!(static_stage_balance(&plan).iter().all(|r| *r <= 1.05));
    let exec = ParallelExecutor::with_auto_barrier(p);
    let x = ramp(n);
    let best = (0..5)
        .map(|_| {
            let (_, pr) = exec.try_execute_traced(&plan, &x).unwrap();
            pr.max_stage_imbalance()
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        best <= 1.25,
        "statically balanced plan measured at {best:.3} per-stage imbalance"
    );
}
