//! Property tests for the profile algebra: merging run profiles is
//! associative and commutative (they are sums of per-slot counters), and
//! every derived metric is invariant under permutation of the thread
//! slots (physical thread identity carries no schedule meaning).

use proptest::collection::vec;
use proptest::prelude::*;
use spiral_trace::{HostMeta, RunProfile, StageProfile, ThreadStageStats, SCHEMA_VERSION};

/// Build a profile of fixed shape from a flat counter vector
/// (`threads * stages * 4` entries) plus per-thread pool spans.
fn profile(threads: usize, stages: usize, counters: &[u64], pool: &[u64], wall: u64) -> RunProfile {
    let stage_profiles = (0..stages)
        .map(|si| StageProfile {
            index: si as u64,
            label: format!("stage-{si}"),
            threads: (0..threads)
                .map(|tid| {
                    let base = (si * threads + tid) * 4;
                    ThreadStageStats {
                        compute_ns: counters[base],
                        barrier_wait_ns: counters[base + 1],
                        jobs: counters[base + 2],
                        elements: counters[base + 3],
                    }
                })
                .collect(),
        })
        .collect();
    RunProfile {
        schema: SCHEMA_VERSION,
        n: 1 << 10,
        threads: threads as u64,
        runs: 1,
        wall_ns: wall,
        host: HostMeta::current(),
        pool_job_ns: pool.to_vec(),
        timeline_dropped: 0,
        stages: stage_profiles,
    }
}

/// Deterministic permutation of `0..len` from a seed (Fisher–Yates with
/// a splitmix-style step).
fn perm_from_seed(len: usize, mut seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

const C: u64 = 1 << 40; // counter bound: sums of 3 stay far below u64::MAX

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `a ⊕ b = b ⊕ a`: profiles of the same shape merge to the same
    /// profile regardless of argument order.
    fn merge_is_commutative(
        threads in 1usize..=4,
        stages in 1usize..=4,
        raw in vec(0u64..C, 4 * 4 * 4 * 2 + 2 * 4 + 2),
    ) {
        let len = threads * stages * 4;
        let a = profile(threads, stages, &raw[..len], &raw[len..len + threads], raw[raw.len() - 2]);
        let b = profile(threads, stages, &raw[len..2 * len], &raw[2 * len..2 * len + threads], raw[raw.len() - 1]);
        prop_assert_eq!(a.try_merge(&b).unwrap(), b.try_merge(&a).unwrap());
    }

    /// `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`.
    fn merge_is_associative(
        threads in 1usize..=4,
        stages in 1usize..=4,
        raw in vec(0u64..C, 4 * 4 * 4 * 3 + 3 * 4 + 3),
    ) {
        let len = threads * stages * 4;
        let pool0 = 3 * len;
        let a = profile(threads, stages, &raw[..len], &raw[pool0..pool0 + threads], raw[raw.len() - 3]);
        let b = profile(threads, stages, &raw[len..2 * len], &raw[pool0..pool0 + threads], raw[raw.len() - 2]);
        let c = profile(threads, stages, &raw[2 * len..3 * len], &raw[pool0..pool0 + threads], raw[raw.len() - 1]);
        let left = a.try_merge(&b).unwrap().try_merge(&c).unwrap();
        let right = a.try_merge(&b.try_merge(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Relabeling threads changes no derived metric: imbalance ratios,
    /// barrier share, throughput, and totals are all permutation
    /// invariant (they are built from u64 sums and maxima, so equality
    /// is exact, not approximate).
    fn metrics_invariant_under_thread_permutation(
        threads in 1usize..=4,
        stages in 1usize..=4,
        raw in vec(0u64..C, 4 * 4 * 4 + 4 + 1),
        seed in 0u64..u64::MAX,
    ) {
        let len = threads * stages * 4;
        let p = profile(threads, stages, &raw[..len], &raw[len..len + threads], raw[raw.len() - 1]);
        let q = p.permute_threads(&perm_from_seed(threads, seed));
        prop_assert_eq!(p.max_stage_imbalance(), q.max_stage_imbalance());
        prop_assert_eq!(p.load_imbalance(), q.load_imbalance());
        prop_assert_eq!(p.barrier_share(), q.barrier_share());
        prop_assert_eq!(p.barrier_share_of_wall(), q.barrier_share_of_wall());
        prop_assert_eq!(p.total_compute_ns(), q.total_compute_ns());
        prop_assert_eq!(p.total_barrier_wait_ns(), q.total_barrier_wait_ns());
        for (sp, sq) in p.stages.iter().zip(&q.stages) {
            prop_assert_eq!(sp.imbalance(), sq.imbalance());
            prop_assert_eq!(sp.element_imbalance(), sq.element_imbalance());
            prop_assert_eq!(sp.throughput_eps(), sq.throughput_eps());
            prop_assert_eq!(sp.compute_ns(), sq.compute_ns());
            prop_assert_eq!(sp.elements(), sq.elements());
        }
    }

    /// Merging then deriving equals deriving on scaled counters: ratios
    /// are invariant under merging a profile with itself k times.
    fn ratios_stable_under_self_merge(
        threads in 1usize..=4,
        stages in 1usize..=4,
        raw in vec(0u64..C, 4 * 4 * 4 + 4 + 1),
        k in 1usize..=4,
    ) {
        let len = threads * stages * 4;
        let p = profile(threads, stages, &raw[..len], &raw[len..len + threads], raw[raw.len() - 1]);
        let mut m = p.clone();
        for _ in 0..k {
            m = m.try_merge(&p).unwrap();
        }
        prop_assert_eq!(m.runs, 1 + k as u64);
        // max/mean of (c·x_i) equals max/mean of (x_i) exactly: the
        // ratio divides out the common factor before any rounding.
        prop_assert_eq!(p.max_stage_imbalance(), m.max_stage_imbalance());
        prop_assert_eq!(p.load_imbalance(), m.load_imbalance());
        prop_assert_eq!(p.barrier_share(), m.barrier_share());
    }

    /// JSON round-trip is lossless for arbitrary profiles.
    fn json_roundtrip_lossless(
        threads in 1usize..=4,
        stages in 1usize..=4,
        raw in vec(0u64..C, 4 * 4 * 4 + 4 + 1),
    ) {
        let len = threads * stages * 4;
        let p = profile(threads, stages, &raw[..len], &raw[len..len + threads], raw[raw.len() - 1]);
        prop_assert_eq!(RunProfile::from_json(&p.to_json()).unwrap(), p);
    }
}
