//! End-to-end timeline checks on real observed executions: the event
//! stream recorded by `try_execute_observed` must agree with the
//! independently aggregated `RunProfile` of the same run, satisfy the
//! static timeline checker, count one barrier release per thread per
//! synchronized stage, and export as well-formed Chrome trace JSON.

// Stage/thread ids in these runs are tiny; the JSON data model stores
// numbers as f64, so reading them back is a narrowing cast by design.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use serde_json::Value;
use spiral_codegen::plan::Plan;
use spiral_codegen::ParallelExecutor;
use spiral_rewrite::multicore_dft_expanded;
use spiral_spl::cplx::Cplx;
use spiral_trace::{RunProfile, Timeline, TimelineEvent, TimelineEventKind};
use spiral_verify::timeline::{verify_timeline, TlEvent, TlKind};

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(0.5 + j as f64, -(j as f64) * 0.25))
        .collect()
}

fn balanced_plan(n: usize, p: usize) -> Plan {
    let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
    Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges()
}

fn observed_run(n: usize, p: usize) -> (Timeline, RunProfile, Plan) {
    let plan = balanced_plan(n, p);
    let exec = ParallelExecutor::with_auto_barrier(p);
    let timeline = Timeline::new(p);
    let (out, profile) = exec
        .try_execute_observed(&plan, &ramp(n), &timeline)
        .expect("healthy plan must execute");
    assert_eq!(out.len(), n);
    (timeline, profile, plan)
}

fn to_tl(events: &[TimelineEvent]) -> Vec<TlEvent> {
    events
        .iter()
        .map(|e| TlEvent {
            tid: e.tid,
            kind: match e.kind {
                TimelineEventKind::PoolJob => TlKind::PoolJob,
                TimelineEventKind::StageCompute => TlKind::StageCompute,
                TimelineEventKind::BarrierWait => TlKind::BarrierWait,
                TimelineEventKind::TunerCandidate => TlKind::TunerCandidate,
                TimelineEventKind::BatchTransform => TlKind::BatchTransform,
                TimelineEventKind::BarrierRelease => TlKind::BarrierRelease,
                TimelineEventKind::WatchdogFire => TlKind::WatchdogFire,
                TimelineEventKind::TunerReject => TlKind::TunerReject,
                TimelineEventKind::RequestServe => TlKind::RequestServe,
                TimelineEventKind::PoolExecute => TlKind::PoolExecute,
                TimelineEventKind::SloBreach => TlKind::SloBreach,
            },
            stage: e.stage,
            start_ns: e.start_ns,
            end_ns: e.end_ns,
        })
        .collect()
}

#[test]
fn barrier_release_marks_count_threads_per_synchronized_stage() {
    for p in [2usize, 4] {
        let (timeline, profile, _) = observed_run(1 << 10, p);
        let mut synchronized = 0;
        for s in 0..profile.stages.len() {
            let releases = timeline.count(TimelineEventKind::BarrierRelease, s as u32);
            assert!(
                releases == 0 || releases == p,
                "p={p} stage {s}: {releases} release marks (want 0 or {p})"
            );
            if releases == p {
                synchronized += 1;
            }
        }
        assert!(
            synchronized > 0,
            "p={p}: a parallel run must cross at least one barrier"
        );
        assert_eq!(timeline.total_dropped(), 0);
    }
}

#[test]
fn timeline_totals_agree_with_profile_aggregates() {
    // Both instruments observe the same run, so the sums must agree to
    // well within the 5% acceptance bound — they differ only by
    // clock-read placement.
    let (timeline, profile, _) = observed_run(1 << 12, 2);
    let within = |name: &str, tl: u64, prof: u64| {
        let rel = (tl as f64 - prof as f64).abs() / prof.max(1) as f64;
        assert!(
            rel <= 0.05,
            "{name}: timeline {tl} ns vs profile {prof} ns ({:.1}% apart)",
            100.0 * rel
        );
    };
    within(
        "compute",
        timeline.total_ns(TimelineEventKind::StageCompute),
        profile.total_compute_ns(),
    );
    within(
        "barrier wait",
        timeline.total_ns(TimelineEventKind::BarrierWait),
        profile.total_barrier_wait_ns(),
    );
}

#[test]
fn static_timeline_checker_passes_a_real_run() {
    let (timeline, profile, _) = observed_run(1 << 11, 2);
    let diags = verify_timeline(&to_tl(&timeline.events()), 2, profile.stages.len());
    assert!(
        diags.is_empty(),
        "real observed run must satisfy the timeline checker: {:?}",
        diags.iter().map(|d| d.detail.as_str()).collect::<Vec<_>>()
    );
}

#[test]
fn chrome_export_of_real_run_is_well_formed() {
    let (timeline, _, plan) = observed_run(1 << 10, 2);
    let labels: Vec<String> = plan.steps.iter().map(|s| s.label()).collect();
    let json = timeline.chrome_trace(&labels);
    let doc: Value = serde_json::from_str(&json).expect("export must parse");
    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let ph = |e: &Value| match e.get("ph") {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("ph must be a string, got {other:?}"),
    };
    let b = events.iter().filter(|e| ph(e) == "B").count();
    let e_count = events.iter().filter(|e| ph(e) == "E").count();
    assert_eq!(b, e_count, "B/E phases must be balanced");
    assert!(b > 0, "a real run must record spans");
    for ev in events.iter().filter(|e| ph(e) == "i") {
        assert_eq!(
            ev.get("s").and_then(|v| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("t"),
            "instants must be thread-scoped"
        );
    }
    // Per-thread timestamps of B events are monotone (ring order).
    let mut last = std::collections::HashMap::new();
    for ev in events.iter().filter(|e| ph(e) == "B") {
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap() as usize;
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap();
        let prev = last.insert(tid, ts).unwrap_or(-1.0);
        assert!(ts >= prev, "tid {tid}: B at {ts} after {prev}");
    }
}

#[test]
fn overflowed_tiny_ring_reports_nonzero_drop_count_in_profile() {
    // A real observed run into a deliberately tiny ring: the run emits
    // far more events per thread than 2 slots, so the ring must wrap —
    // and the profile stamped from that timeline must SAY so instead of
    // silently truncating history.
    let n = 1 << 10;
    let p = 2;
    let plan = balanced_plan(n, p);
    let exec = ParallelExecutor::with_auto_barrier(p);
    let timeline = Timeline::with_capacity(p, 2);
    let (_, profile) = exec
        .try_execute_observed(&plan, &ramp(n), &timeline)
        .expect("healthy plan must execute");
    let profile = profile.with_timeline(&timeline);
    assert!(
        timeline.total_dropped() > 0,
        "a 2-slot ring must wrap on a real run"
    );
    assert_eq!(profile.timeline_dropped, timeline.total_dropped());
    // The drop count survives the JSON interchange round-trip.
    let back = RunProfile::from_json(&profile.to_json()).unwrap();
    assert_eq!(back.timeline_dropped, profile.timeline_dropped);
    // And the exported trace carries the same wrap counter.
    let trace = timeline.chrome_trace(&[]);
    assert!(trace.contains(&format!("\"dropped_events\": {}", timeline.total_dropped())));

    // Control: an ample ring on the same workload drops nothing.
    let (roomy, ample_profile, _) = observed_run(n, p);
    assert_eq!(roomy.total_dropped(), 0);
    assert_eq!(ample_profile.with_timeline(&roomy).timeline_dropped, 0);
}
