//! Property tests for the metrics histogram algebra: snapshot merging
//! is associative and commutative, sharding is invisible in the merged
//! result, quantiles are monotone with a proven relative-error bound,
//! the bucket map is total and self-consistent, and `validate` rejects
//! out-of-range bucket indices (the negative control that keeps
//! `try_merge`'s precondition honest).

use proptest::collection::vec;
use proptest::prelude::*;
use spiral_trace::metrics::{
    bucket_bounds, bucket_index, BucketCount, Histogram, HistogramSnapshot, ShardedHistogram,
    BUCKET_COUNT, MAX_RELATIVE_QUANTILE_ERROR,
};

/// Record a sample set into a fresh histogram and snapshot it.
fn snap(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Exact nearest-rank quantile of a sample (the value the histogram
/// estimate approximates), using the same rank rule as
/// [`HistogramSnapshot::quantile`].
fn exact_quantile(values: &mut [u64], q: f64) -> u64 {
    values.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * values.len() as f64).ceil().max(1.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = (rank as usize).saturating_sub(1).min(values.len() - 1);
    values[idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `a ⊕ b = b ⊕ a` for arbitrary recorded sample sets.
    fn merge_is_commutative(
        a in vec(0u64..u64::MAX, 0..64),
        b in vec(0u64..u64::MAX, 0..64),
    ) {
        let (sa, sb) = (snap(&a), snap(&b));
        prop_assert_eq!(sa.try_merge(&sb).unwrap(), sb.try_merge(&sa).unwrap());
    }

    /// `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`.
    fn merge_is_associative(
        a in vec(0u64..u64::MAX, 0..48),
        b in vec(0u64..u64::MAX, 0..48),
        c in vec(0u64..u64::MAX, 0..48),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let left = sa.try_merge(&sb).unwrap().try_merge(&sc).unwrap();
        let right = sa.try_merge(&sb.try_merge(&sc).unwrap()).unwrap();
        prop_assert_eq!(left, right);
        prop_assert!(left.validate().is_ok());
    }

    /// Merging is equivalent to recording everything into one histogram:
    /// the snapshot of the union equals the merge of the snapshots.
    fn merge_equals_union_recording(
        a in vec(0u64..u64::MAX, 0..64),
        b in vec(0u64..u64::MAX, 0..64),
    ) {
        let merged = snap(&a).try_merge(&snap(&b)).unwrap();
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, snap(&union));
    }

    /// Which writer lane recorded a value is invisible in the merged
    /// snapshot: a sharded histogram with any lane assignment snapshots
    /// identically to a single-writer recording of the same values.
    fn sharding_is_invisible(
        values in vec(0u64..u64::MAX, 1..96),
        writers in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let sharded = ShardedHistogram::new(writers);
        let mut state = seed;
        for &v in &values {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lane = usize::try_from(state % writers as u64).expect("lane fits usize");
            sharded.record(lane, v);
        }
        prop_assert_eq!(sharded.snapshot(), snap(&values));
        prop_assert_eq!(sharded.count(), values.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile is monotone in `q`.
    fn quantile_is_monotone(
        values in vec(0u64..u64::MAX, 1..96),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let s = snap(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(s.quantile(lo) <= s.quantile(hi));
        // And always inside the recorded range.
        prop_assert!(s.quantile(lo) >= s.min && s.quantile(hi) <= s.max);
    }

    /// The quantile estimate is within `MAX_RELATIVE_QUANTILE_ERROR` of
    /// the exact nearest-rank quantile of the recorded sample — the
    /// bound the module's docs promise (1 / SUB_BUCKETS).
    fn quantile_relative_error_is_bounded(
        values in vec(0u64..(1u64 << 60), 1..96),
        q in 0.0f64..=1.0,
    ) {
        let s = snap(&values);
        let est = s.quantile(q);
        let mut sorted = values.clone();
        let exact = exact_quantile(&mut sorted, q);
        if exact == 0 {
            // Bucket 0 is exact (linear group).
            prop_assert_eq!(est, 0);
        } else {
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(
                err <= MAX_RELATIVE_QUANTILE_ERROR,
                "quantile({q}) = {est}, exact = {exact}, relative error {err}"
            );
        }
    }

    /// The bucket map is total and self-consistent: every `u64` lands in
    /// a bucket whose bounds contain it.
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKET_COUNT);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v, "bucket {idx} lower bound {lo} > value {v}");
        // The topmost reachable bucket's range saturates at u64::MAX.
        prop_assert!(v < hi || hi == u64::MAX, "value {v} >= bucket {idx} upper bound {hi}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Negative control: a snapshot carrying an out-of-range bucket
    /// index must fail validation, and `try_merge` must refuse it from
    /// either side — never silently fold bad data into good.
    fn mis_sized_bucket_index_is_rejected(
        excess in 0u64..1024,
        count in 1u64..1000,
        good in vec(0u64..u64::MAX, 0..16),
    ) {
        let bad = HistogramSnapshot {
            buckets: vec![BucketCount {
                index: BUCKET_COUNT as u64 + excess,
                count,
            }],
            count,
            sum: 0,
            min: 0,
            max: 0,
        };
        prop_assert!(bad.validate().is_err());
        let ok = snap(&good);
        prop_assert!(ok.try_merge(&bad).is_err());
        prop_assert!(bad.try_merge(&ok).is_err());
    }

    /// Live snapshots of arbitrary recordings always validate, and the
    /// count/sum/min/max cross-checks agree with the raw sample.
    fn live_snapshots_always_validate(values in vec(0u64..u64::MAX, 0..96)) {
        let s = snap(&values);
        prop_assert!(s.validate().is_ok());
        prop_assert_eq!(s.count, values.len() as u64);
        if values.is_empty() {
            prop_assert!(s.is_empty());
        } else {
            prop_assert_eq!(s.min, *values.iter().min().expect("nonempty"));
            prop_assert_eq!(s.max, *values.iter().max().expect("nonempty"));
            let wrapped: u64 = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
            prop_assert_eq!(s.sum, wrapped);
        }
    }
}
