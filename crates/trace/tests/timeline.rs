//! Property tests for the event timeline's Chrome trace export: for
//! arbitrary well-nested span trees pushed through the `TimelineSink`
//! interface, the exported JSON must parse, keep `B`/`E` phases
//! balanced and paired, keep per-thread timestamps monotone, and tag
//! every instant as thread-scoped — the invariants Perfetto and
//! `chrome://tracing` rely on to render the trace at all.

// Generated stage/thread ids are tiny (< 8); the JSON data model stores
// numbers as f64, so reading them back is a narrowing cast by design.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use proptest::collection::vec;
use proptest::prelude::*;
use serde_json::Value;
use spiral_smp::trace::{MarkKind, SpanKind, TimelineSink};
use spiral_trace::{Timeline, TimelineEventKind};
use std::time::{Duration, Instant};

/// One synthetic pool job: idle gap before it, compute duration inside
/// it, and how many nested compute spans that duration is split into.
type Job = (u64, u64, usize);

/// Replay `jobs_per_thread` onto a fresh timeline as properly nested
/// spans: each job wraps its compute children and a trailing barrier
/// wait + release mark, threads laid out independently. Returns the
/// timeline and the number of span (not mark) events pushed.
fn build(jobs_per_thread: &[Vec<Job>]) -> (Timeline, usize) {
    let timeline = Timeline::new(jobs_per_thread.len());
    let base = Instant::now();
    let at = |ns: u64| base + Duration::from_nanos(ns);
    let mut spans = 0;
    for (tid, jobs) in jobs_per_thread.iter().enumerate() {
        let mut cursor = 0u64;
        for (stage, &(gap, dur, kids)) in jobs.iter().enumerate() {
            let job_start = cursor + gap;
            let mut t = job_start;
            for _ in 0..kids {
                let step = dur / kids as u64;
                timeline.span(
                    tid,
                    SpanKind::StageCompute,
                    stage as u32,
                    at(t),
                    at(t + step),
                );
                spans += 1;
                t += step;
            }
            let barrier_end = job_start + dur + 10;
            timeline.span(
                tid,
                SpanKind::BarrierWait,
                stage as u32,
                at(t),
                at(barrier_end),
            );
            timeline.mark(tid, MarkKind::BarrierRelease, stage as u32, at(barrier_end));
            timeline.span(
                tid,
                SpanKind::PoolJob,
                stage as u32,
                at(job_start),
                at(barrier_end),
            );
            spans += 2;
            cursor = barrier_end;
        }
    }
    (timeline, spans)
}

fn trace_events(json: &str) -> Vec<Value> {
    let doc: Value = serde_json::from_str(json).expect("export must parse as JSON");
    match doc.get("traceEvents") {
        Some(Value::Arr(events)) => events.clone(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    }
}

fn field<'a>(e: &'a Value, key: &str) -> &'a Value {
    e.get(key)
        .unwrap_or_else(|| panic!("event missing `{key}`: {e:?}"))
}

fn str_field(e: &Value, key: &str) -> String {
    match field(e, key) {
        Value::Str(s) => s.clone(),
        other => panic!("`{key}` must be a string, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exporter's structural contract over random span trees.
    fn chrome_export_well_formed_for_random_span_trees(
        jobs_per_thread in vec(vec((0u64..500, 1u64..600, 1usize..=3), 0..5), 1..=3),
    ) {
        let (timeline, spans) = build(&jobs_per_thread);
        let json = timeline.chrome_trace(&[]);
        let events = trace_events(&json);

        let mut b = 0usize;
        let mut e = 0usize;
        let mut instants = 0usize;
        let mut meta = 0usize;
        // Last B timestamp seen per tid: per-thread monotonicity.
        let mut last_b: Vec<f64> = vec![-1.0; jobs_per_thread.len()];
        let mut i = 0;
        while i < events.len() {
            let ev = &events[i];
            match str_field(ev, "ph").as_str() {
                "M" => meta += 1,
                "i" => {
                    instants += 1;
                    // Instants must be thread-scoped or Perfetto
                    // renders them on the global track.
                    prop_assert_eq!(str_field(ev, "s"), "t");
                }
                "B" => {
                    b += 1;
                    let tid = field(ev, "tid").as_f64().unwrap() as usize;
                    let ts = field(ev, "ts").as_f64().unwrap();
                    prop_assert!(
                        ts >= last_b[tid],
                        "per-thread B timestamps must be monotone: {} after {}",
                        ts,
                        last_b[tid]
                    );
                    last_b[tid] = ts;
                    // The exporter emits each span's E adjacent to its
                    // B, same name and tid, never ending before it
                    // starts.
                    let end = &events[i + 1];
                    prop_assert_eq!(str_field(end, "ph"), "E");
                    prop_assert_eq!(str_field(end, "name"), str_field(ev, "name"));
                    prop_assert_eq!(
                        field(end, "tid").as_f64().unwrap(),
                        field(ev, "tid").as_f64().unwrap()
                    );
                    prop_assert!(field(end, "ts").as_f64().unwrap() >= ts);
                    e += 1;
                    i += 1;
                }
                other => prop_assert!(false, "unexpected phase {other}"),
            }
            i += 1;
        }
        prop_assert_eq!(b, e, "every B must have a matching E");
        prop_assert_eq!(b, spans, "one B/E pair per recorded span");
        let marks: usize = jobs_per_thread.iter().map(Vec::len).sum();
        prop_assert_eq!(instants, marks, "one instant per release mark");
        // Process metadata + one thread_name row per pool thread.
        prop_assert_eq!(meta, 1 + jobs_per_thread.len());
    }

    /// The collector's arithmetic over the same random trees: kind
    /// totals reconstruct the pushed durations exactly.
    fn totals_reconstruct_random_trees(
        jobs_per_thread in vec(vec((0u64..500, 1u64..600, 1usize..=3), 0..5), 1..=3),
    ) {
        let (timeline, _) = build(&jobs_per_thread);
        let mut compute = 0u64;
        let mut pool = 0u64;
        for jobs in &jobs_per_thread {
            for &(_, dur, kids) in jobs {
                compute += (dur / kids as u64) * kids as u64;
                pool += dur + 10;
            }
        }
        prop_assert_eq!(timeline.total_ns(TimelineEventKind::StageCompute), compute);
        prop_assert_eq!(timeline.total_ns(TimelineEventKind::PoolJob), pool);
        prop_assert_eq!(timeline.total_dropped(), 0);
    }
}
