//! Fault-injection tests for the parallel executor (feature `faults`).
//!
//! Exercises the acceptance criteria of the fault-tolerant execution
//! layer: an injected worker panic at *any* (stage, thread) point
//! surfaces as `Err` from `try_execute` within the watchdog deadline
//! with no deadlock or poison cascade, the same executor then runs a
//! healthy plan correctly, and injected NaN corruption never escapes as
//! an `Ok` result.

#![cfg(feature = "faults")]

use proptest::prelude::*;
use spiral_codegen::plan::Plan;
use spiral_codegen::{ParallelExecutor, SpiralError};
use spiral_rewrite::multicore_dft_expanded;
use spiral_smp::barrier::BarrierKind;
use spiral_smp::faults::{install, Fault, FaultPlan, FaultSpec};
use spiral_spl::builder::dft;
use spiral_spl::cplx::{assert_slices_close, Cplx};
use std::time::{Duration, Instant};

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(j as f64 * 0.25, 1.0 - j as f64 * 0.125))
        .collect()
}

fn build_plan(n: usize, p: usize, mu: usize) -> Plan {
    let f = multicore_dft_expanded(n, p, mu, None, 8).unwrap();
    Plan::from_formula(&f, p, mu).unwrap()
}

/// An injected panic at every (stage, thread) point of the grid
/// surfaces as `Err(WorkerPanic)` within the watchdog deadline, and the
/// same executor immediately runs the healthy plan correctly afterward.
#[test]
fn injected_panic_at_any_site_surfaces_within_deadline() {
    let watchdog = Duration::from_millis(200);
    // Generous ceiling: survivors burn one stage deadline, the pool
    // watchdog is 2·stage + 250 ms, plus scheduling noise under load.
    let ceiling = Duration::from_secs(5);
    for (n, p, mu) in [(64usize, 2usize, 4usize), (256, 4, 4)] {
        let plan = build_plan(n, p, mu);
        let exec = ParallelExecutor::with_watchdog(p, BarrierKind::Park, watchdog);
        let x = ramp(n);
        let want = dft(n).eval(&x);
        for stage in 0..plan.steps.len() {
            for thread in 0..p {
                let guard = install(FaultPlan {
                    seed: 1,
                    specs: vec![FaultSpec::always(stage, thread, Fault::Panic)],
                });
                let t0 = Instant::now();
                let err = exec.try_execute(&plan, &x).unwrap_err();
                let waited = t0.elapsed();
                assert!(
                    matches!(err, SpiralError::WorkerPanic { .. }),
                    "(n={n}, p={p}, stage={stage}, thread={thread}): got {err}"
                );
                assert!(
                    waited < ceiling,
                    "(n={n}, p={p}, stage={stage}, thread={thread}): \
                     took {waited:?}, watchdog {watchdog:?}"
                );
                assert!(err.is_runtime_fault());
                // Keep the session: clear the specs (nothing fires) and
                // prove the executor survived — no deadlock, no poison,
                // correct answer on the very next run.
                drop(guard);
                let _quiet = install(FaultPlan::default());
                assert!(exec.healthy(), "pool unhealthy after isolated panic");
                let got = exec.execute(&plan, &x);
                assert_slices_close(&got, &want, 1e-6 * n as f64);
            }
        }
    }
}

/// Spin barriers take a different timeout path (arrival retraction via
/// CAS rather than condvar timeouts); a panic must surface and the
/// barrier must stay coherent across reuse there too.
#[test]
fn spin_barrier_recovers_from_injected_panic() {
    let (n, p, mu) = (64usize, 2usize, 4usize);
    let plan = build_plan(n, p, mu);
    let exec = ParallelExecutor::with_watchdog(p, BarrierKind::Spin, Duration::from_millis(150));
    let x = ramp(n);
    let want = dft(n).eval(&x);
    for stage in [0, plan.steps.len() - 1] {
        let guard = install(FaultPlan {
            seed: 3,
            specs: vec![FaultSpec::always(stage, 1, Fault::Panic)],
        });
        let err = exec.try_execute(&plan, &x).unwrap_err();
        assert!(matches!(err, SpiralError::WorkerPanic { .. }), "got {err}");
        drop(guard);
        let _quiet = install(FaultPlan::default());
        assert_slices_close(&exec.execute(&plan, &x), &want, 1e-6);
    }
}

/// A stage delay shorter than the watchdog is tolerated: the run
/// completes with a correct result, just late.
#[test]
fn delay_within_watchdog_is_tolerated() {
    let (n, p, mu) = (64usize, 2usize, 4usize);
    let plan = build_plan(n, p, mu);
    let exec = ParallelExecutor::with_watchdog(p, BarrierKind::Park, Duration::from_secs(5));
    let _g = install(FaultPlan {
        seed: 5,
        specs: vec![FaultSpec::always(
            0,
            1,
            Fault::Delay(Duration::from_millis(50)),
        )],
    });
    let x = ramp(n);
    assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-6);
}

/// A delay *longer* than the watchdog trips it: the run fails in
/// bounded time with a runtime fault, and the executor stays usable
/// once the straggler drains.
#[test]
fn delay_past_watchdog_trips_it() {
    let (n, p, mu) = (64usize, 2usize, 4usize);
    let plan = build_plan(n, p, mu);
    let exec = ParallelExecutor::with_watchdog(p, BarrierKind::Park, Duration::from_millis(100));
    let guard = install(FaultPlan {
        seed: 7,
        specs: vec![FaultSpec::always(
            0,
            1,
            Fault::Delay(Duration::from_millis(400)),
        )],
    });
    let x = ramp(n);
    let t0 = Instant::now();
    let err = exec.try_execute(&plan, &x).unwrap_err();
    assert!(err.is_runtime_fault(), "got {err}");
    assert!(t0.elapsed() < Duration::from_secs(5));
    drop(guard);
    let _quiet = install(FaultPlan::default());
    assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-6);
}

/// NaN corruption at the final stage lands in the output buffer and
/// must be caught by the executor's finiteness scan.
#[test]
fn corrupted_output_is_caught_as_non_finite() {
    let (n, p, mu) = (64usize, 2usize, 4usize);
    let plan = build_plan(n, p, mu);
    let exec = ParallelExecutor::new(p, BarrierKind::Park);
    let _g = install(FaultPlan {
        seed: 9,
        specs: vec![FaultSpec::always(
            plan.steps.len() - 1,
            0,
            Fault::CorruptNan,
        )],
    });
    let err = exec.try_execute(&plan, &ramp(n)).unwrap_err();
    assert!(
        matches!(err, SpiralError::NonFinite { .. }),
        "expected NonFinite, got {err}"
    );
    assert!(err.is_runtime_fault());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NaN injected at an arbitrary (stage, thread) site never escapes
    /// the executor as `Ok`: either the corruption reaches the output
    /// and the scan rejects it, or the site wrote nothing this step and
    /// the result is the correct finite transform.
    #[test]
    fn injected_nan_never_escapes(
        stage_pick in 0usize..16,
        thread in 0usize..2,
        seed in any::<u64>(),
    ) {
        let (n, p, mu) = (64usize, 2usize, 4usize);
        let plan = build_plan(n, p, mu);
        let stage = stage_pick % plan.steps.len();
        let exec = ParallelExecutor::new(p, BarrierKind::Park);
        let _g = install(FaultPlan {
            seed,
            specs: vec![FaultSpec::always(stage, thread, Fault::CorruptNan)],
        });
        let x = ramp(n);
        match exec.try_execute(&plan, &x) {
            Ok(out) => {
                // The guard's contract: Ok implies every element finite.
                for (i, z) in out.iter().enumerate() {
                    prop_assert!(
                        z.re.is_finite() && z.im.is_finite(),
                        "non-finite value escaped at index {i} \
                         (stage {stage}, thread {thread})"
                    );
                }
            }
            Err(e) => {
                prop_assert!(
                    matches!(e, SpiralError::NonFinite { .. }),
                    "unexpected failure kind: {e}"
                );
            }
        }
    }
}
