//! End-to-end validation of the C backend: emit C, compile it with the
//! system compiler, run it, and compare against the Rust executor.
//! Skipped when no C compiler is installed.

use spiral_codegen::cemit::{emit_c, CFlavor};
use spiral_codegen::plan::Plan;
use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
use spiral_spl::cplx::Cplx;
use std::io::Write;
use std::process::Command;

fn have_cc() -> bool {
    Command::new("cc").arg("--version").output().is_ok()
}

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|k| Cplx::new(0.25 * k as f64 + 1.0, 0.5 - 0.125 * k as f64))
        .collect()
}

/// Compile and run an emitted plan; return the transform of `ramp(n)`.
fn run_emitted(plan: &Plan, flavor: CFlavor, tag: &str) -> Vec<Cplx> {
    let n = plan.n;
    let code = emit_c(plan, flavor);
    let main = format!(
        r#"
#include <stdio.h>
void spiral_dft_{n}(const double *x, double *y);
int main(void) {{
    static double x[2*{n}], y[2*{n}];
    for (int k = 0; k < {n}; k++) {{
        x[2*k]   = 0.25 * k + 1.0;
        x[2*k+1] = 0.5 - 0.125 * k;
    }}
    spiral_dft_{n}(x, y);
    for (int k = 0; k < {n}; k++)
        printf("%.17e %.17e\n", y[2*k], y[2*k+1]);
    return 0;
}}
"#
    );
    let dir = std::env::temp_dir().join(format!("spiral_c_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("dft.c");
    let main_c = dir.join("main.c");
    let exe = dir.join("dft");
    std::fs::File::create(&src)
        .unwrap()
        .write_all(code.as_bytes())
        .unwrap();
    std::fs::File::create(&main_c)
        .unwrap()
        .write_all(main.as_bytes())
        .unwrap();
    let mut cmd = Command::new("cc");
    cmd.arg("-O2")
        .arg("-o")
        .arg(&exe)
        .arg(&src)
        .arg(&main_c)
        .arg("-lm");
    match flavor {
        CFlavor::OpenMp => {
            cmd.arg("-fopenmp");
        }
        CFlavor::Pthreads => {
            cmd.arg("-pthread");
        }
    }
    let out = cmd.output().expect("compiler invocation failed");
    assert!(
        out.status.success(),
        "C compilation failed:\n{}\n--- source ---\n{}",
        String::from_utf8_lossy(&out.stderr),
        &code[..code.len().min(4000)]
    );
    let run = Command::new(&exe)
        .output()
        .expect("running emitted binary failed");
    assert!(run.status.success(), "emitted binary crashed");
    let text = String::from_utf8_lossy(&run.stdout);
    let vals: Vec<Cplx> = text
        .lines()
        .map(|l| {
            let mut it = l.split_whitespace();
            let re: f64 = it.next().unwrap().parse().unwrap();
            let im: f64 = it.next().unwrap().parse().unwrap();
            Cplx::new(re, im)
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(vals.len(), n);
    vals
}

fn check(plan: &Plan, flavor: CFlavor, tag: &str) {
    let n = plan.n;
    let want = plan.execute(&ramp(n));
    let got = run_emitted(plan, flavor, tag);
    for (k, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!(
            a.approx_eq(*b, 1e-8 * n as f64),
            "{tag}: element {k} differs: C={a:?} Rust={b:?}"
        );
    }
}

#[test]
fn sequential_openmp_c_matches_rust() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let f = sequential_dft(64, 8);
    let plan = Plan::from_formula(&f, 1, 4).unwrap();
    check(&plan, CFlavor::OpenMp, "seq64");
}

#[test]
fn parallel_openmp_c_matches_rust() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
    let plan = Plan::from_formula(&f, 2, 4).unwrap();
    check(&plan, CFlavor::OpenMp, "par256");
}

#[test]
fn parallel_pthreads_c_matches_rust() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
    let plan = Plan::from_formula(&f, 2, 4).unwrap();
    check(&plan, CFlavor::Pthreads, "pthr256");
}

#[test]
fn four_thread_pthreads_c_matches_rust() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let f = multicore_dft_expanded(1024, 4, 4, None, 8).unwrap();
    let plan = Plan::from_formula(&f, 4, 4).unwrap();
    check(&plan, CFlavor::Pthreads, "pthr1024");
}

#[test]
fn fused_exchange_c_matches_rust_both_flavors() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
    let plan = Plan::from_formula(&f, 2, 4).unwrap().fuse_exchanges();
    check(&plan, CFlavor::OpenMp, "fused_omp");
    check(&plan, CFlavor::Pthreads, "fused_pthr");
}
