//! Property tests for the compiler: lowering, lifting, fusion, and plan
//! transformations preserve semantics for arbitrary formula shapes.

use proptest::prelude::*;
use spiral_codegen::fuse::fuse;
use spiral_codegen::lower::{lift_block, lift_stride, lower_seq};
use spiral_codegen::plan::Plan;
use spiral_spl::builder::*;
use spiral_spl::cplx::Cplx;
use spiral_spl::Spl;

fn cplx_vec(n: usize) -> impl Strategy<Value = Vec<Cplx>> {
    prop::collection::vec(
        (-4.0f64..4.0, -4.0f64..4.0).prop_map(|(re, im)| Cplx::new(re, im)),
        n,
    )
}

/// Random lowerable formulas of dimension 12 (mixed radix, so both
/// power-of-two and odd codelets appear).
fn lowerable(dim: usize) -> BoxedStrategy<Spl> {
    let leaves = prop::sample::select(vec![
        i(dim),
        dft(dim),
        stride(dim, 2),
        stride(dim, dim / 2),
        twiddle(2, dim / 2),
        tensor(dft(2), i(dim / 2)),
        tensor(i(2), dft(dim / 2)),
        tensor(i(dim / 4), dft(4)),
        tensor(dft(dim / 3), i(3)),
    ]);
    leaves
        .prop_recursive(3, 12, 3, move |inner| {
            prop::collection::vec(inner, 1..4).prop_map(compose).boxed()
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// lower → fuse → plan all agree with the interpreter.
    #[test]
    fn compile_chain_preserves_semantics(f in lowerable(12), x in cplx_vec(12)) {
        let want = f.eval(&x);
        let prog = lower_seq(&f).unwrap();
        let lo = prog.eval(&x);
        let fu = fuse(prog).eval(&x);
        let pl = Plan::from_formula(&f, 1, 4).unwrap().execute(&x);
        for out in [&lo, &fu, &pl] {
            for (a, b) in out.iter().zip(&want) {
                prop_assert!(a.approx_eq(*b, 1e-8), "{a:?} vs {b:?}");
            }
        }
    }

    /// Lifting laws: lift_block(P, m) ≡ I_m ⊗ P and lift_stride(P, k) ≡ P ⊗ I_k.
    #[test]
    fn lifting_matches_tensor_semantics(
        f in lowerable(12),
        m in 1usize..4,
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        let prog = lower_seq(&f).unwrap();
        let n = 12 * m;
        let mut s = seed | 1;
        let mut rand = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            Cplx::new((s as f64 / u64::MAX as f64) - 0.5, 0.25)
        };
        // Block lift.
        let xb: Vec<Cplx> = (0..n).map(|_| rand()).collect();
        let lifted = lift_block(prog.clone(), m);
        let want = tensor(i(m), f.clone()).eval(&xb);
        let got = lifted.eval(&xb);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-8));
        }
        // Stride lift.
        let nk = 12 * k;
        let xs: Vec<Cplx> = (0..nk).map(|_| rand()).collect();
        let lifted = lift_stride(prog, k);
        let want = tensor(f.clone(), i(k)).eval(&xs);
        let got = lifted.eval(&xs);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-8));
        }
    }

    /// Fusion never increases the stage count and always drops
    /// standalone data passes between kernels.
    #[test]
    fn fusion_monotone(f in lowerable(12)) {
        let prog = lower_seq(&f).unwrap();
        let before = prog.stages.len();
        let fused = fuse(prog);
        prop_assert!(fused.stages.len() <= before);
    }

    /// fuse_exchanges preserves semantics on arbitrary parallel plans.
    #[test]
    fn exchange_fusion_preserves_semantics(
        ke in 0usize..3,
        seed in any::<u64>(),
    ) {
        let n = 64usize << ke;
        let formula =
            spiral_rewrite::multicore_dft_expanded(n, 2, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&formula, 2, 4).unwrap();
        let fused = plan.clone().fuse_exchanges();
        let mut s = seed | 1;
        let x: Vec<Cplx> = (0..n)
            .map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                Cplx::new((s as f64 / u64::MAX as f64) - 0.5, 0.1)
            })
            .collect();
        let a = plan.execute(&x);
        let b = fused.execute(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!(u.approx_eq(*v, 1e-12));
        }
        prop_assert!(fused.steps.len() <= plan.steps.len());
    }

    /// The C emitter always produces a translation unit with the entry
    /// point and balanced braces (cheap structural sanity).
    #[test]
    fn c_emission_structurally_sound(f in lowerable(12)) {
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        for flavor in [spiral_codegen::CFlavor::OpenMp, spiral_codegen::CFlavor::Pthreads] {
            let c = spiral_codegen::emit_c(&plan, flavor);
            prop_assert!(c.contains("void spiral_dft_12"));
            let opens = c.matches('{').count();
            let closes = c.matches('}').count();
            prop_assert_eq!(opens, closes, "unbalanced braces");
        }
    }
}
