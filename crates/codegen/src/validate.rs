//! Plan-validator registry.
//!
//! The parallel executor's `unsafe` shared-buffer access is sound only
//! for plans whose steps write thread-disjoint, in-bounds index sets.
//! That property is checked statically by the `spiral-verify` crate,
//! which sits *above* this one in the dependency graph — so the check is
//! wired in through this registry instead of a direct call: a downstream
//! crate installs a validator once (e.g.
//! `spiral_verify::install_executor_guard()`), and debug builds of
//! [`crate::ParallelExecutor`] then run it on every plan before touching
//! the shared buffers.

use crate::plan::Plan;
use std::sync::OnceLock;

/// A plan validator: `Err(description)` when `plan` violates the
/// executor's soundness contract (races or out-of-bounds accesses).
pub type PlanValidator = fn(&Plan) -> Result<(), String>;

static VALIDATOR: OnceLock<PlanValidator> = OnceLock::new();

/// Install the process-wide plan validator. The first installation wins;
/// later calls are ignored (the registry is write-once).
pub fn install_validator(v: PlanValidator) {
    let _ = VALIDATOR.set(v);
}

/// The installed validator, if any.
pub fn validator() -> Option<PlanValidator> {
    VALIDATOR.get().copied()
}
