//! The `vec(ν)` marking pass: prove per-stage ν-alignment, then switch
//! qualifying kernel stages to the short-vector execution path.
//!
//! Runs after lowering and fusion (so it sees the final loop nests, maps
//! and twiddle tables) and is strictly opt-in per stage: a stage that
//! fails any precondition simply stays scalar — the plan remains correct,
//! only less vectorized. The preconditions are exactly the invariants the
//! dataflow certification pass (`spiral-verify`) re-checks on vector-marked
//! IR, so a marked stage that violates them is *rejected* IR, not a
//! fallback case.

use crate::plan::{Plan, Step};
use crate::simd::{self, lane_shuffle_twiddle};
use crate::stage::{KernelStage, LocalProgram, LocalStage};
use std::sync::Arc;

/// Check the ν-alignment preconditions for marking `k` as a ν-lane
/// vector stage. `Err` explains the violated rule (the same granularity
/// rules the dataflow certifier enforces on already-marked stages):
///
/// 1. ν is a supported power-of-two lane count (2 ≤ ν ≤ `MAX_LANES`);
/// 2. the innermost loop is a contiguous lane loop — unit input and
///    output stride, trip count divisible by ν;
/// 3. every other address component (base offsets, slot strides for
///    multi-slot codelets, outer loop strides) is ν-granular, so lane
///    groups start ν-aligned;
/// 4. fused gather/scatter tables map aligned ν-blocks to contiguous
///    runs (`m[g + l] = m[g] + l`), so an indirected group is still ν
///    consecutive elements.
pub fn stage_alignment(k: &KernelStage, nu: usize) -> Result<(), String> {
    if nu < 2 || !nu.is_power_of_two() || nu > simd::MAX_LANES {
        return Err(format!("unsupported lane width nu={nu}"));
    }
    let Some(lane) = k.loops.last() else {
        return Err("no innermost lane loop".to_string());
    };
    if lane.in_stride != 1 || lane.out_stride != 1 {
        return Err(format!(
            "innermost loop not contiguous: in_stride={}, out_stride={}",
            lane.in_stride, lane.out_stride
        ));
    }
    if !lane.count.is_multiple_of(nu) {
        return Err(format!(
            "lane loop count {} not divisible by nu={nu}",
            lane.count
        ));
    }
    let c = k.codelet.size();
    let granular = |what: &str, v: usize| -> Result<(), String> {
        if v.is_multiple_of(nu) {
            Ok(())
        } else {
            Err(format!(
                "misaligned nu-block: {what}={v} not nu={nu}-granular"
            ))
        }
    };
    granular("in_off", k.in_off)?;
    granular("out_off", k.out_off)?;
    if c > 1 {
        granular("in_t_stride", k.in_t_stride)?;
        granular("out_t_stride", k.out_t_stride)?;
    }
    for (d, l) in k.loops[..k.loops.len() - 1].iter().enumerate() {
        granular(&format!("loop[{d}].in_stride"), l.in_stride)?;
        granular(&format!("loop[{d}].out_stride"), l.out_stride)?;
    }
    for (name, map) in [("in_map", &k.in_map), ("out_map", &k.out_map)] {
        if let Some(m) = map.as_deref() {
            if !m.len().is_multiple_of(nu) {
                return Err(format!("{name} length {} not nu={nu}-granular", m.len()));
            }
            for g in (0..m.len()).step_by(nu) {
                for l in 1..nu {
                    if m[g + l] != m[g] + crate::u32_idx(l) {
                        return Err(format!(
                            "{name} breaks lane contiguity at block {g}: \
                             [{g}+{l}] = {} != {} + {l}",
                            m[g + l],
                            m[g]
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Try to mark one kernel stage for ν-lane execution. Returns whether it
/// qualified; on success also builds the lane-grouped twiddle tables.
pub fn vectorize_stage(k: &mut KernelStage, nu: usize) -> bool {
    if stage_alignment(k, nu).is_err() {
        return false;
    }
    let c = k.codelet.size();
    k.vec_width = nu;
    k.twiddle_lanes = k
        .twiddle
        .as_ref()
        .map(|w| Arc::new(lane_shuffle_twiddle(w, c, nu)));
    k.twiddle_out_lanes = k
        .twiddle_out
        .as_ref()
        .map(|w| Arc::new(lane_shuffle_twiddle(w, c, nu)));
    true
}

/// Mark every qualifying kernel stage of a program; returns how many
/// stages took the vector path.
pub fn vectorize_program(prog: &mut LocalProgram, nu: usize) -> usize {
    let mut marked = 0;
    for s in &mut prog.stages {
        if let LocalStage::Kernel(k) = s {
            if vectorize_stage(k, nu) {
                marked += 1;
            }
        }
    }
    marked
}

/// Mark every qualifying kernel stage across all steps of a plan and
/// record the lane width on the plan. Returns the number of vector-marked
/// stages (0 means the plan is effectively scalar and `vec_width` stays 1).
pub fn vectorize_plan(plan: &mut Plan, nu: usize) -> usize {
    let mut marked = 0;
    for step in &mut plan.steps {
        match step {
            Step::Seq(p) => marked += vectorize_program(p, nu),
            Step::Par { programs, .. } => {
                for p in programs {
                    marked += vectorize_program(p, nu);
                }
            }
            Step::Exchange { .. } | Step::ScaleAll(_) => {}
        }
    }
    if marked > 0 {
        plan.vec_width = nu;
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::Codelet;
    use crate::stage::LoopDim;
    use spiral_spl::cplx::Cplx;

    fn lane_stage(count: usize) -> KernelStage {
        let mut k = KernelStage::unit(Codelet::F2);
        k.in_t_stride = count;
        k.out_t_stride = count;
        k.loops.push(LoopDim {
            count,
            in_stride: 1,
            out_stride: 1,
        });
        k
    }

    #[test]
    fn contiguous_lane_loop_qualifies() {
        let k = lane_stage(4);
        assert!(stage_alignment(&k, 2).is_ok());
        assert!(stage_alignment(&k, 4).is_ok());
    }

    #[test]
    fn misalignment_rejected_with_reason() {
        // Odd lane count.
        let k = lane_stage(3);
        let e = stage_alignment(&k, 2).unwrap_err();
        assert!(e.contains("not divisible"), "{e}");
        // Non-unit innermost stride.
        let mut k = lane_stage(4);
        k.loops.last_mut().unwrap().in_stride = 2;
        let e = stage_alignment(&k, 2).unwrap_err();
        assert!(e.contains("not contiguous"), "{e}");
        // Misaligned base offset.
        let mut k = lane_stage(4);
        k.in_off = 1;
        let e = stage_alignment(&k, 2).unwrap_err();
        assert!(e.contains("misaligned nu-block"), "{e}");
        // No loops at all.
        let k = KernelStage::unit(Codelet::F2);
        assert!(stage_alignment(&k, 2).is_err());
    }

    #[test]
    fn lane_breaking_map_rejected() {
        let mut k = lane_stage(4);
        // Identity map is lane-contiguous...
        k.in_map = Some(Arc::new((0..8u32).collect()));
        assert!(stage_alignment(&k, 2).is_ok());
        // ...a swapped pair inside a block is not.
        k.in_map = Some(Arc::new(vec![1, 0, 2, 3, 4, 5, 6, 7]));
        let e = stage_alignment(&k, 2).unwrap_err();
        assert!(e.contains("lane contiguity"), "{e}");
    }

    #[test]
    fn vec_tagged_plan_matches_scalar_bitwise() {
        use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
        use spiral_spl::builder::vec_tag;
        for n in [16usize, 64, 256] {
            let f = sequential_dft(n, 8);
            let scalar = crate::plan::Plan::from_formula(&f, 1, 4).unwrap();
            for nu in [2usize, 4] {
                let tagged = vec_tag(nu, f.clone());
                let vector = crate::plan::Plan::from_formula(&tagged, 1, 4).unwrap();
                let x: Vec<Cplx> = (0..n)
                    .map(|j| Cplx::new(0.5 + j as f64, -0.25 * j as f64))
                    .collect();
                let (a, b) = (scalar.execute(&x), vector.execute(&x));
                // Per-lane vector arithmetic runs the identical operation
                // sequence, so results are bit-equal, not just close.
                for (u, v) in a.iter().zip(&b) {
                    assert!(u.approx_eq(*v, 0.0), "n={n} nu={nu}");
                }
                if !cfg!(feature = "force-scalar") && n >= 16 {
                    assert_eq!(vector.vec_width, nu, "n={n}: no stage vectorized");
                }
            }
        }
        // Parallel formula: vector marking must survive the Par-step path
        // and exchange fusion.
        let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
        let tagged = vec_tag(2, f.clone());
        let scalar = crate::plan::Plan::from_formula(&f, 2, 4)
            .unwrap()
            .fuse_exchanges();
        let vector = crate::plan::Plan::from_formula(&tagged, 2, 4)
            .unwrap()
            .fuse_exchanges();
        assert_eq!(vector.vec_width, 2);
        let x: Vec<Cplx> = (0..256)
            .map(|j| Cplx::new(1.0 - j as f64 * 0.01, 0.3 * j as f64))
            .collect();
        for (u, v) in scalar.execute(&x).iter().zip(&vector.execute(&x)) {
            assert!(u.approx_eq(*v, 0.0));
        }
    }

    #[test]
    fn vectorize_builds_lane_twiddles() {
        let mut k = lane_stage(2);
        let w: Vec<Cplx> = (0..4).map(|i| Cplx::real(i as f64)).collect();
        k.twiddle = Some(Arc::new(w.clone()));
        assert!(vectorize_stage(&mut k, 2));
        assert_eq!(k.vec_width, 2);
        let lanes = k.twiddle_lanes.as_deref().unwrap();
        // twiddle_lanes[t*nu + l] = twiddle[l*c + t] for the single group.
        for t in 0..2 {
            for l in 0..2 {
                assert!(lanes[t * 2 + l].approx_eq(w[l * 2 + t], 0.0));
            }
        }
    }
}
