//! Shard geometry for the `dist(q)` multi-process backend.
//!
//! A fused plan for the paper's formula (14) looks like
//! `[Par+gather, Par+gather, Exchange]`: the first compute step works on
//! independent contiguous chunks whose only cross-chunk data motion is
//! the fused gather table. That makes a *prefix* of the plan shardable
//! across `q` worker processes: worker `s` owns the contiguous partition
//! `[s·n/q, (s+1)·n/q)` of the ping-pong buffers, the manager applies
//! the step-0 gather while scattering the input into the workers' slabs
//! (so each worker reads purely locally), and after the prefix the
//! manager gathers the partitions back and finishes the remaining steps
//! in process ([`Plan::execute_tail_into`]).
//!
//! Because workers run the *same* chunk programs over the *same* values
//! in the same order as [`Plan::execute_into`] would, the distributed
//! result is bitwise equal to the single-process result by construction
//! — the property the dist proptests assert.

use crate::plan::{Plan, Step};
use crate::stage::{Scratch, SrcView};
use spiral_spl::cplx::Cplx;

/// One worker's contiguous partition of the sharded prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRegion {
    /// Element offset of the partition in the global buffers.
    pub offset: usize,
    /// Partition length in elements (`n / q`).
    pub len: usize,
}

/// The geometry of a `dist(q)` execution of a plan: which prefix of the
/// steps runs on workers, and which partition each worker owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Worker process count.
    pub q: usize,
    /// Number of leading steps executed on workers (`steps[..shard_steps]`).
    /// The manager runs `steps[shard_steps..]`.
    pub shard_steps: usize,
    /// Per-worker partitions, in worker order; `q` entries covering
    /// `[0, n)` contiguously.
    pub regions: Vec<ShardRegion>,
}

impl ShardSpec {
    /// Flops executed inside the sharded prefix of `plan` (the work the
    /// manager offloads; the cost model splits this across `q`).
    pub fn prefix_flops(&self, plan: &Plan) -> u64 {
        plan.steps[..self.shard_steps]
            .iter()
            .map(|s| s.flops(plan.n))
            .sum()
    }
}

/// Why a plan cannot be sharded across `q` processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// `q` must be a power of two ≥ 2 dividing the transform size.
    BadProcs {
        /// The requested process count.
        q: usize,
        /// The transform size.
        n: usize,
    },
    /// The plan has no steps (identity plan).
    Empty,
    /// The first step is not a `Par` step, so there is no chunk grid to
    /// partition (unfused plans start with an `Exchange`).
    LeadingStepNotPar(String),
    /// A prefix `Par` step's chunk count is not divisible by `q`, so the
    /// equal partition would split a chunk across two processes.
    ChunksNotDivisible {
        /// Chunk count of the offending step.
        chunks: usize,
        /// The requested process count.
        q: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::BadProcs { q, n } => {
                write!(f, "dist({q}) needs a power-of-two q ≥ 2 dividing n={n}")
            }
            ShardError::Empty => write!(f, "empty plan has nothing to shard"),
            ShardError::LeadingStepNotPar(s) => {
                write!(f, "leading step `{s}` is not a parallel chunk step")
            }
            ShardError::ChunksNotDivisible { chunks, q } => {
                write!(f, "{chunks} chunks do not split across {q} processes")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Compute the `dist(q)` shard geometry of a (fused) plan.
///
/// The shardable prefix is the maximal run of leading [`Step::Par`]
/// steps in which every step's chunk count is divisible by `q` and only
/// step 0 carries a fused gather: a step-0 gather is applied by the
/// manager at scatter time, but a later gather reads the *global*
/// intermediate buffer, which mid-prefix lives split across process
/// boundaries — so it ends the prefix instead.
pub fn shard_plan(plan: &Plan, q: usize) -> Result<ShardSpec, ShardError> {
    if q < 2 || !q.is_power_of_two() || !plan.n.is_multiple_of(q) {
        return Err(ShardError::BadProcs { q, n: plan.n });
    }
    let Some(first) = plan.steps.first() else {
        return Err(ShardError::Empty);
    };
    let Step::Par { programs, .. } = first else {
        return Err(ShardError::LeadingStepNotPar(first.label()));
    };
    if !programs.len().is_multiple_of(q) {
        return Err(ShardError::ChunksNotDivisible {
            chunks: programs.len(),
            q,
        });
    }
    let mut shard_steps = 1;
    for step in &plan.steps[1..] {
        match step {
            Step::Par {
                programs,
                gather: None,
                ..
            } if programs.len().is_multiple_of(q) => shard_steps += 1,
            _ => break,
        }
    }
    let len = plan.n / q;
    let regions = (0..q)
        .map(|s| ShardRegion {
            offset: s * len,
            len,
        })
        .collect();
    Ok(ShardSpec {
        q,
        shard_steps,
        regions,
    })
}

/// Fill worker `s`'s input slab from the global input, applying step 0's
/// fused gather (if any) so the worker's prefix reads purely locally.
/// `slab.len()` must equal the shard's region length.
pub fn scatter_shard(plan: &Plan, spec: &ShardSpec, s: usize, x: &[Cplx], slab: &mut [Cplx]) {
    let r = &spec.regions[s];
    assert_eq!(x.len(), plan.n, "scatter input length mismatch");
    assert_eq!(slab.len(), r.len, "scatter slab length mismatch");
    let Some(Step::Par { gather, .. }) = plan.steps.first() else {
        panic!("scatter_shard on a plan with no leading Par step");
    };
    match gather {
        Some(g) => {
            for (i, slot) in slab.iter_mut().enumerate() {
                *slot = x[g[r.offset + i] as usize];
            }
        }
        None => slab.copy_from_slice(&x[r.offset..r.offset + r.len]),
    }
}

/// Reusable ping-pong buffers for [`execute_shard_into`], sized lazily
/// to the largest shard seen (the per-process analogue of
/// [`crate::plan::PlanWorkspace`]).
#[derive(Default)]
pub struct ShardWorkspace {
    a: Vec<Cplx>,
    b: Vec<Cplx>,
    tmp: Vec<Cplx>,
    scratch: Scratch,
}

impl ShardWorkspace {
    fn prepare(&mut self, plan: &Plan, len: usize) {
        if self.a.len() < len {
            self.a.resize(len, Cplx::ZERO);
            self.b.resize(len, Cplx::ZERO);
        }
        let local = plan.max_local_dim().max(1);
        if self.tmp.len() < local {
            self.tmp.resize(local, Cplx::ZERO);
        }
    }
}

/// Run the sharded prefix for shard `s`: `input` is the scattered local
/// slab ([`scatter_shard`] — gather already applied), `output` receives
/// the shard's partition of the prefix result. This is exactly the
/// chunk-program arithmetic of [`Plan::execute_into`] restricted to one
/// partition, so dist results are bitwise equal to single-process
/// results by construction. Shared by the worker binary and the
/// manager's single-process rescue path — a rescued batch reruns the
/// *same* code a healthy worker would have.
pub fn execute_shard_into(
    plan: &Plan,
    spec: &ShardSpec,
    s: usize,
    input: &[Cplx],
    output: &mut [Cplx],
    ws: &mut ShardWorkspace,
) {
    let r = &spec.regions[s];
    assert_eq!(input.len(), r.len, "shard input length mismatch");
    assert_eq!(output.len(), r.len, "shard output length mismatch");
    ws.prepare(plan, r.len);
    let mut a: &mut [Cplx] = &mut ws.a[..r.len];
    let mut b: &mut [Cplx] = &mut ws.b[..r.len];
    let tmp = &mut ws.tmp;
    let scratch = &mut ws.scratch;
    a.copy_from_slice(input);
    for step in &plan.steps[..spec.shard_steps] {
        let Step::Par {
            chunk, programs, ..
        } = step
        else {
            unreachable!("shard prefix contains only Par steps");
        };
        // The shard's chunk range at this step's chunk grid. Region
        // bounds are chunk-aligned because the chunk count divides by q.
        let (lo, hi) = (r.offset / chunk, (r.offset + r.len) / chunk);
        for (k, prog) in programs[lo..hi].iter().enumerate() {
            let local = (lo + k) * chunk - r.offset;
            let view = SrcView::Local(&a[local..local + chunk]);
            prog.run_view(
                view,
                &mut b[local..local + chunk],
                &mut tmp[..*chunk],
                scratch,
            );
        }
        std::mem::swap(&mut a, &mut b);
    }
    output.copy_from_slice(a);
}

/// Single-process emulation of the full dist schedule — scatter, shard
/// prefix per worker, gather, manager tail — used as the equality-test
/// reference and to sanity-check shard geometry without spawning
/// processes. Allocates per call; the process fleet is the fast path.
pub fn execute_dist_reference(plan: &Plan, spec: &ShardSpec, x: &[Cplx]) -> Vec<Cplx> {
    let mut ws = crate::plan::PlanWorkspace::default();
    let mut sws = ShardWorkspace::default();
    let stage = ws.stage_buffer(plan);
    for (s, r) in spec.regions.iter().enumerate() {
        let mut slab = vec![Cplx::ZERO; r.len];
        scatter_shard(plan, spec, s, x, &mut slab);
        let mut out = vec![Cplx::ZERO; r.len];
        execute_shard_into(plan, spec, s, &slab, &mut out, &mut sws);
        stage[r.offset..r.offset + r.len].copy_from_slice(&out);
    }
    let mut out = vec![Cplx::ZERO; plan.n];
    plan.execute_tail_into(spec.shard_steps, &mut out, &mut ws);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_rewrite::multicore_dft_expanded;
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(1.0 + j as f64, -0.5 * j as f64))
            .collect()
    }

    fn fused_plan(n: usize, p: usize) -> Plan {
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges()
    }

    #[test]
    fn fused_formula_14_shards_one_step() {
        // [Par+g, Par+g, Exch]: the second Par carries a gather, so only
        // the first step shards.
        let plan = fused_plan(256, 4);
        let spec = shard_plan(&plan, 2).unwrap();
        assert_eq!(spec.shard_steps, 1);
        assert_eq!(spec.regions.len(), 2);
        assert_eq!(
            spec.regions[0],
            ShardRegion {
                offset: 0,
                len: 128
            }
        );
        assert_eq!(
            spec.regions[1],
            ShardRegion {
                offset: 128,
                len: 128
            }
        );
        assert!(spec.prefix_flops(&plan) > 0);
    }

    #[test]
    fn unfused_plan_is_not_shardable() {
        let f = multicore_dft_expanded(256, 4, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 4, 4).unwrap();
        assert!(matches!(
            shard_plan(&plan, 2),
            Err(ShardError::LeadingStepNotPar(_))
        ));
    }

    #[test]
    fn rejects_bad_process_counts() {
        let plan = fused_plan(256, 4);
        for q in [0usize, 1, 3, 512] {
            assert!(matches!(
                shard_plan(&plan, q),
                Err(ShardError::BadProcs { .. } | ShardError::ChunksNotDivisible { .. })
            ));
        }
        // q = 8 > 4 chunks: cannot split 4 chunks 8 ways.
        assert_eq!(
            shard_plan(&plan, 8),
            Err(ShardError::ChunksNotDivisible { chunks: 4, q: 8 })
        );
    }

    #[test]
    fn dist_reference_is_bitwise_equal_to_single_process() {
        for (n, p, q) in [
            (64usize, 2usize, 2usize),
            (256, 4, 2),
            (256, 4, 4),
            (1024, 4, 4),
        ] {
            let plan = fused_plan(n, p);
            let spec = shard_plan(&plan, q).unwrap();
            let x = ramp(n);
            let single = plan.execute(&x);
            let dist = execute_dist_reference(&plan, &spec, &x);
            assert_eq!(
                single.len(),
                dist.len(),
                "length mismatch n={n} p={p} q={q}"
            );
            for (i, (a, b)) in single.iter().zip(&dist).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "bitwise mismatch at {i}: {a:?} vs {b:?} (n={n} p={p} q={q})"
                );
            }
        }
    }

    #[test]
    fn dist_reference_computes_dft() {
        let n = 256;
        let plan = fused_plan(n, 4);
        let spec = shard_plan(&plan, 4).unwrap();
        let x = ramp(n);
        let y = execute_dist_reference(&plan, &spec, &x);
        assert_slices_close(&y, &dft(n).eval(&x), 1e-8 * n as f64);
    }
}
