//! Arithmetic-expression DAGs for DFT codelets.
//!
//! Small-size DFT kernels ("codelets", after FFTW's `genfft`) are produced
//! by *partial evaluation*: the Cooley–Tukey recursion is executed on
//! symbolic values, yielding a straight-line program as a hash-consed DAG
//! of complex additions, subtractions, and multiplications by constants.
//! The DAG is both interpreted at run time (generic codelet execution)
//! and pretty-printed by the C emitter.

use spiral_spl::cplx::Cplx;
use std::collections::HashMap;

/// Node index within a [`Dag`].
pub type Id = u32;

/// One DAG operation. `Mul` is multiplication by a compile-time constant
/// (twiddle factors are constants after partial evaluation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Node {
    /// The `i`-th input element.
    Input(u32),
    /// Complex addition.
    Add(Id, Id),
    /// Complex subtraction.
    Sub(Id, Id),
    /// `operand * constant`.
    Mul(Id, Cplx),
    /// `operand * i` — strength-reduced rotation (no multiplies).
    MulI(Id),
    /// `operand * (-i)`.
    MulNegI(Id),
    /// Negation.
    Neg(Id),
}

/// A straight-line complex arithmetic program with `n_inputs` inputs and
/// `outputs.len()` outputs.
#[derive(Clone, Debug)]
pub struct Dag {
    /// Operations in topological order (inputs first).
    pub nodes: Vec<Node>,
    /// Node ids of the outputs, in output order.
    pub outputs: Vec<Id>,
    /// Number of input slots.
    pub n_inputs: usize,
}

impl Dag {
    /// Real-flop count of one evaluation (complex add/sub = 2, complex
    /// multiply = 6, rotations and negations are free-ish = 2).
    pub fn flops(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Input(_) => 0,
                Node::Add(..) | Node::Sub(..) => 2,
                Node::Mul(..) => 6,
                Node::MulI(_) | Node::MulNegI(_) | Node::Neg(_) => 2,
            })
            .sum()
    }

    /// Number of arithmetic (non-input) nodes.
    pub fn ops(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n, Node::Input(_)))
            .count()
    }

    /// Evaluate on concrete inputs. `scratch` is resized as needed and
    /// reused across calls to avoid per-call allocation.
    pub fn eval(&self, input: &[Cplx], out: &mut [Cplx], scratch: &mut Vec<Cplx>) {
        debug_assert_eq!(input.len(), self.n_inputs);
        debug_assert_eq!(out.len(), self.outputs.len());
        scratch.clear();
        scratch.reserve(self.nodes.len());
        for node in &self.nodes {
            let v = match *node {
                Node::Input(i) => input[i as usize],
                Node::Add(a, b) => scratch[a as usize] + scratch[b as usize],
                Node::Sub(a, b) => scratch[a as usize] - scratch[b as usize],
                Node::Mul(a, c) => scratch[a as usize] * c,
                Node::MulI(a) => scratch[a as usize].mul_i(),
                Node::MulNegI(a) => scratch[a as usize].mul_neg_i(),
                Node::Neg(a) => -scratch[a as usize],
            };
            scratch.push(v);
        }
        for (k, &o) in self.outputs.iter().enumerate() {
            out[k] = scratch[o as usize];
        }
    }

    /// Evaluate `NU` independent lanes in lane-grouped layout (input slot
    /// `i` at `input[i·NU..(i+1)·NU]`, output slot `k` at
    /// `out[k·NU..(k+1)·NU]`). Each lane runs the identical node sequence
    /// as [`eval`], so per-lane results are bit-identical to `NU` scalar
    /// evaluations.
    pub fn eval_lanes<const NU: usize>(
        &self,
        input: &[Cplx],
        out: &mut [Cplx],
        scratch: &mut Vec<Cplx>,
    ) {
        use crate::simd::Lanes;
        debug_assert_eq!(input.len(), self.n_inputs * NU);
        debug_assert_eq!(out.len(), self.outputs.len() * NU);
        scratch.clear();
        scratch.resize(self.nodes.len() * NU, Cplx::ZERO);
        let at = |s: &[Cplx], id: Id| Lanes::<NU>::load(&s[id as usize * NU..]);
        for (k, node) in self.nodes.iter().enumerate() {
            let v = match *node {
                Node::Input(i) => Lanes::<NU>::load(&input[i as usize * NU..]),
                Node::Add(a, b) => at(scratch, a) + at(scratch, b),
                Node::Sub(a, b) => at(scratch, a) - at(scratch, b),
                Node::Mul(a, c) => at(scratch, a).mul_const(c),
                Node::MulI(a) => at(scratch, a).mul_i(),
                Node::MulNegI(a) => at(scratch, a).mul_neg_i(),
                Node::Neg(a) => -at(scratch, a),
            };
            v.store(&mut scratch[k * NU..]);
        }
        for (k, &o) in self.outputs.iter().enumerate() {
            at(scratch, o).store(&mut out[k * NU..]);
        }
    }
}

/// Hash-consing DAG builder.
pub struct DagBuilder {
    nodes: Vec<Node>,
    /// structural dedup: key is the node with constants bit-cast.
    memo: HashMap<NodeKey, Id>,
}

#[derive(PartialEq, Eq, Hash)]
enum NodeKey {
    Input(u32),
    Add(Id, Id),
    Sub(Id, Id),
    Mul(Id, u64, u64),
    MulI(Id),
    MulNegI(Id),
    Neg(Id),
}

fn key_of(n: &Node) -> NodeKey {
    match *n {
        Node::Input(i) => NodeKey::Input(i),
        // Addition commutes: canonicalize operand order for better dedup.
        Node::Add(a, b) => NodeKey::Add(a.min(b), a.max(b)),
        Node::Sub(a, b) => NodeKey::Sub(a, b),
        Node::Mul(a, c) => NodeKey::Mul(a, c.re.to_bits(), c.im.to_bits()),
        Node::MulI(a) => NodeKey::MulI(a),
        Node::MulNegI(a) => NodeKey::MulNegI(a),
        Node::Neg(a) => NodeKey::Neg(a),
    }
}

impl DagBuilder {
    /// New builder with `n_inputs` input nodes; returns their ids.
    pub fn new(n_inputs: usize) -> (DagBuilder, Vec<Id>) {
        let mut b = DagBuilder {
            nodes: Vec::new(),
            memo: HashMap::new(),
        };
        let inputs = (0..crate::u32_idx(n_inputs))
            .map(|i| b.push(Node::Input(i)))
            .collect();
        (b, inputs)
    }

    fn push(&mut self, n: Node) -> Id {
        let key = key_of(&n);
        if let Some(&id) = self.memo.get(&key) {
            return id;
        }
        let id = crate::u32_idx(self.nodes.len());
        self.nodes.push(n);
        self.memo.insert(key, id);
        id
    }

    /// Emit `a + b`.
    pub fn add(&mut self, a: Id, b: Id) -> Id {
        self.push(Node::Add(a, b))
    }

    /// Emit `a - b`.
    pub fn sub(&mut self, a: Id, b: Id) -> Id {
        self.push(Node::Sub(a, b))
    }

    /// Multiply by constant, with algebraic simplification of the unit
    /// constants the twiddle diagonals are full of.
    pub fn mul(&mut self, a: Id, c: Cplx) -> Id {
        const TOL: f64 = 1e-14;
        if c.approx_eq(Cplx::ONE, TOL) {
            a
        } else if c.approx_eq(Cplx::real(-1.0), TOL) {
            self.push(Node::Neg(a))
        } else if c.approx_eq(Cplx::I, TOL) {
            self.push(Node::MulI(a))
        } else if c.approx_eq(-Cplx::I, TOL) {
            self.push(Node::MulNegI(a))
        } else {
            self.push(Node::Mul(a, c))
        }
    }

    /// Seal the DAG with the given output nodes.
    pub fn finish(self, outputs: Vec<Id>, n_inputs: usize) -> Dag {
        Dag {
            nodes: self.nodes,
            outputs,
            n_inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_simple_butterfly() {
        let (mut b, ins) = DagBuilder::new(2);
        let s = b.add(ins[0], ins[1]);
        let d = b.sub(ins[0], ins[1]);
        let dag = b.finish(vec![s, d], 2);
        let mut out = [Cplx::ZERO; 2];
        let mut scratch = Vec::new();
        dag.eval(&[Cplx::real(3.0), Cplx::real(1.0)], &mut out, &mut scratch);
        assert!(out[0].approx_eq(Cplx::real(4.0), 0.0));
        assert!(out[1].approx_eq(Cplx::real(2.0), 0.0));
        assert_eq!(dag.flops(), 4);
    }

    #[test]
    fn hash_consing_dedups() {
        let (mut b, ins) = DagBuilder::new(2);
        let s1 = b.add(ins[0], ins[1]);
        let s2 = b.add(ins[1], ins[0]); // commuted — must dedup
        assert_eq!(s1, s2);
        let d1 = b.sub(ins[0], ins[1]);
        let d2 = b.sub(ins[0], ins[1]);
        assert_eq!(d1, d2);
        // Sub does not commute.
        let d3 = b.sub(ins[1], ins[0]);
        assert_ne!(d1, d3);
    }

    #[test]
    fn unit_constant_multiplies_fold() {
        let (mut b, ins) = DagBuilder::new(1);
        assert_eq!(b.mul(ins[0], Cplx::ONE), ins[0]);
        let neg = b.mul(ins[0], Cplx::real(-1.0));
        let dag_len = b.nodes.len();
        // -1 twice dedups
        assert_eq!(b.mul(ins[0], Cplx::real(-1.0)), neg);
        assert_eq!(b.nodes.len(), dag_len);
        // i and -i become rotations
        let r = b.mul(ins[0], Cplx::I);
        let dag = b.finish(vec![r], 1);
        assert!(matches!(dag.nodes.last(), Some(Node::MulI(_))));
    }

    #[test]
    fn rotations_evaluate_correctly() {
        let (mut b, ins) = DagBuilder::new(1);
        let ri = b.mul(ins[0], Cplx::I);
        let rni = b.mul(ins[0], -Cplx::I);
        let n = b.mul(ins[0], Cplx::real(-1.0));
        let general = b.mul(ins[0], Cplx::new(0.5, 0.25));
        let dag = b.finish(vec![ri, rni, n, general], 1);
        let z = Cplx::new(2.0, -3.0);
        let mut out = [Cplx::ZERO; 4];
        let mut scratch = Vec::new();
        dag.eval(&[z], &mut out, &mut scratch);
        assert!(out[0].approx_eq(z * Cplx::I, 1e-15));
        assert!(out[1].approx_eq(z * -Cplx::I, 1e-15));
        assert!(out[2].approx_eq(-z, 1e-15));
        assert!(out[3].approx_eq(z * Cplx::new(0.5, 0.25), 1e-15));
    }
}
