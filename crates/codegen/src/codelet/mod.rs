//! DFT codelets: the straight-line base-case kernels of the generator.
//!
//! Sizes 2, 4, and 8 have hand-unrolled hot paths; every other size is
//! served by a generated DAG (partial evaluation of the Cooley–Tukey
//! recursion, naive DFT for primes). All variants agree with the defining
//! matrix-vector product — tested exhaustively.

pub mod dag;

use dag::{Dag, DagBuilder, Id};
use spiral_spl::cplx::Cplx;
use spiral_spl::num::{factorize, omega_pow, omega_pow2};
use spiral_spl::perm::Perm;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// An executable DFT kernel of a fixed (small) size.
#[derive(Clone, Debug)]
pub enum Codelet {
    /// Size-2 butterfly `F_2` (hand-unrolled).
    F2,
    /// Size-4 radix-2 kernel (hand-unrolled).
    F4,
    /// Size-8 split kernel (hand-unrolled DAG-free path).
    F8,
    /// Generated straight-line code for arbitrary sizes.
    Dag(Arc<Dag>),
}

impl Codelet {
    /// Build the codelet for `DFT_n`. Hand-unrolled kernels are used for
    /// n ∈ {2, 4, 8}; other sizes get a generated DAG (cached globally —
    /// generation is deterministic).
    pub fn for_size(n: usize) -> Codelet {
        match n {
            2 => Codelet::F2,
            4 => Codelet::F4,
            8 => Codelet::F8,
            _ => Codelet::Dag(cached_dag(n)),
        }
    }

    /// The DAG form (also for the hand-unrolled sizes) — used by the C
    /// emitter, which always prints generated code.
    pub fn dag(&self) -> Arc<Dag> {
        match self {
            Codelet::F2 => cached_dag(2),
            Codelet::F4 => cached_dag(4),
            Codelet::F8 => cached_dag(8),
            Codelet::Dag(d) => Arc::clone(d),
        }
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        match self {
            Codelet::F2 => 2,
            Codelet::F4 => 4,
            Codelet::F8 => 8,
            Codelet::Dag(d) => d.n_inputs,
        }
    }

    /// Real-flop count per application (for the cost model and the
    /// pseudo-Mflop/s accounting).
    pub fn flops(&self) -> u64 {
        match self {
            Codelet::F2 => 4,
            Codelet::F4 => 16,
            Codelet::F8 => cached_dag(8).flops(),
            Codelet::Dag(d) => d.flops(),
        }
    }

    /// Apply: `out = DFT_n(input)`. `scratch` is reused storage for the
    /// DAG interpreter.
    #[inline]
    pub fn apply(&self, input: &[Cplx], out: &mut [Cplx], scratch: &mut Vec<Cplx>) {
        match self {
            Codelet::F2 => {
                let (a, b) = (input[0], input[1]);
                out[0] = a + b;
                out[1] = a - b;
            }
            Codelet::F4 => {
                // DFT_4 = (F2 ⊗ I2) T^4_2 (I2 ⊗ F2) L^4_2, fully unrolled.
                let t0 = input[0] + input[2];
                let t1 = input[0] - input[2];
                let t2 = input[1] + input[3];
                let t3 = (input[1] - input[3]).mul_neg_i(); // twiddle ω_4 = -i
                out[0] = t0 + t2;
                out[2] = t0 - t2;
                out[1] = t1 + t3;
                out[3] = t1 - t3;
            }
            Codelet::F8 => {
                // Radix-2 DIT, constants √2/2 folded.
                const H: f64 = std::f64::consts::FRAC_1_SQRT_2;
                let w8 = Cplx::new(H, -H); // ω_8
                let w83 = Cplx::new(-H, -H); // ω_8³
                                             // Stage 1: DFT_2 on (0,4),(2,6),(1,5),(3,7)
                let a0 = input[0] + input[4];
                let a1 = input[0] - input[4];
                let a2 = input[2] + input[6];
                let a3 = input[2] - input[6];
                let a4 = input[1] + input[5];
                let a5 = input[1] - input[5];
                let a6 = input[3] + input[7];
                let a7 = input[3] - input[7];
                // Stage 2: DFT_2 with twiddles (radix-2 on halves)
                let b0 = a0 + a2;
                let b2 = a0 - a2;
                let b1 = a1 + a3.mul_neg_i();
                let b3 = a1 - a3.mul_neg_i();
                let b4 = a4 + a6;
                let b6 = a4 - a6;
                let b5 = a5 + a7.mul_neg_i();
                let b7 = a5 - a7.mul_neg_i();
                // Stage 3: combine with ω_8 twiddles
                out[0] = b0 + b4;
                out[4] = b0 - b4;
                let t5 = b5 * w8;
                out[1] = b1 + t5;
                out[5] = b1 - t5;
                let t6 = b6.mul_neg_i();
                out[2] = b2 + t6;
                out[6] = b2 - t6;
                let t7 = b7 * w83;
                out[3] = b3 + t7;
                out[7] = b3 - t7;
            }
            Codelet::Dag(d) => d.eval(input, out, scratch),
        }
    }

    /// Vector apply: `NU` independent transforms in lane-grouped layout —
    /// slot `t` of the `c`-point transform occupies `input[t·NU..(t+1)·NU]`
    /// (lane `l` of slot `t` at `t·NU + l`), and likewise for `out`. Each
    /// lane computes exactly the operation sequence of [`apply`]
    /// (hand-unrolled kernels) or of the generated DAG, so per-lane results
    /// are bit-identical to `NU` scalar applications.
    #[inline]
    pub fn apply_lanes<const NU: usize>(
        &self,
        input: &[Cplx],
        out: &mut [Cplx],
        scratch: &mut Vec<Cplx>,
    ) {
        use crate::simd::Lanes;
        let ld = |t: usize| Lanes::<NU>::load(&input[t * NU..]);
        match self {
            Codelet::F2 => {
                let (a, b) = (ld(0), ld(1));
                (a + b).store(&mut out[0..]);
                (a - b).store(&mut out[NU..]);
            }
            Codelet::F4 => {
                let t0 = ld(0) + ld(2);
                let t1 = ld(0) - ld(2);
                let t2 = ld(1) + ld(3);
                let t3 = (ld(1) - ld(3)).mul_neg_i();
                (t0 + t2).store(&mut out[0..]);
                (t0 - t2).store(&mut out[2 * NU..]);
                (t1 + t3).store(&mut out[NU..]);
                (t1 - t3).store(&mut out[3 * NU..]);
            }
            Codelet::F8 => {
                const H: f64 = std::f64::consts::FRAC_1_SQRT_2;
                let w8 = Cplx::new(H, -H);
                let w83 = Cplx::new(-H, -H);
                let a0 = ld(0) + ld(4);
                let a1 = ld(0) - ld(4);
                let a2 = ld(2) + ld(6);
                let a3 = ld(2) - ld(6);
                let a4 = ld(1) + ld(5);
                let a5 = ld(1) - ld(5);
                let a6 = ld(3) + ld(7);
                let a7 = ld(3) - ld(7);
                let b0 = a0 + a2;
                let b2 = a0 - a2;
                let b1 = a1 + a3.mul_neg_i();
                let b3 = a1 - a3.mul_neg_i();
                let b4 = a4 + a6;
                let b6 = a4 - a6;
                let b5 = a5 + a7.mul_neg_i();
                let b7 = a5 - a7.mul_neg_i();
                (b0 + b4).store(&mut out[0..]);
                (b0 - b4).store(&mut out[4 * NU..]);
                let t5 = b5.mul_const(w8);
                (b1 + t5).store(&mut out[NU..]);
                (b1 - t5).store(&mut out[5 * NU..]);
                let t6 = b6.mul_neg_i();
                (b2 + t6).store(&mut out[2 * NU..]);
                (b2 - t6).store(&mut out[6 * NU..]);
                let t7 = b7.mul_const(w83);
                (b3 + t7).store(&mut out[3 * NU..]);
                (b3 - t7).store(&mut out[7 * NU..]);
            }
            Codelet::Dag(d) => d.eval_lanes::<NU>(input, out, scratch),
        }
    }
}

/// Global cache of generated DAGs (generation is pure, so sharing is safe).
fn cached_dag(n: usize) -> Arc<Dag> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Dag>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(d) = cache.lock().unwrap().get(&n) {
        return Arc::clone(d);
    }
    let d = Arc::new(generate_dft_dag(n));
    cache.lock().unwrap().entry(n).or_insert(d).clone()
}

/// Generate the straight-line DAG for `DFT_n` by symbolically executing
/// the Cooley–Tukey recursion (naive definition for primes).
pub fn generate_dft_dag(n: usize) -> Dag {
    assert!(n >= 1, "DFT size must be positive");
    let (mut b, inputs) = DagBuilder::new(n);
    let outputs = dft_symbolic(&mut b, &inputs);
    b.finish(outputs, n)
}

/// Symbolic `DFT_n` on a vector of DAG node ids.
fn dft_symbolic(b: &mut DagBuilder, xs: &[Id]) -> Vec<Id> {
    let n = xs.len();
    if n == 1 {
        return xs.to_vec();
    }
    if n == 2 {
        return vec![b.add(xs[0], xs[1]), b.sub(xs[0], xs[1])];
    }
    // Split at the smallest prime factor (radix-2 for powers of two).
    let m = factorize(n)[0].0;
    if m == n {
        // Prime: naive definition y_k = Σ_l ω^{kl} x_l.
        return (0..n)
            .map(|k| {
                let mut acc: Option<Id> = None;
                for (l, &x) in xs.iter().enumerate() {
                    let term = b.mul(x, omega_pow2(n, k, l));
                    acc = Some(match acc {
                        None => term,
                        Some(a) => b.add(a, term),
                    });
                }
                acc.unwrap()
            })
            .collect();
    }
    let k = n / m;
    // u = L^n_m x
    let l = Perm::stride(n, m);
    let u: Vec<Id> = (0..n).map(|r| xs[l.src(r)]).collect();
    // v = (I_m ⊗ DFT_k) u, then twiddles T^n_k: v[a·k + j] *= ω_n^{a·j}
    let mut v = Vec::with_capacity(n);
    for a in 0..m {
        let block = dft_symbolic(b, &u[a * k..(a + 1) * k]);
        for (j, id) in block.into_iter().enumerate() {
            v.push(b.mul(id, omega_pow(n, a * j)));
        }
    }
    // y = (DFT_m ⊗ I_k) v: column-wise DFT_m at stride k.
    let mut y = vec![0 as Id; n];
    let mut col = Vec::with_capacity(m);
    for j in 0..k {
        col.clear();
        for a in 0..m {
            col.push(v[a * k + j]);
        }
        let res = dft_symbolic(b, &col.clone());
        for (a, id) in res.into_iter().enumerate() {
            y[a * k + j] = id;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::apply::naive_dft;
    use spiral_spl::cplx::assert_slices_close;

    fn rand_input(n: usize, seed: u64) -> Vec<Cplx> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let re = (s as f64 / u64::MAX as f64) * 2.0 - 1.0;
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let im = (s as f64 / u64::MAX as f64) * 2.0 - 1.0;
                Cplx::new(re, im)
            })
            .collect()
    }

    fn check_codelet(n: usize) {
        let c = Codelet::for_size(n);
        assert_eq!(c.size(), n);
        let mut scratch = Vec::new();
        for seed in 1..4 {
            let x = rand_input(n, seed);
            let mut got = vec![Cplx::ZERO; n];
            c.apply(&x, &mut got, &mut scratch);
            let mut want = vec![Cplx::ZERO; n];
            naive_dft(n, &x, &mut want);
            assert_slices_close(&got, &want, 1e-10 * n as f64);
        }
    }

    #[test]
    fn hand_unrolled_kernels_match_definition() {
        check_codelet(2);
        check_codelet(4);
        check_codelet(8);
    }

    #[test]
    fn generated_dags_match_definition_all_sizes() {
        for n in 1..=32 {
            let dag = generate_dft_dag(n);
            assert_eq!(dag.n_inputs, n);
            assert_eq!(dag.outputs.len(), n);
            let x = rand_input(n, n as u64);
            let mut got = vec![Cplx::ZERO; n];
            let mut scratch = Vec::new();
            dag.eval(&x, &mut got, &mut scratch);
            let mut want = vec![Cplx::ZERO; n];
            naive_dft(n, &x, &mut want);
            assert_slices_close(&got, &want, 1e-9 * n as f64);
        }
    }

    #[test]
    fn generated_op_counts_are_fft_like() {
        // Power-of-two DAGs must be O(n log n), far below naive O(n²):
        // radix-2 DFT_16 needs well under 16² = 256 complex ops.
        let d16 = generate_dft_dag(16);
        assert!(d16.ops() < 150, "{} ops", d16.ops());
        let d32 = generate_dft_dag(32);
        assert!((d32.ops() as f64) < 2.6 * d16.ops() as f64);
        // And strictly more than the information-theoretic floor.
        assert!(d16.ops() >= 16);
    }

    #[test]
    fn dag_cache_shares() {
        let a = cached_dag(12);
        let b = cached_dag(12);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn flops_positive_and_consistent() {
        for n in [2usize, 4, 8, 3, 5, 6, 16] {
            let c = Codelet::for_size(n);
            assert!(c.flops() > 0, "n={n}");
        }
        assert_eq!(Codelet::F2.flops(), 4);
    }

    #[test]
    fn dag_matches_hand_unrolled() {
        // The emitter uses dag() even for hand-unrolled sizes; they must
        // agree numerically.
        let mut scratch = Vec::new();
        for n in [2usize, 4, 8] {
            let hand = Codelet::for_size(n);
            let dag = hand.dag();
            let x = rand_input(n, 99 + n as u64);
            let mut a = vec![Cplx::ZERO; n];
            let mut b = vec![Cplx::ZERO; n];
            hand.apply(&x, &mut a, &mut scratch);
            dag.eval(&x, &mut b, &mut scratch);
            assert_slices_close(&a, &b, 1e-12);
        }
    }

    #[test]
    fn size_one_is_identity() {
        let c = Codelet::for_size(1);
        let x = [Cplx::new(2.5, -1.0)];
        let mut y = [Cplx::ZERO];
        let mut scratch = Vec::new();
        c.apply(&x, &mut y, &mut scratch);
        assert!(y[0].approx_eq(x[0], 0.0));
    }
}
