//! Loop merging (the formula-level optimization of ref. [11]).
//!
//! After lowering, permutations and diagonals are explicit data passes.
//! This pass folds them into adjacent kernel stages:
//!
//! * `Permute → Kernel` becomes a fused *gather* (`in_map`),
//! * `Scale → Kernel` becomes a fused twiddle-on-load,
//! * `Kernel → Permute` becomes a fused *scatter* (`out_map`),
//! * adjacent `Permute`s / `Scale`s combine,
//! * identity permutes and all-ones scales disappear.
//!
//! The result is the memory behaviour the paper reasons about: a
//! Cooley–Tukey formula becomes `log` kernel passes with strided gathers,
//! no standalone reorder passes.

use crate::lower::{twiddle_for_kernel, twiddle_for_kernel_out};
use crate::stage::{KernelStage, LocalProgram, LocalStage};
use spiral_spl::cplx::Cplx;
use std::sync::Arc;

/// Fuse a program to fixpoint. Semantics-preserving (tested by matrix
/// equality against the unfused program).
pub fn fuse(mut prog: LocalProgram) -> LocalProgram {
    loop {
        let before = prog.stages.len();
        prog = fuse_once(prog);
        prog = drop_trivial(prog);
        if prog.stages.len() == before {
            break;
        }
    }
    recover_affine(prog)
}

/// Stride permutations fused as gather/scatter *tables* are usually
/// affine in the kernel's own loop indices (e.g. the Cooley–Tukey
/// `L^{mn}_m` is a plain stride-m read). Detect that and convert the
/// table back into loop strides — the form the paper's index
/// simplification [11] produces, and the form compilers vectorize.
fn recover_affine(prog: LocalProgram) -> LocalProgram {
    let dim = prog.dim;
    let stages = prog
        .stages
        .into_iter()
        .map(|s| match s {
            LocalStage::Kernel(k) => LocalStage::Kernel(try_affine(k)),
            other => other,
        })
        .collect();
    LocalProgram { dim, stages }
}

fn try_affine(mut k: KernelStage) -> KernelStage {
    if k.in_map.is_some() {
        if let Some((off, strides, t_stride)) = affine_of(&k, false) {
            k.in_map = None;
            k.in_off = off;
            for (l, s) in k.loops.iter_mut().zip(&strides) {
                l.in_stride = *s;
            }
            k.in_t_stride = t_stride;
        }
    }
    if k.out_map.is_some() {
        if let Some((off, strides, t_stride)) = affine_of(&k, true) {
            k.out_map = None;
            k.out_off = off;
            for (l, s) in k.loops.iter_mut().zip(&strides) {
                l.out_stride = *s;
            }
            k.out_t_stride = t_stride;
        }
    }
    k
}

/// If the (mapped) access function of `k` is affine in the loop indices
/// and the codelet slot, return `(offset, per-loop strides, t-stride)`.
fn affine_of(k: &KernelStage, output: bool) -> Option<(usize, Vec<usize>, usize)> {
    let c = k.codelet.size();
    // Collect the access stream in flat iteration order.
    let mut idxs: Vec<usize> = Vec::with_capacity(k.iterations() * c);
    k.trace(|is_write, idx| {
        if is_write == output {
            idxs.push(idx);
        }
    });
    let counts: Vec<usize> = k.loops.iter().map(|l| l.count).collect();
    let base = *idxs.first()?;
    // Candidate t-stride from the first iteration.
    let t_stride = if c > 1 {
        idxs.get(1)?.checked_sub(base)?
    } else {
        0
    };
    // Candidate per-loop strides from the unit steps of each dimension.
    let mut strides = vec![0usize; counts.len()];
    let mut step = 1usize; // flat-iteration step of dimension d (innermost last)
    for d in (0..counts.len()).rev() {
        if counts[d] > 1 {
            strides[d] = idxs.get(step * c)?.checked_sub(base)?;
        }
        step *= counts[d];
    }
    // Verify every access.
    let total: usize = counts.iter().product();
    for flat in 0..total {
        // Decompose flat into the mixed-radix loop indices.
        let mut rem = flat;
        let mut predicted = base;
        for d in (0..counts.len()).rev() {
            let i_d = rem % counts[d];
            rem /= counts[d];
            predicted += i_d * strides[d];
        }
        for t in 0..c {
            if idxs[flat * c + t] != predicted + t * t_stride {
                return None;
            }
        }
    }
    Some((base, strides, t_stride))
}

fn fuse_once(prog: LocalProgram) -> LocalProgram {
    let dim = prog.dim;
    let mut out: Vec<LocalStage> = Vec::with_capacity(prog.stages.len());
    for stage in prog.stages {
        match (out.last_mut(), stage) {
            // Permute then Permute: y = P2(P1 x) ⇒ tbl[i] = t1[t2[i]].
            (Some(LocalStage::Permute(t1)), LocalStage::Permute(t2)) => {
                let combined: Vec<u32> = t2.iter().map(|&i| t1[i as usize]).collect();
                *t1 = Arc::new(combined);
            }
            // Scale then Scale: pointwise product.
            (Some(LocalStage::Scale(w1)), LocalStage::Scale(w2)) => {
                let combined: Vec<Cplx> = w1.iter().zip(w2.iter()).map(|(a, b)| *a * *b).collect();
                *w1 = Arc::new(combined);
            }
            // Permute then Kernel: fold into the kernel's gather.
            (Some(LocalStage::Permute(t)), LocalStage::Kernel(mut k)) => {
                let t = Arc::clone(t);
                k.in_map = Some(match k.in_map.take() {
                    None => t,
                    Some(old) => Arc::new(old.iter().map(|&i| t[i as usize]).collect()),
                });
                *out.last_mut().unwrap() = LocalStage::Kernel(k);
            }
            // Scale then Kernel: fold into twiddle-on-load. The table is
            // keyed by (iteration, slot), built from the kernel's own
            // gather order, so it composes with any in_map already fused.
            (Some(LocalStage::Scale(w)), LocalStage::Kernel(mut k)) => {
                let per_slot = twiddle_for_kernel(&k, w);
                k.twiddle = Some(match k.twiddle.take() {
                    None => Arc::new(per_slot),
                    Some(old) => {
                        Arc::new(old.iter().zip(&per_slot).map(|(a, b)| *a * *b).collect())
                    }
                });
                *out.last_mut().unwrap() = LocalStage::Kernel(k);
            }
            // Kernel then Scale: fold as scale-on-store, keyed by the
            // kernel's scatter order.
            (Some(LocalStage::Kernel(k)), LocalStage::Scale(w)) => {
                let per_slot = twiddle_for_kernel_out(k, &w);
                let mut k2 = k.clone();
                k2.twiddle_out = Some(match k2.twiddle_out.take() {
                    None => Arc::new(per_slot),
                    Some(old) => {
                        Arc::new(old.iter().zip(&per_slot).map(|(a, b)| *a * *b).collect())
                    }
                });
                *out.last_mut().unwrap() = LocalStage::Kernel(k2);
            }
            // Kernel then Permute: fold into the kernel's scatter.
            // y = P(K x): value written to o lands at dest with
            // tbl[dest] = o, i.e. through the inverse table.
            (Some(LocalStage::Kernel(k)), LocalStage::Permute(t)) => {
                let mut inv = vec![0u32; t.len()];
                for (i, &s) in t.iter().enumerate() {
                    inv[s as usize] = crate::u32_idx(i);
                }
                let k = k.clone();
                let mut k2 = k;
                k2.out_map = Some(match k2.out_map.take() {
                    None => Arc::new(inv),
                    Some(old) => Arc::new(old.iter().map(|&o| inv[o as usize]).collect()),
                });
                *out.last_mut().unwrap() = LocalStage::Kernel(k2);
            }
            (_, s) => out.push(s),
        }
    }
    LocalProgram { dim, stages: out }
}

fn drop_trivial(prog: LocalProgram) -> LocalProgram {
    let dim = prog.dim;
    let stages = prog
        .stages
        .into_iter()
        .filter(|s| match s {
            LocalStage::Permute(t) => !t.iter().enumerate().all(|(i, &v)| v as usize == i),
            LocalStage::Scale(w) => !w.iter().all(|z| z.approx_eq(Cplx::ONE, 0.0)),
            LocalStage::Kernel(_) => true,
        })
        .collect();
    LocalProgram { dim, stages }
}

/// Count kernel stages (post-fusion this is the number of compute passes).
pub fn kernel_passes(prog: &LocalProgram) -> usize {
    prog.stages
        .iter()
        .filter(|s| matches!(s, LocalStage::Kernel(_)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_seq;
    use spiral_spl::builder::*;
    use spiral_spl::cplx::assert_slices_close;
    use spiral_spl::Spl;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(0.25 * j as f64, 2.0 - j as f64))
            .collect()
    }

    fn check_fused(f: &Spl) -> LocalProgram {
        let prog = lower_seq(f).unwrap();
        let fused = fuse(prog.clone());
        let x = ramp(f.dim());
        assert_slices_close(&fused.eval(&x), &prog.eval(&x), 1e-9 * f.dim() as f64);
        assert_slices_close(&fused.eval(&x), &f.eval(&x), 1e-9 * f.dim() as f64);
        fused
    }

    #[test]
    fn cooley_tukey_fuses_to_two_kernel_passes() {
        // (DFT_2 ⊗ I_4) T (I_2 ⊗ DFT_4) L: the L fuses into the first
        // kernel's gather and T into the second's load — exactly the "two
        // loops" the paper says formula optimization reduces (1) to.
        let fused = check_fused(&cooley_tukey(2, 4));
        assert_eq!(fused.stages.len(), 2, "{:?}", fused.stages.len());
        assert_eq!(kernel_passes(&fused), 2);
    }

    #[test]
    fn recursive_expansion_fuses_to_log_passes() {
        use spiral_rewrite::RuleTree;
        let f = RuleTree::right_radix(16, 2).expand().normalized();
        let fused = check_fused(&f);
        // Radix-2 on 16 points: 4 butterfly passes, nothing else.
        assert_eq!(kernel_passes(&fused), 4);
        assert_eq!(fused.stages.len(), 4);
    }

    #[test]
    fn six_step_keeps_unfusable_structure_correct() {
        // Scale-after-kernel stays explicit; correctness must hold anyway.
        check_fused(&six_step(4, 4));
    }

    #[test]
    fn adjacent_permutes_combine() {
        let f = compose(vec![stride(8, 2), stride(8, 4)]);
        let fused = check_fused(&f);
        // L^8_2 · L^8_4 = I, so everything disappears... (inverse pair)
        assert!(fused.stages.is_empty(), "{} stages", fused.stages.len());
    }

    #[test]
    fn adjacent_scales_combine() {
        let f = compose(vec![twiddle(2, 4), twiddle(2, 4)]);
        let fused = check_fused(&f);
        assert_eq!(fused.stages.len(), 1);
        assert!(matches!(fused.stages[0], LocalStage::Scale(_)));
    }

    #[test]
    fn kernel_then_permute_becomes_scatter() {
        let f = compose(vec![stride(8, 2), tensor(i(4), f2())]);
        let fused = check_fused(&f);
        assert_eq!(fused.stages.len(), 1);
        match &fused.stages[0] {
            // The scatter through L^8_2 is affine, so recovery turns the
            // fused table back into strides: no out_map, but the output
            // strides must no longer be the plain contiguous ones.
            LocalStage::Kernel(k) => {
                assert!(k.out_map.is_none(), "affine scatter should have no table");
                assert!(
                    k.out_t_stride != 1 || k.loops.iter().any(|l| l.out_stride != l.in_stride),
                    "scatter strides unchanged: {k:?}"
                );
            }
            other => panic!("expected kernel, got {other:?}"),
        }
    }

    #[test]
    fn identity_permute_dropped() {
        let f = compose(vec![stride(6, 2), stride(6, 3)]); // inverse pair = I
        let fused = check_fused(&f);
        assert!(fused.stages.is_empty());
    }

    #[test]
    fn scale_fuses_through_existing_gather() {
        // Kernel with fused perm, then a scale before it in application
        // order: [Scale, Permute, Kernel] ⇒ single kernel with twiddle
        // that respects the permuted gather order.
        let f = compose(vec![
            tensor(i(2), f2()), // kernel
            stride(4, 2),       // permute (fuses as gather)
            twiddle(2, 2),      // scale (fuses as twiddle through gather)
        ]);
        let fused = check_fused(&f);
        assert_eq!(fused.stages.len(), 1);
        match &fused.stages[0] {
            LocalStage::Kernel(k) => {
                // The L^4_2 gather is affine (stride 2), so it becomes
                // strides rather than a table; the twiddle stays fused.
                assert!(k.in_map.is_none());
                assert_eq!(k.in_t_stride, 2);
                assert!(k.twiddle.is_some());
            }
            other => panic!("expected kernel, got {other:?}"),
        }
    }

    #[test]
    fn large_expansion_fuses_and_stays_correct() {
        use spiral_rewrite::sequential_dft;
        for n in [32usize, 64, 128] {
            let f = sequential_dft(n, 8);
            let fused = check_fused(&f);
            // Everything should be kernel passes after fusion.
            assert_eq!(
                fused.stages.len(),
                kernel_passes(&fused),
                "n={n}: standalone data passes remain"
            );
        }
    }
}
