//! Executable plans: the compiled form of a formula.
//!
//! A [`Plan`] is a sequence of [`Step`]s over ping-pong buffers. The
//! top-level parallel structure of a fully-optimized formula maps 1:1:
//!
//! * `I_p ⊗∥ A`  → [`Step::Par`] with `p` identical chunk programs,
//! * `⊕∥ A_i`    → [`Step::Par`] with per-chunk programs,
//! * `P ⊗̄ I_µ`   → [`Step::Exchange`] (cache-line-granular data exchange),
//! * diagonals    → [`Step::ScaleAll`],
//! * anything sequential → [`Step::Seq`].
//!
//! Between steps the executor synchronizes (one barrier per step) — the
//! only synchronization the generated programs need.

use crate::fuse::fuse;
use crate::hook::{MemHook, Region};
use crate::lower::{lower_seq, LowerError};
use crate::stage::{LocalProgram, LocalStage, Scratch};
use spiral_spl::ast::Spl;
use spiral_spl::cplx::Cplx;
use spiral_spl::perm::Perm;
use std::sync::{Arc, OnceLock};

/// One synchronization-delimited step of a plan.
#[derive(Clone, Debug)]
pub enum Step {
    /// Sequential program over the whole vector (runs on thread 0).
    Seq(LocalProgram),
    /// `programs.len()` independent contiguous chunks of size `chunk`;
    /// chunk `c` runs `programs[c]` (thread `c mod threads`). If
    /// `gather` is set, chunk `c`'s logical input `i` is read directly
    /// from the *global* source buffer at `gather[c·chunk + i]` — a
    /// `P ⊗̄ I_µ` exchange merged into this compute step
    /// ([`Plan::fuse_exchanges`]).
    Par {
        /// Size of each contiguous chunk.
        chunk: usize,
        /// Per-chunk programs (`len` = chunk count).
        programs: Vec<LocalProgram>,
        /// Optional fused global-gather table (size `n`).
        gather: Option<Arc<Vec<u32>>>,
    },
    /// Global permutation `dst[i] = src[table[i]]` that moves whole
    /// `mu`-element blocks (a `P ⊗̄ I_µ` — no false sharing by
    /// construction). Split across threads by blocks.
    Exchange {
        /// Gather table: `dst[i] = src[table[i]]`.
        table: Arc<Vec<u32>>,
        /// Block granularity (whole `mu`-element lines move together).
        mu: usize,
    },
    /// Global pointwise scaling (unfused diagonal).
    ScaleAll(Arc<Vec<Cplx>>),
}

impl Step {
    /// Real flops of this step for a size-`n` plan.
    pub fn flops(&self, n: usize) -> u64 {
        match self {
            Step::Seq(p) => p.flops(),
            Step::Par { programs, .. } => programs.iter().map(|p| p.flops()).sum(),
            Step::Exchange { .. } => 0,
            Step::ScaleAll(_) => 6 * n as u64,
        }
    }

    /// Short stage-IR label of this step, used by the observability
    /// layer (`spiral-trace`) to annotate per-stage profiles.
    pub fn label(&self) -> String {
        fn vec_mark(programs: &[&LocalProgram]) -> &'static str {
            let vectored = programs.iter().any(|p| {
                p.stages
                    .iter()
                    .any(|s| matches!(s, LocalStage::Kernel(k) if k.vec_width > 1))
            });
            if vectored {
                "+vec"
            } else {
                ""
            }
        }
        match self {
            Step::Seq(p) => format!("seq{}", vec_mark(&[p])),
            Step::Par {
                chunk,
                programs,
                gather,
            } => {
                let refs: Vec<&LocalProgram> = programs.iter().collect();
                let base = format!("par[{}x{}]{}", programs.len(), chunk, vec_mark(&refs));
                if gather.is_some() {
                    format!("{base}+gather")
                } else {
                    base
                }
            }
            Step::Exchange { mu, .. } => format!("exchange(mu={mu})"),
            Step::ScaleAll(_) => "scale".to_string(),
        }
    }
}

/// A compiled transform.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Transform size.
    pub n: usize,
    /// Thread count the parallel schedule targets (1 = sequential).
    pub threads: usize,
    /// Cache-line length in elements (µ) the plan was generated for.
    pub mu: usize,
    /// Lane width ν of the short-vector backend the plan's kernel stages
    /// were marked for (1 = scalar; set from the formula's `vec(ν)` tag
    /// when at least one stage passed the alignment preconditions).
    pub vec_width: usize,
    /// Process count q of the multi-process backend the plan was tagged
    /// for (1 = single process; set from the formula's `dist(q)` tag).
    /// Recorded intent only — the actual shard geometry is computed from
    /// the fused steps by [`crate::shard::shard_plan`].
    pub dist_procs: usize,
    /// The synchronization-delimited steps, in execution order.
    pub steps: Vec<Step>,
}

impl Plan {
    /// Compile a formula. The formula must be fully expanded (codelet-size
    /// `DFT` leaves only). `threads` is the worker count the parallel
    /// schedule assumes; pass 1 for sequential formulas.
    pub fn from_formula(f: &Spl, threads: usize, mu: usize) -> Result<Plan, LowerError> {
        let f = f.normalized();
        let n = f.dim();
        let mut steps = Vec::new();
        if has_parallel_construct(&f) {
            push_steps(&f, &mut steps)?;
        } else {
            // Purely sequential formula: lower the whole thing into one
            // fused program so every permutation and diagonal merges into
            // a compute loop (no standalone data passes).
            let prog = fuse(lower_seq(&f)?);
            if !prog.stages.is_empty() {
                steps.push(Step::Seq(prog));
            }
        }
        let steps = merge_par_steps(steps);
        let mut plan = Plan {
            n,
            threads: threads.max(1),
            mu: mu.max(1),
            vec_width: 1,
            dist_procs: f.dist_procs(),
            steps,
        };
        // Honor the widest vec(ν) tag after fusion settled the final loop
        // nests: qualifying stages switch to the ν-lane path, the rest
        // stay scalar (partial vectorization is the normal case).
        let nu = f.vec_width();
        if nu > 1 {
            let _ = crate::vectorize::vectorize_plan(&mut plan, nu);
        }
        Ok(plan)
    }

    /// Total real flops of one execution.
    pub fn flops(&self) -> u64 {
        self.steps.iter().map(|s| s.flops(self.n)).sum()
    }

    /// Flops executed inside vector-marked kernel stages (a subset of
    /// [`flops`](Self::flops)). Cost models use this to credit ν-lane
    /// throughput to exactly the stages the vectorize pass proved
    /// aligned, rather than to the whole plan.
    pub fn vec_flops(&self) -> u64 {
        fn prog(p: &LocalProgram) -> u64 {
            p.stages
                .iter()
                .filter_map(|s| match s {
                    LocalStage::Kernel(k) if k.vec_width > 1 => Some(k.flops()),
                    _ => None,
                })
                .sum()
        }
        self.steps
            .iter()
            .map(|s| match s {
                Step::Seq(p) => prog(p),
                Step::Par { programs, .. } => programs.iter().map(prog).sum(),
                Step::Exchange { .. } | Step::ScaleAll(_) => 0,
            })
            .sum()
    }

    /// Merge every `Exchange` step into the immediately following `Par`
    /// step as a direct global gather — the cross-boundary half of the
    /// paper's loop merging: `P ⊗̄ I_µ` permutations are "not performed
    /// explicitly, but folded with adjacent computation" (§3.1). Removes
    /// one barrier and one full data pass per fused exchange.
    pub fn fuse_exchanges(mut self) -> Plan {
        let mut out: Vec<Step> = Vec::with_capacity(self.steps.len());
        let mut pending: Option<Arc<Vec<u32>>> = None;
        for step in self.steps.drain(..) {
            match (pending.take(), step) {
                (None, Step::Exchange { table, mu: _ }) => pending = Some(table),
                (
                    Some(table),
                    Step::Par {
                        chunk,
                        programs,
                        gather: None,
                    },
                ) => out.push(Step::Par {
                    chunk,
                    programs,
                    gather: Some(table),
                }),
                (Some(prev), Step::Exchange { table, mu }) => {
                    // Two exchanges in a row: compose, keep pending.
                    let composed: Vec<u32> = table.iter().map(|&i| prev[i as usize]).collect();
                    pending = Some(Arc::new(composed));
                    let _ = mu;
                }
                (Some(table), other) => {
                    // Cannot fuse into this step: emit the exchange as is.
                    out.push(Step::Exchange { table, mu: self.mu });
                    out.push(other);
                }
                (None, other) => out.push(other),
            }
        }
        if let Some(table) = pending {
            out.push(Step::Exchange { table, mu: self.mu });
        }
        Plan { steps: out, ..self }
    }

    /// Number of synchronization points (barriers) per execution.
    pub fn barriers(&self) -> usize {
        self.steps.len()
    }

    /// Largest chunk dimension any thread needs as private scratch.
    pub fn max_local_dim(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Seq(p) => p.dim,
                Step::Par { chunk, .. } => *chunk,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Reference sequential execution (single thread, same schedule).
    pub fn execute(&self, x: &[Cplx]) -> Vec<Cplx> {
        let mut out = vec![Cplx::ZERO; self.n];
        self.execute_into(x, &mut out, &mut PlanWorkspace::default());
        out
    }

    /// Reference sequential execution into a caller-owned output slice,
    /// reusing `ws` across calls. This is the allocation-free core of
    /// [`execute`](Self::execute) and the per-thread inner loop of the
    /// batch executor: re-running the same plan over many inputs touches
    /// only the workspace buffers, so repeated transforms pay no
    /// per-call allocation. Identical arithmetic to `execute` (both run
    /// this code), so outputs are bitwise equal.
    pub fn execute_into(&self, x: &[Cplx], out: &mut [Cplx], ws: &mut PlanWorkspace) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        ws.prepare(self);
        ws.a[..self.n].copy_from_slice(x);
        self.execute_tail_into(0, out, ws);
    }

    /// Run `steps[start..]` with the current intermediate values already
    /// staged in the workspace ping-pong buffer ([`PlanWorkspace::
    /// stage_buffer`]), writing the final result to `out`. With
    /// `start = 0` this is exactly [`execute_into`](Self::execute_into)
    /// (which calls it); the dist backend uses `start > 0` to finish a
    /// plan whose sharded prefix ran out of process.
    pub fn execute_tail_into(&self, start: usize, out: &mut [Cplx], ws: &mut PlanWorkspace) {
        assert_eq!(out.len(), self.n, "output length mismatch");
        assert!(start <= self.steps.len(), "tail start out of range");
        ws.prepare(self);
        // Exact-length views: the workspace may be sized for a larger
        // plan, but programs assert on their buffer dimensions.
        let mut a: &mut [Cplx] = &mut ws.a[..self.n];
        let mut b: &mut [Cplx] = &mut ws.b[..self.n];
        let tmp = &mut ws.tmp;
        let scratch = &mut ws.scratch;
        for step in &self.steps[start..] {
            match step {
                Step::Seq(p) => p.run(a, b, tmp, scratch),
                Step::Par {
                    chunk,
                    programs,
                    gather,
                } => {
                    for (c, prog) in programs.iter().enumerate() {
                        let s = c * chunk;
                        let view = match gather {
                            Some(g) => crate::stage::SrcView::Gathered {
                                buf: a,
                                gather: g,
                                off: s,
                            },
                            None => crate::stage::SrcView::Local(&a[s..s + chunk]),
                        };
                        prog.run_view(view, &mut b[s..s + chunk], &mut tmp[..*chunk], scratch);
                    }
                }
                Step::Exchange { table, .. } => {
                    for (i, &s) in table.iter().enumerate() {
                        b[i] = a[s as usize];
                    }
                }
                Step::ScaleAll(w) => {
                    for i in 0..self.n {
                        b[i] = a[i] * w[i];
                    }
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        out.copy_from_slice(a);
    }

    /// Replay the parallel execution schedule into a [`MemHook`]: which
    /// thread touches which element of which buffer, in step order, with
    /// a barrier after every step. No values are computed — all access
    /// patterns are static.
    pub fn run_traced(&self, hook: &mut dyn MemHook) {
        let (mut src, mut dst) = (Region::BufA, Region::BufB);
        for step in &self.steps {
            match step {
                Step::Seq(p) => trace_local(p, 0, src, 0, dst, 0, hook),
                Step::Par {
                    chunk,
                    programs,
                    gather,
                } => {
                    for (c, prog) in programs.iter().enumerate() {
                        let tid = c % self.threads;
                        trace_local_gathered(
                            prog,
                            tid,
                            src,
                            c * chunk,
                            dst,
                            c * chunk,
                            gather.as_ref().map(|g| g.as_slice()),
                            hook,
                        );
                    }
                }
                Step::Exchange { table, mu } => {
                    let blocks = self.n / mu;
                    for tid in 0..self.threads {
                        let (lo, hi) = share(blocks, self.threads, tid);
                        for blk in lo..hi {
                            for e in blk * mu..(blk + 1) * mu {
                                hook.read(tid, src, table[e] as usize);
                                hook.write(tid, dst, e);
                            }
                        }
                    }
                }
                Step::ScaleAll(_) => {
                    let blocks = self.n / self.mu;
                    for tid in 0..self.threads {
                        let (lo, hi) = share(blocks, self.threads, tid);
                        for e in lo * self.mu..hi * self.mu {
                            hook.read(tid, src, e);
                            hook.write(tid, dst, e);
                        }
                        hook.flops(tid, 6 * ((hi - lo) * self.mu) as u64);
                    }
                }
            }
            hook.barrier();
            std::mem::swap(&mut src, &mut dst);
        }
    }
}

/// Reusable buffers for repeated sequential executions
/// ([`Plan::execute_into`]): the ping-pong pair, the per-chunk temporary,
/// and the codelet scratch. Sized lazily to the largest plan seen, so
/// one workspace serves any mix of plans.
#[derive(Default)]
pub struct PlanWorkspace {
    a: Vec<Cplx>,
    b: Vec<Cplx>,
    tmp: Vec<Cplx>,
    scratch: Scratch,
}

impl PlanWorkspace {
    /// Prepare for `plan` and expose the ping-pong input buffer. Callers
    /// that produce a mid-plan state out of band (the dist backend's
    /// shard gather) write the intermediate vector here, then finish
    /// with [`Plan::execute_tail_into`].
    pub fn stage_buffer(&mut self, plan: &Plan) -> &mut [Cplx] {
        self.prepare(plan);
        &mut self.a[..plan.n]
    }

    /// Grow the buffers to fit `plan` (never shrinks).
    fn prepare(&mut self, plan: &Plan) {
        if self.a.len() < plan.n {
            self.a.resize(plan.n, Cplx::ZERO);
            self.b.resize(plan.n, Cplx::ZERO);
        }
        let local = plan.max_local_dim().max(1);
        if self.tmp.len() < local {
            self.tmp.resize(local, Cplx::ZERO);
        }
    }
}

/// A plan validator: `Err(description)` when `plan` violates the
/// executor's soundness contract (races, out-of-bounds accesses, or a
/// dataflow-certification failure).
pub type PlanValidator = fn(&Plan) -> Result<(), String>;

static VALIDATOR: OnceLock<PlanValidator> = OnceLock::new();

/// Install the process-wide plan validator. The parallel executor's
/// `unsafe` shared-buffer access is sound only for plans whose steps
/// write thread-disjoint, in-bounds index sets. That property is checked
/// statically by the `spiral-verify` crate, which sits *above* this one
/// in the dependency graph — so the check is wired in through this
/// registry instead of a direct call: a downstream crate installs a
/// validator once (e.g. `spiral_verify::install_executor_guard()`), and
/// debug builds of [`crate::ParallelExecutor`] then run it on every plan
/// before touching the shared buffers. The first installation wins;
/// later calls are ignored (the registry is write-once).
pub fn install_validator(v: PlanValidator) {
    let _ = VALIDATOR.set(v);
}

/// The installed validator, if any.
pub fn validator() -> Option<PlanValidator> {
    VALIDATOR.get().copied()
}

/// Contiguous share `[lo, hi)` of `total` items for thread `tid` of `p`.
pub(crate) fn share(total: usize, p: usize, tid: usize) -> (usize, usize) {
    let base = total / p;
    let rem = total % p;
    let lo = tid * base + tid.min(rem);
    let hi = lo + base + usize::from(tid < rem);
    (lo, hi)
}

fn trace_local(
    prog: &LocalProgram,
    tid: usize,
    src: Region,
    src_off: usize,
    dst: Region,
    dst_off: usize,
    hook: &mut dyn MemHook,
) {
    trace_local_gathered(prog, tid, src, src_off, dst, dst_off, None, hook);
}

#[allow(clippy::too_many_arguments)]
fn trace_local_gathered(
    prog: &LocalProgram,
    tid: usize,
    src: Region,
    src_off: usize,
    dst: Region,
    dst_off: usize,
    gather: Option<&[u32]>,
    hook: &mut dyn MemHook,
) {
    // With a fused gather, the first stage reads the *global* source
    // buffer at gather[src_off + local_idx]; without, it reads its own
    // chunk at src_off + local_idx.
    let src_read = |idx: usize| -> usize {
        match gather {
            Some(g) => g[src_off + idx] as usize,
            None => src_off + idx,
        }
    };
    let l = prog.stages.len();
    if l == 0 {
        for i in 0..prog.dim {
            hook.read(tid, src, src_read(i));
            hook.write(tid, dst, dst_off + i);
        }
        return;
    }
    let tmp = Region::Tmp(tid);
    for (k, stage) in prog.stages.iter().enumerate() {
        let to_dst = (l - 1 - k).is_multiple_of(2);
        let first = k == 0;
        let (in_r, in_off) = if first {
            (src, 0) // offset applied via src_read
        } else if to_dst {
            (tmp, 0)
        } else {
            (dst, dst_off)
        };
        let (out_r, out_off) = if to_dst { (dst, dst_off) } else { (tmp, 0) };
        stage.trace(prog.dim, |is_write, idx| {
            if is_write {
                hook.write(tid, out_r, out_off + idx);
            } else if first {
                hook.read(tid, in_r, src_read(idx));
            } else {
                hook.read(tid, in_r, in_off + idx);
            }
        });
        hook.flops(tid, stage.flops(prog.dim));
    }
}

/// Merge adjacent `Par` steps with identical chunking: their chunk
/// programs concatenate and re-fuse, removing a barrier and (after
/// fusion) whole data passes. This is the step-level face of the paper's
/// loop merging — e.g. in formula (14) the local stride permutation
/// `I_p ⊗∥ L` and the twiddle `⊕∥ D_i` merge into the adjacent compute
/// stages.
fn merge_par_steps(steps: Vec<Step>) -> Vec<Step> {
    let mut out: Vec<Step> = Vec::new();
    for s in steps {
        let merged = match (out.last_mut(), &s) {
            (
                Some(Step::Par {
                    chunk: c1,
                    programs: p1,
                    gather: _,
                }),
                Step::Par {
                    chunk: c2,
                    programs: p2,
                    gather: None,
                },
            ) if *c1 == *c2 && p1.len() == p2.len() => {
                for (a, b) in p1.iter_mut().zip(p2) {
                    let mut combined = a.clone();
                    combined.stages.extend(b.stages.iter().cloned());
                    *a = fuse(combined);
                }
                true
            }
            _ => false,
        };
        if !merged {
            out.push(s);
        }
    }
    out
}

fn has_parallel_construct(f: &Spl) -> bool {
    matches!(
        f,
        Spl::TensorPar { .. } | Spl::DirectSumPar(_) | Spl::PermBar { .. }
    ) || f.children().iter().any(|c| has_parallel_construct(c))
}

fn push_steps(f: &Spl, steps: &mut Vec<Step>) -> Result<(), LowerError> {
    match f {
        Spl::Compose(fs) => {
            for factor in fs.iter().rev() {
                push_steps(factor, steps)?;
            }
            Ok(())
        }
        Spl::I(_) => Ok(()),
        Spl::TensorPar { p, a } => {
            let prog = fuse(lower_seq(a)?);
            steps.push(Step::Par {
                chunk: a.dim(),
                programs: vec![prog; *p],
                gather: None,
            });
            Ok(())
        }
        Spl::DirectSumPar(blocks) => {
            let d0 = blocks[0].dim();
            if blocks.iter().any(|b| b.dim() != d0) {
                return Err(LowerError(
                    "parallel direct sum with unequal blocks".to_string(),
                ));
            }
            let programs: Result<Vec<_>, _> =
                blocks.iter().map(|b| lower_seq(b).map(fuse)).collect();
            steps.push(Step::Par {
                chunk: d0,
                programs: programs?,
                gather: None,
            });
            Ok(())
        }
        Spl::PermBar { perm, mu } => {
            let full = Perm::TensorId(Box::new(perm.clone()), *mu);
            let table: Vec<u32> = full.table().iter().map(|&v| crate::u32_idx(v)).collect();
            steps.push(Step::Exchange {
                table: Arc::new(table),
                mu: *mu,
            });
            Ok(())
        }
        Spl::Perm(p) => {
            let table: Vec<u32> = p.table().iter().map(|&v| crate::u32_idx(v)).collect();
            steps.push(Step::Exchange {
                table: Arc::new(table),
                mu: 1,
            });
            Ok(())
        }
        Spl::Diag(d) => {
            steps.push(Step::ScaleAll(Arc::new(d.entries())));
            Ok(())
        }
        Spl::Vec { a, .. } | Spl::Dist { a, .. } => push_steps(a, steps),
        other => {
            let prog = fuse(lower_seq(other)?);
            if !prog.stages.is_empty() {
                steps.push(Step::Seq(prog));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::CountingHook;
    use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(1.0 + j as f64, -0.5 * j as f64))
            .collect()
    }

    #[test]
    fn sequential_plan_computes_dft() {
        for n in [8usize, 16, 32, 64, 128, 24, 48] {
            let f = sequential_dft(n, 8);
            let plan = Plan::from_formula(&f, 1, 4).unwrap();
            let x = ramp(n);
            assert_slices_close(&plan.execute(&x), &dft(n).eval(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn parallel_plan_computes_dft() {
        for (n, p) in [(64usize, 2usize), (1024, 4), (256, 2), (256, 4), (1024, 2)] {
            let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
            let plan = Plan::from_formula(&f, p, 4).unwrap();
            let x = ramp(n);
            assert_slices_close(&plan.execute(&x), &dft(n).eval(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn parallel_plan_structure_matches_formula_14() {
        // 7 factors of (14): 3 `P ⊗̄ I_µ` exchanges stay explicit; the
        // 4 parallel factors (2 compute, twiddle, local stride perm)
        // merge into 2 fused parallel compute steps.
        let f = multicore_dft_expanded(64, 2, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 2, 4).unwrap();
        let pars = plan
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Par { .. }))
            .count();
        let exch = plan
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Exchange { .. }))
            .count();
        assert_eq!(exch, 3, "three P ⊗̄ I_µ exchanges");
        assert_eq!(pars, 2, "parallel factors merged into two compute steps");
        assert_eq!(plan.steps.len(), 5);
        assert!(
            plan.steps.iter().all(|s| !matches!(s, Step::Seq(_))),
            "no sequential step in a fully optimized plan"
        );
    }

    #[test]
    fn exchanges_are_line_granular() {
        let mu = 4;
        let f = multicore_dft_expanded(256, 2, mu, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 2, mu).unwrap();
        for step in &plan.steps {
            if let Step::Exchange { table, mu: m } = step {
                assert_eq!(*m, mu);
                // Whole lines move together.
                for blk in 0..table.len() / mu {
                    let base = table[blk * mu];
                    assert_eq!(base as usize % mu, 0);
                    for t in 1..mu {
                        assert_eq!(table[blk * mu + t], base + crate::u32_idx(t));
                    }
                }
            }
        }
    }

    #[test]
    fn flops_match_formula_accounting() {
        let f = sequential_dft(64, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        assert!(plan.flops() > 0);
        // 5 n log n is the nominal FFT cost; generated code with fused
        // twiddles stays within a small factor.
        let nominal = 5.0 * 64.0 * 6.0;
        let actual = plan.flops() as f64;
        assert!(
            actual < 4.0 * nominal,
            "flops {actual} vs nominal {nominal}"
        );
    }

    #[test]
    fn traced_execution_covers_all_data_and_barriers() {
        let p = 2;
        let n = 64;
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, p, 4).unwrap();
        let mut hook = CountingHook::default();
        plan.run_traced(&mut hook);
        assert_eq!(usize::try_from(hook.barriers).unwrap(), plan.steps.len());
        assert!(hook.reads >= n as u64 * plan.steps.len() as u64 / 2);
        assert_eq!(hook.flops, plan.flops());
        // Work split evenly between both threads.
        let w0 = hook.per_tid_flops.get(&0).copied().unwrap_or(0);
        let w1 = hook.per_tid_flops.get(&1).copied().unwrap_or(0);
        assert_eq!(w0, w1, "unbalanced trace: {w0} vs {w1}");
    }

    #[test]
    fn fuse_exchanges_preserves_semantics() {
        for (n, p) in [(64usize, 2usize), (256, 2), (256, 4), (1024, 2)] {
            let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
            let plan = Plan::from_formula(&f, p, 4).unwrap();
            let fused = plan.clone().fuse_exchanges();
            let x = ramp(n);
            assert_slices_close(&fused.execute(&x), &plan.execute(&x), 1e-12);
        }
    }

    #[test]
    fn fuse_exchanges_removes_barriers() {
        // Formula (14): [Exch, Par, Exch, Par, Exch] → [Par+g, Par+g, Exch]
        let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 2, 4).unwrap();
        assert_eq!(plan.steps.len(), 5);
        let fused = plan.fuse_exchanges();
        assert_eq!(
            fused.steps.len(),
            3,
            "expected 2 fused Par + trailing Exchange"
        );
        let gathered = fused
            .steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Step::Par {
                        gather: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(gathered, 2);
        assert!(matches!(fused.steps.last(), Some(Step::Exchange { .. })));
    }

    #[test]
    fn fused_trace_covers_everything() {
        let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 2, 4).unwrap().fuse_exchanges();
        let mut hook = CountingHook::default();
        plan.run_traced(&mut hook);
        assert_eq!(usize::try_from(hook.barriers).unwrap(), plan.steps.len());
        assert_eq!(hook.flops, plan.flops());
        let w0 = hook.per_tid_flops.get(&0).copied().unwrap_or(0);
        let w1 = hook.per_tid_flops.get(&1).copied().unwrap_or(0);
        assert_eq!(w0, w1);
    }

    #[test]
    fn share_splits_exactly() {
        for total in [0usize, 1, 7, 64, 100] {
            for p in [1usize, 2, 3, 4] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for tid in 0..p {
                    let (lo, hi) = share(total, p, tid);
                    assert_eq!(lo, prev_hi);
                    prev_hi = hi;
                    covered += hi - lo;
                }
                assert_eq!(covered, total);
                assert_eq!(prev_hi, total);
            }
        }
    }

    #[test]
    fn empty_and_identity_formulas() {
        let plan = Plan::from_formula(&spiral_spl::builder::i(8), 1, 4).unwrap();
        let x = ramp(8);
        assert_slices_close(&plan.execute(&x), &x, 0.0);
        assert_eq!(plan.barriers(), 0);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn execute_checks_input_length() {
        let f = sequential_dft(16, 4);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        plan.execute(&ramp(8));
    }
}
