//! Portable short-vector lane arithmetic for the `vec(ν)` backend.
//!
//! `std::simd` is nightly-only, so the lane types here are fixed-size
//! `Cplx` arrays with `#[inline(always)]` elementwise operations: under
//! the x86_64 SSE2 baseline (and AVX when the host has it) LLVM lowers
//! these loops to packed vector instructions, which is exactly the
//! interleaved-complex short-vector code the paper's §3.2 composition
//! with the short-vector FFT calls for. ν complex lanes occupy 2ν
//! doubles; a lane group is ν *consecutive* complex elements, matching
//! the contiguous innermost lane loop that `· ⊗ I_ν` lowering produces.
//!
//! The backend degrades gracefully: hosts without a useful vector unit
//! (or builds with the `force-scalar` feature) report width 1 and every
//! `vec(ν)`-tagged stage executes through the scalar interpreter path,
//! bit-identical to an untagged plan.

use spiral_spl::cplx::Cplx;

/// Widest lane count any codelet kernel supports (f64x4-style: four
/// complex lanes = 8 doubles = one AVX-512 register pair / two AVX
/// registers per component).
pub const MAX_LANES: usize = 4;

/// Lane widths worth offering as tuner candidates, narrowest first.
pub const CANDIDATE_WIDTHS: [usize; 2] = [2, 4];

/// The SIMD lane width (in complex elements) the running host supports,
/// detected at runtime. Returns 1 when the `force-scalar` feature is on
/// or the host has no vector unit the backend targets — every caller
/// must treat 1 as "scalar only". The raw hardware fact comes from
/// [`spiral_smp::topology::simd_width`] (the same detector every host
/// fingerprint records), capped at [`MAX_LANES`], the widest kernel this
/// backend implements.
pub fn detected_simd_width() -> usize {
    if cfg!(feature = "force-scalar") {
        return 1;
    }
    spiral_smp::topology::simd_width().min(MAX_LANES)
}

/// ν complex lanes processed as one unit — the "vector register" of the
/// portable backend.
#[derive(Copy, Clone, Debug)]
#[repr(C)]
pub struct Lanes<const NU: usize>(pub [Cplx; NU]);

impl<const NU: usize> Lanes<NU> {
    /// All-zero lanes.
    pub const ZERO: Lanes<NU> = Lanes([Cplx::ZERO; NU]);

    /// Load ν consecutive complex elements.
    #[inline(always)]
    pub fn load(src: &[Cplx]) -> Lanes<NU> {
        let mut v = [Cplx::ZERO; NU];
        v.copy_from_slice(&src[..NU]);
        Lanes(v)
    }

    /// Store the lanes to ν consecutive complex elements.
    #[inline(always)]
    pub fn store(self, dst: &mut [Cplx]) {
        dst[..NU].copy_from_slice(&self.0);
    }

    /// Every lane multiplied by the same complex constant (the twiddle of
    /// a straight-line kernel is uniform across lanes).
    #[inline(always)]
    pub fn mul_const(self, c: Cplx) -> Lanes<NU> {
        let mut v = self.0;
        for x in &mut v {
            *x *= c;
        }
        Lanes(v)
    }

    /// Lane-wise complex multiplication (per-lane twiddle application).
    #[inline(always)]
    pub fn mul_lanes(self, rhs: Lanes<NU>) -> Lanes<NU> {
        let mut v = self.0;
        for (x, y) in v.iter_mut().zip(rhs.0) {
            *x *= y;
        }
        Lanes(v)
    }

    /// Lane-wise rotation by `i`.
    #[inline(always)]
    pub fn mul_i(self) -> Lanes<NU> {
        let mut v = self.0;
        for x in &mut v {
            *x = x.mul_i();
        }
        Lanes(v)
    }

    /// Lane-wise rotation by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Lanes<NU> {
        let mut v = self.0;
        for x in &mut v {
            *x = x.mul_neg_i();
        }
        Lanes(v)
    }
}

/// Lane-wise addition.
impl<const NU: usize> std::ops::Add for Lanes<NU> {
    type Output = Lanes<NU>;
    #[inline(always)]
    fn add(self, rhs: Lanes<NU>) -> Lanes<NU> {
        let mut v = self.0;
        for (x, y) in v.iter_mut().zip(rhs.0) {
            *x += y;
        }
        Lanes(v)
    }
}

/// Lane-wise subtraction.
impl<const NU: usize> std::ops::Sub for Lanes<NU> {
    type Output = Lanes<NU>;
    #[inline(always)]
    fn sub(self, rhs: Lanes<NU>) -> Lanes<NU> {
        let mut v = self.0;
        for (x, y) in v.iter_mut().zip(rhs.0) {
            *x -= y;
        }
        Lanes(v)
    }
}

/// Lane-wise negation.
impl<const NU: usize> std::ops::Neg for Lanes<NU> {
    type Output = Lanes<NU>;
    #[inline(always)]
    fn neg(self) -> Lanes<NU> {
        let mut v = self.0;
        for x in &mut v {
            *x = -*x;
        }
        Lanes(v)
    }
}

/// Re-key a scalar per-slot twiddle table (`[flat·c + t]`) into the
/// lane-grouped layout the vector path reads contiguously:
/// `out[g·c·ν + t·ν + l] = w[(g·ν + l)·c + t]` — the lane shuffle that
/// turns ν strided scalar lookups into one contiguous vector load.
/// `w.len()` must be a multiple of `c·ν`.
pub fn lane_shuffle_twiddle(w: &[Cplx], c: usize, nu: usize) -> Vec<Cplx> {
    debug_assert!(w.len().is_multiple_of(c * nu));
    let groups = w.len() / (c * nu);
    let mut out = Vec::with_capacity(w.len());
    for g in 0..groups {
        for t in 0..c {
            for l in 0..nu {
                out.push(w[(g * nu + l) * c + t]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_width_is_sane() {
        let w = detected_simd_width();
        assert!(w == 1 || w == 2 || w == 4, "width {w}");
        assert!(w <= MAX_LANES);
        if cfg!(feature = "force-scalar") {
            assert_eq!(w, 1, "force-scalar must report scalar width");
        }
    }

    #[test]
    fn lane_ops_match_scalar() {
        let a = Lanes::<4>([
            Cplx::new(1.0, 2.0),
            Cplx::new(-0.5, 0.25),
            Cplx::new(3.0, -1.0),
            Cplx::new(0.0, 1.0),
        ]);
        let b = Lanes::<4>([
            Cplx::new(2.0, -1.0),
            Cplx::new(1.5, 1.5),
            Cplx::new(-1.0, -1.0),
            Cplx::new(4.0, 0.5),
        ]);
        for l in 0..4 {
            assert!((a + b).0[l].approx_eq(a.0[l] + b.0[l], 0.0));
            assert!((a - b).0[l].approx_eq(a.0[l] - b.0[l], 0.0));
            assert!((-a).0[l].approx_eq(-a.0[l], 0.0));
            assert!(a.mul_lanes(b).0[l].approx_eq(a.0[l] * b.0[l], 0.0));
            assert!(a.mul_i().0[l].approx_eq(a.0[l].mul_i(), 0.0));
            assert!(a.mul_neg_i().0[l].approx_eq(a.0[l].mul_neg_i(), 0.0));
            let c = Cplx::new(0.7, -0.3);
            assert!(a.mul_const(c).0[l].approx_eq(a.0[l] * c, 0.0));
        }
    }

    #[test]
    fn lane_shuffle_roundtrips() {
        let c = 3;
        let nu = 2;
        let w: Vec<Cplx> = (0..c * nu * 4).map(|k| Cplx::real(k as f64)).collect();
        let s = lane_shuffle_twiddle(&w, c, nu);
        assert_eq!(s.len(), w.len());
        for g in 0..4 {
            for t in 0..c {
                for l in 0..nu {
                    assert!(s[g * c * nu + t * nu + l].approx_eq(w[(g * nu + l) * c + t], 0.0));
                }
            }
        }
    }
}
