//! C source emission — the paper's implementation-level backend.
//!
//! Spiral emits C with OpenMP pragmas or explicit pthreads calls
//! (paper §3.1, "Generating multithreaded code"). This module renders a
//! compiled [`Plan`] as a self-contained C translation unit in either
//! flavor. Complex data is interleaved `double` (re, im), matching the
//! runtime layout, so µ in elements equals the paper's convention.
//!
//! The emitted code follows the same schedule as the Rust executor: one
//! statically partitioned portion per thread per step, one barrier per
//! step.

use crate::codelet::dag::{Dag, Node};
use crate::plan::{Plan, Step};
use crate::stage::{KernelStage, LocalProgram, LocalStage};
use spiral_spl::cplx::Cplx;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Threading interface of the emitted code.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CFlavor {
    /// `#pragma omp parallel for` on every parallel step.
    OpenMp,
    /// Explicit persistent pthreads with a barrier per step.
    Pthreads,
}

/// Render `plan` as a C translation unit exposing
/// `void spiral_dft_N(const double *x, double *y)`.
pub fn emit_c(plan: &Plan, flavor: CFlavor) -> String {
    let mut e = Emitter::new(plan, flavor);
    e.emit();
    e.out
}

struct Emitter<'a> {
    plan: &'a Plan,
    flavor: CFlavor,
    out: String,
    codelets: BTreeMap<String, String>, // name -> definition
    tables: String,
}

impl<'a> Emitter<'a> {
    fn new(plan: &'a Plan, flavor: CFlavor) -> Self {
        Emitter {
            plan,
            flavor,
            out: String::new(),
            codelets: BTreeMap::new(),
            tables: String::new(),
        }
    }

    fn emit(&mut self) {
        let n = self.plan.n;
        let p = self.plan.threads;
        let mut body = String::new();
        for (si, step) in self.plan.steps.iter().enumerate() {
            let _ = write!(body, "\n    /* step {si}: {} */\n", step_desc(step));
            body.push_str(&self.emit_step(si, step));
        }

        let vec_note = if self.plan.vec_width > 1 {
            format!(
                ", vec({}) stages carry explicit vectorization pragmas",
                self.plan.vec_width
            )
        } else {
            String::new()
        };
        let header = format!(
            "/* Generated DFT_{n} for p = {p}, mu = {mu} — spiral-fft-rs C backend.\n\
             * Schedule: {steps} steps, one barrier per step{vec_note}.\n */\n\
             #include <string.h>\n{inc}\n\
             #define N {n}\n#define NTHREADS {p}\n\n",
            mu = self.plan.mu,
            steps = self.plan.steps.len(),
            inc = match self.flavor {
                CFlavor::OpenMp => "#include <omp.h>",
                CFlavor::Pthreads => "#include <pthread.h>",
            },
        );
        self.out.push_str(&header);

        // Buffers.
        let tmp_dim = self.plan.max_local_dim().max(1);
        let _ = write!(
            self.out,
            "static double bufA[2*N] __attribute__((aligned(64)));\n\
             static double bufB[2*N] __attribute__((aligned(64)));\n\
             static double tmp_buf[NTHREADS][2*{tmp_dim}] __attribute__((aligned(64)));\n\n"
        );

        // Tables and codelets were accumulated while emitting steps; emit
        // the steps first into a scratch string, then splice declarations.
        let mut decls = String::new();
        decls.push_str(&self.tables);
        for def in self.codelets.values() {
            decls.push_str(def);
        }
        self.out.push_str(&decls);

        match self.flavor {
            CFlavor::OpenMp => {
                let _ = write!(
                    self.out,
                    "\nvoid spiral_dft_{n}(const double *x, double *y) {{\n\
                     \x20   memcpy(bufA, x, sizeof(bufA));\n\
                     {body}\
                     \x20   memcpy(y, {final_buf}, sizeof(bufA));\n\
                     }}\n",
                    final_buf = if self.plan.steps.len().is_multiple_of(2) {
                        "bufA"
                    } else {
                        "bufB"
                    },
                );
            }
            CFlavor::Pthreads => {
                let _ = write!(
                    self.out,
                    "\nstatic pthread_barrier_t bar;\n\n\
                     static void run_steps(int tid) {{\n\
                     {body}\
                     }}\n\n\
                     static void *worker(void *arg) {{\n\
                     \x20   run_steps((int)(long)arg);\n\
                     \x20   return 0;\n\
                     }}\n\n\
                     void spiral_dft_{n}(const double *x, double *y) {{\n\
                     \x20   pthread_t th[NTHREADS];\n\
                     \x20   memcpy(bufA, x, sizeof(bufA));\n\
                     \x20   pthread_barrier_init(&bar, 0, NTHREADS);\n\
                     \x20   for (long t = 1; t < NTHREADS; t++)\n\
                     \x20       pthread_create(&th[t], 0, worker, (void *)t);\n\
                     \x20   run_steps(0);\n\
                     \x20   for (long t = 1; t < NTHREADS; t++)\n\
                     \x20       pthread_join(th[t], 0);\n\
                     \x20   pthread_barrier_destroy(&bar);\n\
                     \x20   memcpy(y, {final_buf}, sizeof(bufA));\n\
                     }}\n",
                    final_buf = if self.plan.steps.len().is_multiple_of(2) {
                        "bufA"
                    } else {
                        "bufB"
                    },
                );
            }
        }
    }

    /// Emit the code of one step (into the step body string).
    fn emit_step(&mut self, si: usize, step: &Step) -> String {
        let (src, dst) = if si.is_multiple_of(2) {
            ("bufA", "bufB")
        } else {
            ("bufB", "bufA")
        };
        let mut s = String::new();
        match step {
            Step::Seq(prog) => {
                let inner = self.emit_local(si, 0, prog, src, dst, "0", None);
                match self.flavor {
                    CFlavor::OpenMp => s.push_str(&inner),
                    CFlavor::Pthreads => {
                        let _ = write!(s, "    if (tid == 0) {{\n{inner}    }}\n");
                    }
                }
            }
            Step::Par {
                chunk,
                programs,
                gather,
            } => {
                // Chunks are identical in the homogeneous case; emit one
                // body indexed by the chunk variable. Heterogeneous
                // (⊕∥ D_i) chunks differ only in tables, which we emit
                // as one concatenated table indexed globally.
                let gname = gather.as_ref().map(|g| {
                    let name = format!("pgather{si}");
                    self.emit_u32_table(&name, g);
                    name
                });
                match self.flavor {
                    CFlavor::OpenMp => {
                        let _ = write!(
                            s,
                            "    #pragma omp parallel for num_threads(NTHREADS) schedule(static)\n\
                             \x20   for (int c = 0; c < {np}; c++) {{\n",
                            np = programs.len()
                        );
                    }
                    CFlavor::Pthreads => {
                        let _ = writeln!(
                            s,
                            "    for (int c = tid; c < {np}; c += NTHREADS) {{",
                            np = programs.len()
                        );
                    }
                }
                let _ = writeln!(s, "        const int off = c * {chunk};");
                if homogeneous(programs) {
                    let body =
                        self.emit_local(si, 0, &programs[0], src, dst, "off", gname.as_deref());
                    s.push_str(&indent(&body, 1));
                } else {
                    for (c, prog) in programs.iter().enumerate() {
                        let body = self.emit_local(si, c, prog, src, dst, "off", gname.as_deref());
                        let _ = write!(
                            s,
                            "        if (c == {c}) {{\n{}        }}\n",
                            indent(&body, 2)
                        );
                    }
                }
                s.push_str("    }\n");
            }
            Step::Exchange { table, mu } => {
                let tname = format!("exch{si}_tbl");
                self.emit_u32_table(&tname, table);
                let blocks = self.plan.n / mu;
                match self.flavor {
                    CFlavor::OpenMp => {
                        let _ = write!(
                            s,
                            "    #pragma omp parallel for num_threads(NTHREADS) schedule(static)\n\
                             \x20   for (int b = 0; b < {blocks}; b++)\n"
                        );
                    }
                    CFlavor::Pthreads => {
                        let _ = writeln!(s, "    for (int b = tid; b < {blocks}; b += NTHREADS)");
                    }
                }
                let _ = write!(
                    s,
                    "        for (int e = 0; e < {mu}; e++) {{\n\
                     \x20           int i = b * {mu} + e;\n\
                     \x20           {dst}[2*i]   = {src}[2*{tname}[i]];\n\
                     \x20           {dst}[2*i+1] = {src}[2*{tname}[i]+1];\n\
                     \x20       }}\n"
                );
            }
            Step::ScaleAll(w) => {
                let tname = format!("scale{si}_tbl");
                self.emit_cplx_table(&tname, w);
                match self.flavor {
                    CFlavor::OpenMp => {
                        let _ = write!(
                            s,
                            "    #pragma omp parallel for num_threads(NTHREADS) schedule(static)\n\
                             \x20   for (int i = 0; i < N; i++) {{\n"
                        );
                    }
                    CFlavor::Pthreads => {
                        s.push_str("    for (int i = tid; i < N; i += NTHREADS) {\n");
                    }
                }
                let _ = write!(
                    s,
                    "        double re = {src}[2*i], im = {src}[2*i+1];\n\
                     \x20       {dst}[2*i]   = re * {tname}[2*i]   - im * {tname}[2*i+1];\n\
                     \x20       {dst}[2*i+1] = re * {tname}[2*i+1] + im * {tname}[2*i];\n\
                     \x20   }}\n"
                );
            }
        }
        if self.flavor == CFlavor::Pthreads {
            s.push_str("    pthread_barrier_wait(&bar);\n");
        }
        s
    }

    /// Emit a local program applied at offset `off_expr` within the
    /// global src/dst buffers, using the per-thread tmp for intermediates.
    #[allow(clippy::too_many_arguments)]
    fn emit_local(
        &mut self,
        si: usize,
        ci: usize,
        prog: &LocalProgram,
        src: &str,
        dst: &str,
        off_expr: &str,
        gather: Option<&str>,
    ) -> String {
        let mut s = String::new();
        let l = prog.stages.len();
        let tmp = match self.flavor {
            CFlavor::OpenMp => "tmp_buf[omp_get_thread_num()]",
            CFlavor::Pthreads => "tmp_buf[tid]",
        };
        if l == 0 {
            match gather {
                None => {
                    let _ = writeln!(
                        s,
                        "    memcpy({dst} + 2*({off_expr}), {src} + 2*({off_expr}), 2*{d}*sizeof(double));",
                        d = prog.dim
                    );
                }
                Some(g) => {
                    let _ = write!(
                        s,
                        "    for (int i = 0; i < {d}; i++) {{\n\
                         \x20       {dst}[2*(({off_expr})+i)]   = {src}[2*{g}[({off_expr})+i]];\n\
                         \x20       {dst}[2*(({off_expr})+i)+1] = {src}[2*{g}[({off_expr})+i]+1];\n\
                         \x20   }}\n",
                        d = prog.dim
                    );
                }
            }
            return s;
        }
        for (k, stage) in prog.stages.iter().enumerate() {
            let to_dst = (l - 1 - k).is_multiple_of(2);
            let (in_buf, in_off) = if k == 0 {
                (src, off_expr)
            } else if to_dst {
                (tmp, "0")
            } else {
                (dst, off_expr)
            };
            let (out_buf, out_off) = if to_dst { (dst, off_expr) } else { (tmp, "0") };
            let g = if k == 0 { gather } else { None };
            s.push_str(&self.emit_stage(
                si, ci, k, prog.dim, stage, in_buf, in_off, out_buf, out_off, g,
            ));
        }
        s
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_stage(
        &mut self,
        si: usize,
        ci: usize,
        k: usize,
        dim: usize,
        stage: &LocalStage,
        in_buf: &str,
        in_off: &str,
        out_buf: &str,
        out_off: &str,
        gather: Option<&str>,
    ) -> String {
        let tag = format!("s{si}c{ci}k{k}");
        let mut s = String::new();
        // Input index expression, optionally through the fused global
        // gather table.
        let src_idx = |e: String| -> String {
            match gather {
                Some(g) => format!("{g}[({in_off})+{e}]"),
                None => format!("(({in_off})+{e})"),
            }
        };
        match stage {
            LocalStage::Permute(t) => {
                let tname = format!("perm_{tag}");
                self.emit_u32_table(&tname, t);
                let idx = src_idx(format!("{tname}[i]"));
                let _ = write!(
                    s,
                    "    for (int i = 0; i < {dim}; i++) {{\n\
                     \x20       {out_buf}[2*(({out_off})+i)]   = {in_buf}[2*{idx}];\n\
                     \x20       {out_buf}[2*(({out_off})+i)+1] = {in_buf}[2*{idx}+1];\n\
                     \x20   }}\n"
                );
            }
            LocalStage::Scale(w) => {
                let tname = format!("scale_{tag}");
                self.emit_cplx_table(&tname, w);
                let idx = src_idx("i".to_string());
                let _ = write!(
                    s,
                    "    for (int i = 0; i < {dim}; i++) {{\n\
                     \x20       double re = {in_buf}[2*{idx}], im = {in_buf}[2*{idx}+1];\n\
                     \x20       {out_buf}[2*(({out_off})+i)]   = re * {tname}[2*i]   - im * {tname}[2*i+1];\n\
                     \x20       {out_buf}[2*(({out_off})+i)+1] = re * {tname}[2*i+1] + im * {tname}[2*i];\n\
                     \x20   }}\n"
                );
            }
            LocalStage::Kernel(ks) => {
                s.push_str(&self.emit_kernel(&tag, ks, in_buf, in_off, out_buf, out_off, gather));
            }
        }
        s
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_kernel(
        &mut self,
        tag: &str,
        ks: &KernelStage,
        in_buf: &str,
        in_off: &str,
        out_buf: &str,
        out_off: &str,
        gather: Option<&str>,
    ) -> String {
        let c = ks.codelet.size();
        let fname = self.codelet_fn(&ks.codelet.dag());
        let mut s = String::new();
        // ν-lane stages proved aligned by the vectorize pass: annotate
        // the per-butterfly gather/scatter loops so the C compiler keeps
        // the short-vector schedule the plan was tuned with.
        let simd_pragma = if ks.vec_width > 1 {
            let _ = writeln!(
                s,
                "    /* vec({nu}) kernel stage: {nu}-lane interleaved-complex butterflies */",
                nu = ks.vec_width
            );
            match self.flavor {
                CFlavor::OpenMp => format!("#pragma omp simd simdlen({})\n", ks.vec_width),
                CFlavor::Pthreads => "#pragma GCC ivdep\n".to_string(),
            }
        } else {
            String::new()
        };
        if let Some(m) = &ks.in_map {
            self.emit_u32_table(&format!("gmap_{tag}"), m);
        }
        if let Some(m) = &ks.out_map {
            self.emit_u32_table(&format!("smap_{tag}"), m);
        }
        if let Some(w) = &ks.twiddle {
            self.emit_cplx_table(&format!("tw_{tag}"), w);
        }
        if let Some(w) = &ks.twiddle_out {
            self.emit_cplx_table(&format!("two_{tag}"), w);
        }
        // Loop nest.
        s.push_str("    {\n        int ib, ob, flat = 0;\n        (void)flat;\n");
        let mut open = 0;
        let _ = writeln!(s, "        ib = {}; ob = {};", ks.in_off, ks.out_off);
        let mut vars = Vec::new();
        for (d, l) in ks.loops.iter().enumerate() {
            let v = format!("i{d}");
            let pad = "    ".repeat(2 + open);
            let _ = writeln!(
                s,
                "{pad}for (int {v} = 0; {v} < {c}; {v}++) {{",
                c = l.count
            );
            vars.push((v, l));
            open += 1;
        }
        let pad = "    ".repeat(2 + open);
        // Compute bases.
        let ib_expr: String = {
            let mut e = format!("{}", ks.in_off);
            for (v, l) in &vars {
                let _ = write!(e, " + {v}*{}", l.in_stride);
            }
            e
        };
        let ob_expr: String = {
            let mut e = format!("{}", ks.out_off);
            for (v, l) in &vars {
                let _ = write!(e, " + {v}*{}", l.out_stride);
            }
            e
        };
        let _ = write!(s, "{pad}{{\n{pad}    double gin[2*{c}], gout[2*{c}];\n");
        let _ = writeln!(s, "{pad}    int ibase = {ib_expr}, obase = {ob_expr};");
        // Flat (mixed-radix) iteration index for the twiddle tables.
        if ks.twiddle.is_some() || ks.twiddle_out.is_some() {
            let mut expr = String::from("0");
            for (v, l) in &vars {
                expr = format!("(({expr}) * {} + {v})", l.count);
            }
            let _ = writeln!(s, "{pad}    int fl = {expr};");
        }
        if !simd_pragma.is_empty() {
            let _ = write!(s, "{pad}    {simd_pragma}");
        }
        let _ = writeln!(s, "{pad}    for (int t = 0; t < {c}; t++) {{");
        let idx_in = if ks.in_map.is_some() {
            format!("gmap_{tag}[ibase + t*{}]", ks.in_t_stride)
        } else {
            format!("ibase + t*{}", ks.in_t_stride)
        };
        let _ = writeln!(s, "{pad}        int ii = {idx_in};");
        let in_expr = match gather {
            Some(g) => format!("{g}[({in_off})+ii]"),
            None => format!("(({in_off})+ii)"),
        };
        if ks.twiddle.is_some() {
            let _ = write!(
                s,
                "{pad}        double re = {in_buf}[2*{in_expr}], im = {in_buf}[2*{in_expr}+1];\n\
                 {pad}        double wre = tw_{tag}[2*(fl*{c}+t)], wim = tw_{tag}[2*(fl*{c}+t)+1];\n\
                 {pad}        gin[2*t] = re*wre - im*wim; gin[2*t+1] = re*wim + im*wre;\n"
            );
        } else {
            let _ = writeln!(
                s,
                "{pad}        gin[2*t] = {in_buf}[2*{in_expr}]; gin[2*t+1] = {in_buf}[2*{in_expr}+1];"
            );
        }
        let _ = write!(s, "{pad}    }}\n{pad}    {fname}(gin, gout);\n");
        let idx_out = if ks.out_map.is_some() {
            format!("smap_{tag}[obase + t*{}]", ks.out_t_stride)
        } else {
            format!("obase + t*{}", ks.out_t_stride)
        };
        let out_pragma = if simd_pragma.is_empty() {
            String::new()
        } else {
            format!("{pad}    {simd_pragma}")
        };
        if ks.twiddle_out.is_some() {
            let _ = write!(
                s,
                "{out_pragma}{pad}    for (int t = 0; t < {c}; t++) {{\n\
                 {pad}        int oi = {idx_out};\n\
                 {pad}        double wre = two_{tag}[2*(fl*{c}+t)], wim = two_{tag}[2*(fl*{c}+t)+1];\n\
                 {pad}        {out_buf}[2*(({out_off})+oi)]   = gout[2*t]*wre - gout[2*t+1]*wim;\n\
                 {pad}        {out_buf}[2*(({out_off})+oi)+1] = gout[2*t]*wim + gout[2*t+1]*wre;\n\
                 {pad}    }}\n{pad}}}\n"
            );
        } else {
            let _ = write!(
                s,
                "{out_pragma}{pad}    for (int t = 0; t < {c}; t++) {{\n\
                 {pad}        int oi = {idx_out};\n\
                 {pad}        {out_buf}[2*(({out_off})+oi)] = gout[2*t]; {out_buf}[2*(({out_off})+oi)+1] = gout[2*t+1];\n\
                 {pad}    }}\n{pad}}}\n"
            );
        }
        for d in (0..open).rev() {
            let pad = "    ".repeat(2 + d);
            let _ = writeln!(s, "{pad}}}");
        }
        s.push_str("    }\n");
        s
    }

    /// Emit (once) the straight-line codelet function for a DAG; returns
    /// its name.
    fn codelet_fn(&mut self, dag: &Dag) -> String {
        let name = format!("dft_codelet_{}", dag.n_inputs);
        if self.codelets.contains_key(&name) {
            return name;
        }
        let mut body = String::new();
        let _ = writeln!(
            body,
            "static void {name}(const double *restrict x, double *restrict y) {{"
        );
        for (id, node) in dag.nodes.iter().enumerate() {
            let (re, im) = (format!("t{id}_re"), format!("t{id}_im"));
            match *node {
                Node::Input(i) => {
                    let _ = writeln!(
                        body,
                        "    double {re} = x[{}], {im} = x[{}];",
                        2 * i,
                        2 * i + 1
                    );
                }
                Node::Add(a, b) => {
                    let _ = writeln!(
                        body,
                        "    double {re} = t{a}_re + t{b}_re, {im} = t{a}_im + t{b}_im;"
                    );
                }
                Node::Sub(a, b) => {
                    let _ = writeln!(
                        body,
                        "    double {re} = t{a}_re - t{b}_re, {im} = t{a}_im - t{b}_im;"
                    );
                }
                Node::Mul(a, w) => {
                    let _ = writeln!(
                        body,
                        "    double {re} = t{a}_re * {wr:.17} - t{a}_im * {wi:.17}, {im} = t{a}_re * {wi:.17} + t{a}_im * {wr:.17};",
                        wr = w.re,
                        wi = w.im
                    );
                }
                Node::MulI(a) => {
                    let _ = writeln!(body, "    double {re} = -t{a}_im, {im} = t{a}_re;");
                }
                Node::MulNegI(a) => {
                    let _ = writeln!(body, "    double {re} = t{a}_im, {im} = -t{a}_re;");
                }
                Node::Neg(a) => {
                    let _ = writeln!(body, "    double {re} = -t{a}_re, {im} = -t{a}_im;");
                }
            }
        }
        for (k, o) in dag.outputs.iter().enumerate() {
            let _ = writeln!(
                body,
                "    y[{}] = t{o}_re; y[{}] = t{o}_im;",
                2 * k,
                2 * k + 1
            );
        }
        body.push_str("}\n\n");
        self.codelets.insert(name.clone(), body);
        name
    }

    fn emit_u32_table(&mut self, name: &str, t: &[u32]) {
        if self.tables.contains(&format!(" {name}[")) {
            return;
        }
        let _ = write!(
            self.tables,
            "static const unsigned {name}[{}] = {{",
            t.len()
        );
        for (i, v) in t.iter().enumerate() {
            if i % 16 == 0 {
                self.tables.push_str("\n    ");
            }
            let _ = write!(self.tables, "{v},");
        }
        self.tables.push_str("\n};\n");
    }

    fn emit_cplx_table(&mut self, name: &str, w: &[Cplx]) {
        if self.tables.contains(&format!(" {name}[")) {
            return;
        }
        let _ = write!(
            self.tables,
            "static const double {name}[{}] = {{",
            2 * w.len()
        );
        for (i, z) in w.iter().enumerate() {
            if i % 4 == 0 {
                self.tables.push_str("\n    ");
            }
            let _ = write!(self.tables, "{:.17},{:.17},", z.re, z.im);
        }
        self.tables.push_str("\n};\n");
    }
}

fn homogeneous(programs: &[LocalProgram]) -> bool {
    programs.len() <= 1
        || programs.windows(2).all(|w| {
            format!("{:?}", w[0].stages.len()) == format!("{:?}", w[1].stages.len())
                && same_structure(&w[0], &w[1])
        })
}

fn same_structure(a: &LocalProgram, b: &LocalProgram) -> bool {
    a.stages.len() == b.stages.len()
        && a.stages.iter().zip(&b.stages).all(|(x, y)| match (x, y) {
            (LocalStage::Kernel(k1), LocalStage::Kernel(k2)) => {
                k1.loops == k2.loops
                    && k1.codelet.size() == k2.codelet.size()
                    && arc_eq(&k1.in_map, &k2.in_map)
                    && arc_eq(&k1.out_map, &k2.out_map)
                    && twiddle_eq(&k1.twiddle, &k2.twiddle)
                    && twiddle_eq(&k1.twiddle_out, &k2.twiddle_out)
            }
            (LocalStage::Permute(t1), LocalStage::Permute(t2)) => t1 == t2,
            (LocalStage::Scale(w1), LocalStage::Scale(w2)) => {
                w1.len() == w2.len() && w1.iter().zip(w2.iter()).all(|(a, b)| a.approx_eq(*b, 0.0))
            }
            _ => false,
        })
}

fn arc_eq(a: &Option<std::sync::Arc<Vec<u32>>>, b: &Option<std::sync::Arc<Vec<u32>>>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

fn twiddle_eq(
    a: &Option<std::sync::Arc<Vec<Cplx>>>,
    b: &Option<std::sync::Arc<Vec<Cplx>>>,
) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(p, q)| p.approx_eq(*q, 0.0))
        }
        _ => false,
    }
}

fn step_desc(step: &Step) -> String {
    match step {
        Step::Seq(p) => format!("sequential program, {} stages", p.stages.len()),
        Step::Par {
            chunk,
            programs,
            gather,
        } => {
            format!(
                "parallel: {} chunks of {}{}",
                programs.len(),
                chunk,
                if gather.is_some() {
                    ", fused exchange gather"
                } else {
                    ""
                }
            )
        }
        Step::Exchange { mu, .. } => format!("cache-line exchange (mu = {mu})"),
        Step::ScaleAll(_) => "pointwise scaling".to_string(),
    }
}

fn indent(s: &str, levels: usize) -> String {
    let pad = "    ".repeat(levels);
    s.lines()
        .map(|l| {
            if l.is_empty() {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use spiral_rewrite::{multicore_dft_expanded, sequential_dft};

    fn parallel_plan() -> Plan {
        let f = multicore_dft_expanded(64, 2, 4, None, 8).unwrap();
        Plan::from_formula(&f, 2, 4).unwrap()
    }

    #[test]
    fn openmp_emission_has_expected_structure() {
        let c = emit_c(&parallel_plan(), CFlavor::OpenMp);
        assert!(c.contains("#include <omp.h>"), "missing OMP include");
        assert!(c.contains("#pragma omp parallel for"), "missing pragma");
        assert!(c.contains("void spiral_dft_64"), "missing entry point");
        assert!(c.contains("aligned(64)"), "buffers must be line-aligned");
        assert!(c.contains("dft_codelet_8"), "codelet function missing");
    }

    #[test]
    fn pthreads_emission_has_expected_structure() {
        let c = emit_c(&parallel_plan(), CFlavor::Pthreads);
        assert!(c.contains("#include <pthread.h>"));
        assert!(c.contains("pthread_barrier_wait(&bar)"));
        assert!(c.contains("pthread_create"));
        assert!(
            c.contains("for (int c = tid;"),
            "static block-cyclic split missing"
        );
    }

    #[test]
    fn one_barrier_per_step_in_pthreads() {
        let plan = parallel_plan();
        let c = emit_c(&plan, CFlavor::Pthreads);
        let barriers = c.matches("pthread_barrier_wait(&bar);").count();
        assert_eq!(barriers, plan.steps.len());
    }

    #[test]
    fn sequential_plan_emits_without_parallel_steps() {
        let f = sequential_dft(32, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        let c = emit_c(&plan, CFlavor::OpenMp);
        assert!(c.contains("void spiral_dft_32"));
    }

    #[test]
    fn codelet_bodies_are_straight_line() {
        let c = emit_c(&parallel_plan(), CFlavor::OpenMp);
        // The size-8 codelet body must contain no loops.
        let start = c.find("static void dft_codelet_8").unwrap();
        let end = c[start..].find("\n}\n").unwrap() + start;
        let body = &c[start..end];
        assert!(!body.contains("for ("), "codelet must be unrolled:\n{body}");
        assert!(body.matches("double t").count() > 8);
    }

    fn vec_plan(nu: usize) -> Plan {
        let f = spiral_spl::builder::vec_tag(nu, sequential_dft(64, 8));
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        assert!(plan.vec_width > 1, "tag must take at n=64");
        plan
    }

    #[test]
    fn vector_stages_carry_simd_pragmas_in_openmp() {
        let c = emit_c(&vec_plan(4), CFlavor::OpenMp);
        assert!(
            c.contains("#pragma omp simd simdlen(4)"),
            "ν-lane loops must be annotated:\n{c}"
        );
        assert!(c.contains("/* vec(4) kernel stage"));
        assert!(c.contains("vec(4) stages carry explicit vectorization pragmas"));
    }

    #[test]
    fn vector_stages_carry_ivdep_in_pthreads() {
        let c = emit_c(&vec_plan(2), CFlavor::Pthreads);
        assert!(c.contains("#pragma GCC ivdep"), "missing ivdep:\n{c}");
        assert!(c.contains("/* vec(2) kernel stage"));
    }

    #[test]
    fn scalar_plans_emit_no_simd_pragmas() {
        let f = sequential_dft(64, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        let c = emit_c(&plan, CFlavor::OpenMp);
        assert!(!c.contains("omp simd"));
        assert!(!c.contains("vec("));
    }

    #[test]
    fn tables_are_emitted_once() {
        let c = emit_c(&parallel_plan(), CFlavor::OpenMp);
        // Each named table defined exactly once.
        for cap in ["exch0_tbl", "dft_codelet_8"] {
            let defs = c
                .matches(&format!("{cap}["))
                .count()
                .max(c.matches(&format!("{cap}(")).count());
            assert!(defs >= 1, "{cap} missing");
        }
    }
}
