//! Multithreaded plan execution on the `spiral-smp` substrate.
//!
//! Mirrors the generated pthreads code the paper describes: a persistent
//! worker pool, one statically scheduled portion per thread per step, one
//! barrier per step, cache-line aligned shared buffers, and per-thread
//! private scratch.

use crate::plan::{Plan, Step};
use crate::stage::Scratch;
use spiral_smp::align::AlignedVec;
use spiral_smp::barrier::{Barrier, BarrierKind};
use spiral_smp::pool::Pool;
use spiral_spl::cplx::Cplx;

/// Reusable parallel executor: owns the pool, barrier, and buffers.
pub struct ParallelExecutor {
    pool: Pool,
    barrier: Box<dyn Barrier>,
    threads: usize,
}

/// Shared mutable buffer pointers for the workers.
///
/// # Safety
///
/// `Sync` is sound only for plans satisfying the invariant the
/// `spiral-verify` analyzer checks statically over the stage IR: in every
/// step, per-thread write index sets are pairwise disjoint and in bounds,
/// and reads target only the opposite ping-pong buffer, whose contents
/// were fixed before the barrier that opened the step. Under that
/// invariant no two threads ever form a data race on `a`/`b` — writes are
/// unaliased, and every read-after-write pair is ordered by a barrier.
/// All plans produced by `Plan::from_formula` satisfy it; debug builds
/// additionally re-verify each plan through the [`crate::validate`]
/// registry when an analyzer is installed
/// (`spiral_verify::install_executor_guard`).
struct SharedBufs {
    a: *mut Cplx,
    b: *mut Cplx,
    n: usize,
}
unsafe impl Sync for SharedBufs {}

impl ParallelExecutor {
    /// Build an executor with `threads` workers and the given barrier.
    pub fn new(threads: usize, kind: BarrierKind) -> ParallelExecutor {
        let threads = threads.max(1);
        ParallelExecutor {
            pool: Pool::new(threads),
            barrier: kind.build(threads),
            threads,
        }
    }

    /// Auto-select the barrier for this host (spin if cores ≥ threads).
    pub fn with_auto_barrier(threads: usize) -> ParallelExecutor {
        ParallelExecutor::new(threads, BarrierKind::auto(threads))
    }

    /// Number of worker threads (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `plan` on `x`. The plan's `threads` must not exceed the
    /// executor's. Returns the transform output.
    pub fn execute(&self, plan: &Plan, x: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(x.len(), plan.n, "input length mismatch");
        assert!(
            plan.threads <= self.threads,
            "plan wants {} threads, executor has {}",
            plan.threads,
            self.threads
        );
        // The soundness of the `unsafe` buffer sharing below is a static
        // property of the plan (see `SharedBufs`); debug builds re-check
        // it with the installed analyzer before running anything.
        #[cfg(debug_assertions)]
        if let Some(validate) = crate::validate::validator() {
            if let Err(e) = validate(plan) {
                panic!("plan failed static verification: {e}");
            }
        }
        let n = plan.n;
        let mut buf_a: AlignedVec<Cplx> = AlignedVec::new(n.max(1));
        let mut buf_b: AlignedVec<Cplx> = AlignedVec::new(n.max(1));
        buf_a.copy_from(x);
        let _ = &mut buf_b;
        let shared = SharedBufs {
            a: buf_a.as_ptr(),
            b: buf_b.as_ptr(),
            n,
        };
        // Borrow the whole struct so the closure captures one `&SharedBufs`
        // (edition-2021 disjoint capture would otherwise grab `&*mut Cplx`,
        // which is not Sync).
        let shared = &shared;
        let barrier = &*self.barrier;
        let threads = self.threads;
        let tmp_dim = plan.max_local_dim().max(1);

        self.pool.run(&|tid| {
            let mut tmp: AlignedVec<Cplx> = AlignedVec::new(tmp_dim);
            let mut scratch = Scratch::default();
            for (si, step) in plan.steps.iter().enumerate() {
                // Ping-pong: even steps read A write B.
                // Safety: see SharedBufs — disjoint writes, barrier-ordered
                // reads.
                let (src, dst): (&[Cplx], *mut Cplx) = unsafe {
                    if si % 2 == 0 {
                        (std::slice::from_raw_parts(shared.a, shared.n), shared.b)
                    } else {
                        (std::slice::from_raw_parts(shared.b, shared.n), shared.a)
                    }
                };
                run_step_portion(
                    step,
                    n,
                    plan.mu.max(1),
                    tid,
                    threads,
                    src,
                    dst,
                    &mut tmp,
                    &mut scratch,
                );
                barrier.wait();
            }
        });

        let result_in_a = plan.steps.len().is_multiple_of(2);
        if result_in_a {
            buf_a.as_slice().to_vec()
        } else {
            buf_b.as_slice().to_vec()
        }
    }
}

/// Execute thread `tid`'s statically scheduled portion of one step.
#[allow(clippy::too_many_arguments)]
fn run_step_portion(
    step: &Step,
    n: usize,
    plan_mu: usize,
    tid: usize,
    threads: usize,
    src: &[Cplx],
    dst: *mut Cplx,
    tmp: &mut [Cplx],
    scratch: &mut Scratch,
) {
    match step {
        Step::Seq(prog) => {
            if tid == 0 {
                // Safety: only thread 0 writes during a Seq step.
                let dst = unsafe { std::slice::from_raw_parts_mut(dst, n) };
                prog.run(src, dst, tmp, scratch);
            }
        }
        Step::Par {
            chunk,
            programs,
            gather,
        } => {
            for (c, prog) in programs.iter().enumerate() {
                if c % threads != tid {
                    continue;
                }
                let s = c * chunk;
                // Safety: chunk ranges are disjoint across c, and each c
                // is handled by exactly one thread. Gathered reads touch
                // the whole (read-only this step) src buffer.
                let dst_chunk = unsafe { std::slice::from_raw_parts_mut(dst.add(s), *chunk) };
                let view = match gather {
                    Some(g) => crate::stage::SrcView::Gathered {
                        buf: src,
                        gather: g,
                        off: s,
                    },
                    None => crate::stage::SrcView::Local(&src[s..s + chunk]),
                };
                prog.run_view(view, dst_chunk, &mut tmp[..*chunk], scratch);
            }
        }
        Step::Exchange { table, mu } => {
            let blocks = n / mu;
            let (lo, hi) = share(blocks, threads, tid);
            // Safety: [lo·µ, hi·µ) ranges are disjoint across threads.
            let out = unsafe { std::slice::from_raw_parts_mut(dst.add(lo * mu), (hi - lo) * mu) };
            for (k, o) in out.iter_mut().enumerate() {
                *o = src[table[lo * mu + k] as usize];
            }
        }
        Step::ScaleAll(w) => {
            // Split by whole cache lines, matching `Plan::run_traced` —
            // an element-granular split would let two threads write-share
            // a line. The last thread also takes the sub-line tail, if
            // n is not a multiple of µ.
            let blocks = n / plan_mu;
            let (b_lo, b_hi) = share(blocks, threads, tid);
            let lo = b_lo * plan_mu;
            let hi = if tid == threads - 1 {
                n
            } else {
                b_hi * plan_mu
            };
            if hi > lo {
                // Safety: [lo, hi) ranges are disjoint across threads.
                let out = unsafe { std::slice::from_raw_parts_mut(dst.add(lo), hi - lo) };
                for (k, o) in out.iter_mut().enumerate() {
                    *o = src[lo + k] * w[lo + k];
                }
            }
        }
    }
}

fn share(total: usize, p: usize, tid: usize) -> (usize, usize) {
    let base = total / p;
    let rem = total % p;
    let lo = tid * base + tid.min(rem);
    (lo, lo + base + usize::from(tid < rem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(j as f64 * 0.5, 3.0 - j as f64))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_execution() {
        for (n, p) in [(64usize, 2usize), (256, 2), (256, 4), (1024, 4)] {
            let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
            let plan = Plan::from_formula(&f, p, 4).unwrap();
            let exec = ParallelExecutor::new(p, BarrierKind::Park);
            let x = ramp(n);
            let got = exec.execute(&plan, &x);
            assert_slices_close(&got, &plan.execute(&x), 1e-12);
            assert_slices_close(&got, &dft(n).eval(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn spin_barrier_also_correct() {
        let (n, p) = (256usize, 2usize);
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, p, 4).unwrap();
        let exec = ParallelExecutor::new(p, BarrierKind::Spin);
        let x = ramp(n);
        assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-6);
    }

    #[test]
    fn sequential_plan_on_parallel_executor() {
        // A sequential plan (Seq steps) must still run correctly with
        // multiple threads (others idle at barriers).
        let n = 64;
        let f = sequential_dft(n, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        let x = ramp(n);
        assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-7);
    }

    #[test]
    fn executor_is_reusable() {
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        for n in [64usize, 256] {
            let f = multicore_dft_expanded(n, 2, 4, None, 8).unwrap();
            let plan = Plan::from_formula(&f, 2, 4).unwrap();
            let x = ramp(n);
            for _ in 0..3 {
                assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-6);
            }
        }
    }

    #[test]
    fn odd_step_count_lands_in_right_buffer() {
        // An identity plan with a single Exchange step (odd count).
        use spiral_spl::builder::*;
        let f = stride(16, 4);
        let plan = Plan::from_formula(&f, 1, 1).unwrap();
        assert_eq!(plan.steps.len() % 2, 1);
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        let x = ramp(16);
        assert_slices_close(&exec.execute(&plan, &x), &f.eval(&x), 0.0);
    }

    #[test]
    #[should_panic(expected = "plan wants")]
    fn rejects_undersized_executor() {
        let f = multicore_dft_expanded(64, 4, 2, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 4, 2).unwrap();
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        exec.execute(&plan, &ramp(64));
    }
}
