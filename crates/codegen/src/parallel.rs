//! Multithreaded plan execution on the `spiral-smp` substrate.
//!
//! Mirrors the generated pthreads code the paper describes: a persistent
//! worker pool, one statically scheduled portion per thread per step, one
//! barrier per step, cache-line aligned shared buffers, and per-thread
//! private scratch.
//!
//! ## Failure model
//!
//! [`ParallelExecutor::try_execute`] is the fallible entry point:
//!
//! * a panic on any logical thread (including the caller) is caught by
//!   the pool and surfaces as [`SpiralError::WorkerPanic`];
//! * a dead peer is bounded by the stage-barrier watchdog
//!   ([`ParallelExecutor::set_watchdog`]): survivors observe
//!   [`SpiralError::BarrierTimeout`] within the deadline, mark the run
//!   failed, and drain, so the caller gets an `Err` instead of a
//!   deadlock;
//! * results are scanned before they leave the executor — non-finite
//!   output yields [`SpiralError::NonFinite`], never a silently
//!   corrupted `Ok`;
//! * after any failed run the stage barrier is reset, so the same
//!   executor (and pool) runs subsequent healthy plans;
//! * [`ParallelExecutor::execute_resilient`] additionally degrades to
//!   the verified sequential interpreter (`Plan::execute`) when the pool
//!   is unhealthy or the parallel run hits a runtime fault.
//!
//! With the `faults` feature, deterministic faults (panics, delays, NaN
//! corruption) can be injected at any `(stage, thread)` point via
//! `spiral_smp::faults` to exercise all of the above.

use crate::plan::{Plan, Step};
use crate::stage::Scratch;
use spiral_smp::align::AlignedVec;
use spiral_smp::barrier::{Barrier, BarrierKind};
use spiral_smp::error::{lock_recover, SpiralError};
use spiral_smp::pool::Pool;
use spiral_spl::cplx::{first_non_finite, Cplx};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default stage-barrier watchdog. Generous: a healthy stage never takes
/// seconds, so tripping it means a peer is dead or wedged.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// Result of [`ParallelExecutor::execute_resilient`].
pub struct ExecOutcome {
    /// The transform output.
    pub output: Vec<Cplx>,
    /// `None` when the parallel path succeeded; `Some(cause)` when the
    /// executor degraded to the sequential interpreter because of this
    /// runtime fault.
    pub degraded: Option<SpiralError>,
}

/// Reusable parallel executor: owns the pool, barrier, and buffers.
pub struct ParallelExecutor {
    pool: Pool,
    barrier: Box<dyn Barrier>,
    threads: usize,
    watchdog: Duration,
}

/// Shared mutable buffer pointers for the workers.
///
/// # Safety
///
/// `Sync` is sound only for plans satisfying the invariant the
/// `spiral-verify` analyzer checks statically over the stage IR: in every
/// step, per-thread write index sets are pairwise disjoint and in bounds,
/// and reads target only the opposite ping-pong buffer, whose contents
/// were fixed before the barrier that opened the step. Under that
/// invariant no two threads ever form a data race on `a`/`b` — writes are
/// unaliased, and every read-after-write pair is ordered by a barrier.
/// All plans produced by `Plan::from_formula` satisfy it; debug builds
/// additionally re-verify each plan through the [`crate::validate`]
/// registry when an analyzer is installed
/// (`spiral_verify::install_executor_guard`).
struct SharedBufs {
    a: *mut Cplx,
    b: *mut Cplx,
    n: usize,
}
unsafe impl Sync for SharedBufs {}

/// The pool must outwait the stage barrier: when a run fails, survivors
/// each burn at most one barrier deadline before draining, and a delayed
/// straggler can burn one more.
fn pool_watchdog(stage_watchdog: Duration) -> Duration {
    stage_watchdog * 2 + Duration::from_millis(250)
}

/// Optional tracing context threaded through [`ParallelExecutor`]'s
/// internal run path. Without the `trace` feature this is a zero-sized
/// struct and every use compiles out — `try_execute` is byte-for-byte
/// the untraced executor.
#[derive(Clone, Copy, Default)]
struct ExecTrace<'a> {
    /// Where per-(stage, thread) timings go, when tracing this run.
    #[cfg(feature = "trace")]
    sink: Option<&'a dyn spiral_smp::trace::TraceSink>,
    /// Where timestamped spans/instants go, when timelining this run.
    #[cfg(feature = "trace")]
    timeline: Option<&'a dyn spiral_smp::trace::TimelineSink>,
    _marker: std::marker::PhantomData<&'a ()>,
}

#[cfg(feature = "trace")]
impl ExecTrace<'_> {
    /// Any sink attached — timestamps must be taken for this run.
    fn observing(&self) -> bool {
        self.sink.is_some() || self.timeline.is_some()
    }
}

impl ParallelExecutor {
    /// Build an executor with `threads` workers and the given barrier.
    pub fn new(threads: usize, kind: BarrierKind) -> ParallelExecutor {
        ParallelExecutor::with_watchdog(threads, kind, DEFAULT_WATCHDOG)
    }

    /// Build an executor with an explicit stage-barrier watchdog.
    pub fn with_watchdog(
        threads: usize,
        kind: BarrierKind,
        watchdog: Duration,
    ) -> ParallelExecutor {
        let threads = threads.max(1);
        ParallelExecutor {
            pool: Pool::with_watchdog(threads, pool_watchdog(watchdog)),
            barrier: kind.build(threads),
            threads,
            watchdog,
        }
    }

    /// Auto-select the barrier for this host (spin if cores ≥ threads).
    pub fn with_auto_barrier(threads: usize) -> ParallelExecutor {
        ParallelExecutor::new(threads, BarrierKind::auto(threads))
    }

    /// Number of worker threads (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured stage-barrier watchdog.
    pub fn watchdog(&self) -> Duration {
        self.watchdog
    }

    /// Change the stage-barrier watchdog (the pool-level watchdog is
    /// derived from it).
    pub fn set_watchdog(&mut self, watchdog: Duration) {
        self.watchdog = watchdog;
        self.pool.set_watchdog(pool_watchdog(watchdog));
    }

    /// True when the worker pool is in a runnable state.
    pub fn healthy(&self) -> bool {
        self.pool.healthy()
    }

    /// Execute `plan` on `x`. The plan's `threads` must not exceed the
    /// executor's. Returns the transform output. Panics on any execution
    /// failure; see [`try_execute`](Self::try_execute) for the fallible
    /// variant.
    pub fn execute(&self, plan: &Plan, x: &[Cplx]) -> Vec<Cplx> {
        match self.try_execute(plan, x) {
            Ok(y) => y,
            Err(e) => panic!("{e}"),
        }
    }

    /// Execute `plan` on `x`, propagating failures instead of panicking
    /// or deadlocking: worker panics, barrier watchdog expiries, failed
    /// allocations, and non-finite output all return `Err` in bounded
    /// time, and the executor remains usable afterwards.
    pub fn try_execute(&self, plan: &Plan, x: &[Cplx]) -> Result<Vec<Cplx>, SpiralError> {
        self.exec_impl(plan, x, ExecTrace::default())
    }

    /// Execute `plan` on `x` while recording per-(stage, thread) compute
    /// time, barrier-wait time, job counts, and element counts into a
    /// fresh `spiral_trace::Collector`, returning the output together
    /// with the aggregated [`spiral_trace::RunProfile`]. Failure behavior
    /// is identical to [`try_execute`](Self::try_execute).
    ///
    /// Only available with the `trace` feature; without it the executor
    /// carries no instrumentation at all.
    #[cfg(feature = "trace")]
    pub fn try_execute_traced(
        &self,
        plan: &Plan,
        x: &[Cplx],
    ) -> Result<(Vec<Cplx>, spiral_trace::RunProfile), SpiralError> {
        self.observed_impl(plan, x, None)
    }

    /// Like [`try_execute_traced`](Self::try_execute_traced), but
    /// additionally stream timestamped spans and instants (pool job,
    /// per-stage compute, barrier arrive→release, watchdog fires) into
    /// `timeline` — the event source for Chrome-trace/Perfetto export
    /// (`spiral_trace::Timeline`). The returned [`spiral_trace::RunProfile`]
    /// aggregates the *same* run, so timeline durations can be
    /// cross-checked against profile totals.
    ///
    /// Only available with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn try_execute_observed(
        &self,
        plan: &Plan,
        x: &[Cplx],
        timeline: &dyn spiral_smp::trace::TimelineSink,
    ) -> Result<(Vec<Cplx>, spiral_trace::RunProfile), SpiralError> {
        self.observed_impl(plan, x, Some(timeline))
    }

    #[cfg(feature = "trace")]
    fn observed_impl(
        &self,
        plan: &Plan,
        x: &[Cplx],
        timeline: Option<&dyn spiral_smp::trace::TimelineSink>,
    ) -> Result<(Vec<Cplx>, spiral_trace::RunProfile), SpiralError> {
        let collector = spiral_trace::Collector::new(self.threads, plan.steps.len());
        let wall_t0 = std::time::Instant::now();
        let out = self.exec_impl(
            plan,
            x,
            ExecTrace {
                sink: Some(&collector),
                timeline,
                _marker: std::marker::PhantomData,
            },
        )?;
        let wall = wall_t0.elapsed();
        let labels: Vec<String> = plan.steps.iter().map(|s| s.label()).collect();
        Ok((out, collector.finish(plan.n, &labels, wall)))
    }

    fn exec_impl(
        &self,
        plan: &Plan,
        x: &[Cplx],
        tr: ExecTrace<'_>,
    ) -> Result<Vec<Cplx>, SpiralError> {
        let _ = &tr;
        if x.len() != plan.n {
            return Err(SpiralError::Plan(format!(
                "input length {} does not match plan size {}",
                x.len(),
                plan.n
            )));
        }
        if plan.threads > self.threads {
            return Err(SpiralError::Plan(format!(
                "plan wants {} threads, executor has {}",
                plan.threads, self.threads
            )));
        }
        // The soundness of the `unsafe` buffer sharing below is a static
        // property of the plan (see `SharedBufs`); debug builds re-check
        // it with the installed analyzer before running anything.
        #[cfg(debug_assertions)]
        if let Some(validate) = crate::plan::validator() {
            if let Err(e) = validate(plan) {
                return Err(SpiralError::Plan(format!(
                    "plan failed static verification: {e}"
                )));
            }
        }
        let n = plan.n;
        let mut buf_a: AlignedVec<Cplx> =
            AlignedVec::try_with_alignment(n.max(1), spiral_smp::CACHE_LINE_BYTES)?;
        let mut buf_b: AlignedVec<Cplx> =
            AlignedVec::try_with_alignment(n.max(1), spiral_smp::CACHE_LINE_BYTES)?;
        buf_a.copy_from(x);
        let _ = &mut buf_b;
        let shared = SharedBufs {
            a: buf_a.as_ptr(),
            b: buf_b.as_ptr(),
            n,
        };
        // Borrow the whole struct so the closure captures one `&SharedBufs`
        // (edition-2021 disjoint capture would otherwise grab `&*mut Cplx`,
        // which is not Sync).
        let shared = &shared;
        let barrier = &*self.barrier;
        let threads = self.threads;
        let watchdog = self.watchdog;
        let tmp_dim = plan.max_local_dim().max(1);

        #[cfg(feature = "faults")]
        spiral_smp::faults::begin_run();

        // First stage-level failure (barrier timeout) observed by any
        // thread; `failed` lets the other threads drain at the next
        // stage boundary instead of waiting out their own deadline.
        let stage_err: Mutex<Option<SpiralError>> = Mutex::new(None);
        let failed = AtomicBool::new(false);

        let job = |tid: usize| {
            let mut tmp: AlignedVec<Cplx> = AlignedVec::new(tmp_dim);
            let mut scratch = Scratch::default();
            for (si, step) in plan.steps.iter().enumerate() {
                if failed.load(Ordering::Acquire) {
                    break;
                }
                // Ping-pong: even steps read A write B.
                // Safety: see SharedBufs — disjoint writes, barrier-ordered
                // reads.
                let (src, dst): (&[Cplx], *mut Cplx) = unsafe {
                    if si % 2 == 0 {
                        (std::slice::from_raw_parts(shared.a, shared.n), shared.b)
                    } else {
                        (std::slice::from_raw_parts(shared.b, shared.n), shared.a)
                    }
                };
                #[cfg(feature = "faults")]
                let corrupt = match spiral_smp::faults::at(si, tid) {
                    Some(spiral_smp::faults::Fault::Panic) => {
                        panic!("injected fault: panic at stage {si}, thread {tid}")
                    }
                    Some(spiral_smp::faults::Fault::Delay(d)) => {
                        std::thread::sleep(d);
                        false
                    }
                    Some(spiral_smp::faults::Fault::CorruptNan) => true,
                    None => false,
                };
                #[cfg(feature = "trace")]
                let compute_t0 = tr.observing().then(std::time::Instant::now);
                run_step_portion(
                    step,
                    n,
                    plan.mu.max(1),
                    tid,
                    threads,
                    src,
                    dst,
                    &mut tmp,
                    &mut scratch,
                );
                #[cfg(feature = "trace")]
                let compute_t1 = tr.observing().then(std::time::Instant::now);
                #[cfg(feature = "faults")]
                if corrupt {
                    inject_nan(step, n, plan.mu.max(1), tid, threads, dst);
                }
                #[cfg(feature = "trace")]
                let barrier_t0 = tr.observing().then(std::time::Instant::now);
                let waited = barrier.wait_deadline(watchdog);
                #[cfg(feature = "trace")]
                if let (Some(t0), Some(t1), Some(b0)) = (compute_t0, compute_t1, barrier_t0) {
                    // Arrival → release span: on a clean stage this is the
                    // time spent blocked waiting for slower peers.
                    let b1 = std::time::Instant::now();
                    if let Some(sink) = tr.sink {
                        let (jobs, elements) = portion_stats(step, n, plan.mu.max(1), tid, threads);
                        sink.stage(tid, si, t1 - t0, b1 - b0, jobs, elements);
                    }
                    if let Some(tl) = tr.timeline {
                        use spiral_smp::trace::{MarkKind, SpanKind};
                        let si = crate::u32_idx(si);
                        tl.span(tid, SpanKind::StageCompute, si, t0, t1);
                        tl.span(tid, SpanKind::BarrierWait, si, b0, b1);
                        let mark = match &waited {
                            Ok(_) => MarkKind::BarrierRelease,
                            Err(_) => MarkKind::WatchdogFire,
                        };
                        tl.mark(tid, mark, si, b1);
                    }
                }
                if let Err(e) = waited {
                    failed.store(true, Ordering::Release);
                    let mut slot = lock_recover(&stage_err);
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
        };
        #[cfg(feature = "trace")]
        let run_result = if tr.observing() {
            self.pool.try_run_observed(&job, tr.sink, tr.timeline)
        } else {
            self.pool.try_run(&job)
        };
        #[cfg(not(feature = "trace"))]
        let run_result = self.pool.try_run(&job);

        // A failed run can leave the stage barrier mid-phase (retracted
        // arrivals, stale count); restore it before anyone reuses us.
        if run_result.is_err() || failed.load(Ordering::Acquire) {
            self.barrier.reset();
        }
        run_result?;
        if let Some(e) = lock_recover(&stage_err).take() {
            return Err(e);
        }

        let result_in_a = plan.steps.len().is_multiple_of(2);
        let out = if result_in_a {
            buf_a.as_slice().to_vec()
        } else {
            buf_b.as_slice().to_vec()
        };
        // Corruption guard: non-finite values never leave the executor.
        if let Some(index) = first_non_finite(&out) {
            return Err(SpiralError::NonFinite {
                index,
                context: format!("parallel execution of a {n}-point plan"),
            });
        }
        Ok(out)
    }

    /// Execute `plan` with graceful degradation: when the pool is
    /// unhealthy, or the parallel run fails with a runtime fault (panic,
    /// watchdog expiry, corrupted output), fall back to the verified
    /// sequential interpreter and report the cause in
    /// [`ExecOutcome::degraded`]. Deterministic misuse (size mismatch,
    /// failed static verification) is returned as `Err` — retrying
    /// cannot fix it.
    pub fn execute_resilient(&self, plan: &Plan, x: &[Cplx]) -> Result<ExecOutcome, SpiralError> {
        if self.pool.healthy() {
            match self.try_execute(plan, x) {
                Ok(output) => {
                    return Ok(ExecOutcome {
                        output,
                        degraded: None,
                    })
                }
                Err(e) if e.is_runtime_fault() => return self.sequential_rescue(plan, x, e),
                Err(e) => return Err(e),
            }
        }
        self.sequential_rescue(plan, x, SpiralError::PoolUnhealthy)
    }

    fn sequential_rescue(
        &self,
        plan: &Plan,
        x: &[Cplx],
        cause: SpiralError,
    ) -> Result<ExecOutcome, SpiralError> {
        let output = catch_unwind(AssertUnwindSafe(|| plan.execute(x))).map_err(|p| {
            SpiralError::WorkerPanic {
                thread: 0,
                payload: spiral_smp::panic_payload(p),
            }
        })?;
        if let Some(index) = first_non_finite(&output) {
            return Err(SpiralError::NonFinite {
                index,
                context: format!("sequential fallback of a {}-point plan", plan.n),
            });
        }
        Ok(ExecOutcome {
            output,
            degraded: Some(cause),
        })
    }
}

/// Write one NaN into an element of `dst` that thread `tid` owns in this
/// step (fault injection: models silent corruption of the thread's
/// output portion). No-op when the thread writes nothing this step.
#[cfg(feature = "faults")]
fn inject_nan(step: &Step, n: usize, plan_mu: usize, tid: usize, threads: usize, dst: *mut Cplx) {
    let idx = match step {
        Step::Seq(_) => (tid == 0 && n > 0).then_some(0),
        Step::Par {
            chunk, programs, ..
        } => {
            // Chunk `c` runs on thread `c % threads`, so the first chunk
            // owned by `tid` is chunk `tid` itself.
            (tid < programs.len() && *chunk > 0).then(|| tid * *chunk)
        }
        Step::Exchange { mu, .. } => {
            let (lo, hi) = share(n / mu, threads, tid);
            (hi > lo).then(|| lo * mu)
        }
        Step::ScaleAll(_) => {
            let blocks = n / plan_mu;
            let (b_lo, b_hi) = share(blocks, threads, tid);
            let lo = b_lo * plan_mu;
            let hi = if tid == threads - 1 {
                n
            } else {
                b_hi * plan_mu
            };
            (hi > lo).then_some(lo)
        }
    };
    if let Some(i) = idx {
        // Safety: `i` is within thread `tid`'s disjoint write portion of
        // this step (same ownership argument as `run_step_portion`).
        unsafe { *dst.add(i) = Cplx::new(f64::NAN, f64::NAN) };
    }
}

/// Execute thread `tid`'s statically scheduled portion of one step.
#[allow(clippy::too_many_arguments)]
fn run_step_portion(
    step: &Step,
    n: usize,
    plan_mu: usize,
    tid: usize,
    threads: usize,
    src: &[Cplx],
    dst: *mut Cplx,
    tmp: &mut [Cplx],
    scratch: &mut Scratch,
) {
    match step {
        Step::Seq(prog) => {
            if tid == 0 {
                // Safety: only thread 0 writes during a Seq step.
                let dst = unsafe { std::slice::from_raw_parts_mut(dst, n) };
                prog.run(src, dst, tmp, scratch);
            }
        }
        Step::Par {
            chunk,
            programs,
            gather,
        } => {
            for (c, prog) in programs.iter().enumerate() {
                if c % threads != tid {
                    continue;
                }
                let s = c * chunk;
                // Safety: chunk ranges are disjoint across c, and each c
                // is handled by exactly one thread. Gathered reads touch
                // the whole (read-only this step) src buffer.
                let dst_chunk = unsafe { std::slice::from_raw_parts_mut(dst.add(s), *chunk) };
                let view = match gather {
                    Some(g) => crate::stage::SrcView::Gathered {
                        buf: src,
                        gather: g,
                        off: s,
                    },
                    None => crate::stage::SrcView::Local(&src[s..s + chunk]),
                };
                prog.run_view(view, dst_chunk, &mut tmp[..*chunk], scratch);
            }
        }
        Step::Exchange { table, mu } => {
            let blocks = n / mu;
            let (lo, hi) = share(blocks, threads, tid);
            // Safety: [lo·µ, hi·µ) ranges are disjoint across threads.
            let out = unsafe { std::slice::from_raw_parts_mut(dst.add(lo * mu), (hi - lo) * mu) };
            for (k, o) in out.iter_mut().enumerate() {
                *o = src[table[lo * mu + k] as usize];
            }
        }
        Step::ScaleAll(w) => {
            // Split by whole cache lines, matching `Plan::run_traced` —
            // an element-granular split would let two threads write-share
            // a line. The last thread also takes the sub-line tail, if
            // n is not a multiple of µ.
            let blocks = n / plan_mu;
            let (b_lo, b_hi) = share(blocks, threads, tid);
            let lo = b_lo * plan_mu;
            let hi = if tid == threads - 1 {
                n
            } else {
                b_hi * plan_mu
            };
            if hi > lo {
                // Safety: [lo, hi) ranges are disjoint across threads.
                let out = unsafe { std::slice::from_raw_parts_mut(dst.add(lo), hi - lo) };
                for (k, o) in out.iter_mut().enumerate() {
                    *o = src[lo + k] * w[lo + k];
                }
            }
        }
    }
}

/// `(jobs, elements)` of thread `tid`'s statically scheduled portion of
/// one step — the same schedule `run_step_portion` executes. Jobs are
/// schedulable units (chunks, block ranges); elements are output
/// elements written. Deterministic, so trace profiles can cross-check
/// `spiral-verify`'s static load-balance verdicts without relying on
/// timing.
#[cfg(feature = "trace")]
fn portion_stats(step: &Step, n: usize, plan_mu: usize, tid: usize, threads: usize) -> (u64, u64) {
    match step {
        Step::Seq(_) => {
            if tid == 0 {
                (1, n as u64)
            } else {
                (0, 0)
            }
        }
        Step::Par {
            chunk, programs, ..
        } => {
            let count = (0..programs.len()).filter(|c| c % threads == tid).count() as u64;
            (count, count * *chunk as u64)
        }
        Step::Exchange { mu, .. } => {
            let (lo, hi) = share(n / mu, threads, tid);
            ((hi - lo) as u64, ((hi - lo) * mu) as u64)
        }
        Step::ScaleAll(_) => {
            let blocks = n / plan_mu;
            let (b_lo, b_hi) = share(blocks, threads, tid);
            let lo = b_lo * plan_mu;
            let hi = if tid == threads - 1 {
                n
            } else {
                b_hi * plan_mu
            };
            (u64::from(hi > lo), (hi.saturating_sub(lo)) as u64)
        }
    }
}

fn share(total: usize, p: usize, tid: usize) -> (usize, usize) {
    let base = total / p;
    let rem = total % p;
    let lo = tid * base + tid.min(rem);
    (lo, lo + base + usize::from(tid < rem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(j as f64 * 0.5, 3.0 - j as f64))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_execution() {
        for (n, p) in [(64usize, 2usize), (256, 2), (256, 4), (1024, 4)] {
            let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
            let plan = Plan::from_formula(&f, p, 4).unwrap();
            let exec = ParallelExecutor::new(p, BarrierKind::Park);
            let x = ramp(n);
            let got = exec.execute(&plan, &x);
            assert_slices_close(&got, &plan.execute(&x), 1e-12);
            assert_slices_close(&got, &dft(n).eval(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn spin_barrier_also_correct() {
        let (n, p) = (256usize, 2usize);
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, p, 4).unwrap();
        let exec = ParallelExecutor::new(p, BarrierKind::Spin);
        let x = ramp(n);
        assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-6);
    }

    #[test]
    fn sequential_plan_on_parallel_executor() {
        // A sequential plan (Seq steps) must still run correctly with
        // multiple threads (others idle at barriers).
        let n = 64;
        let f = sequential_dft(n, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        let x = ramp(n);
        assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-7);
    }

    #[test]
    fn executor_is_reusable() {
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        for n in [64usize, 256] {
            let f = multicore_dft_expanded(n, 2, 4, None, 8).unwrap();
            let plan = Plan::from_formula(&f, 2, 4).unwrap();
            let x = ramp(n);
            for _ in 0..3 {
                assert_slices_close(&exec.execute(&plan, &x), &dft(n).eval(&x), 1e-6);
            }
        }
    }

    #[test]
    fn odd_step_count_lands_in_right_buffer() {
        // An identity plan with a single Exchange step (odd count).
        use spiral_spl::builder::*;
        let f = stride(16, 4);
        let plan = Plan::from_formula(&f, 1, 1).unwrap();
        assert_eq!(plan.steps.len() % 2, 1);
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        let x = ramp(16);
        assert_slices_close(&exec.execute(&plan, &x), &f.eval(&x), 0.0);
    }

    #[test]
    #[should_panic(expected = "plan wants")]
    fn rejects_undersized_executor() {
        let f = multicore_dft_expanded(64, 4, 2, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 4, 2).unwrap();
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        exec.execute(&plan, &ramp(64));
    }

    #[test]
    fn try_execute_rejects_bad_input_as_err() {
        let f = multicore_dft_expanded(64, 2, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 2, 4).unwrap();
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        // Wrong input length.
        let err = exec.try_execute(&plan, &ramp(63)).unwrap_err();
        assert!(matches!(err, SpiralError::Plan(_)));
        // Undersized executor.
        let big =
            Plan::from_formula(&multicore_dft_expanded(64, 4, 2, None, 8).unwrap(), 4, 2).unwrap();
        let err = exec.try_execute(&big, &ramp(64)).unwrap_err();
        assert!(matches!(err, SpiralError::Plan(_)));
        // Neither is a runtime fault: the resilient path must not retry.
        assert!(!err.is_runtime_fault());
    }

    #[test]
    fn resilient_path_matches_plain_execution_when_healthy() {
        let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&f, 2, 4).unwrap();
        let exec = ParallelExecutor::new(2, BarrierKind::Park);
        let x = ramp(256);
        let outcome = exec.execute_resilient(&plan, &x).unwrap();
        assert!(outcome.degraded.is_none());
        assert_slices_close(&outcome.output, &plan.execute(&x), 1e-12);
    }
}
