//! # spiral-codegen — the SPL compiler (implementation level of Figure 1)
//!
//! Turns (fully expanded) SPL formulas into executable code:
//!
//! * [`lower`] — formulas → stage programs with explicit gather/scatter
//!   loop nests;
//! * [`fuse`] — loop merging (ref. [11] in the paper): permutations and
//!   diagonals fold into adjacent compute loops, so a Cooley–Tukey
//!   formula becomes `log N` kernel passes;
//! * [`codelet`] — genfft-style straight-line base-case kernels produced
//!   by partial evaluation, with hand-tuned paths for sizes 2/4/8;
//! * [`plan`] — the executable [`plan::Plan`]: steps separated by
//!   barriers, with the tagged parallel operators mapped to statically
//!   scheduled parallel steps;
//! * [`parallel`] — multithreaded execution on the `spiral-smp` pool;
//! * [`batch`] — batch-dimension parallel execution of many independent
//!   small transforms per pool dispatch (the serving layer's executor);
//! * [`hook`] — instrumentation interface replaying exact per-thread
//!   memory-access streams into the machine simulator;
//! * [`cemit`] — C source emission (OpenMP and pthreads flavors).
//!
//! Debug builds additionally run a statically installed plan validator
//! ([`plan::install_validator`]) before parallel execution — the hook
//! through which `spiral-verify`'s race audit and dataflow certification
//! guard the executor's `unsafe` shared-buffer access.
//!
//! ## Example
//!
//! ```
//! use spiral_rewrite::multicore_dft_expanded;
//! use spiral_codegen::plan::Plan;
//! use spiral_spl::cplx::Cplx;
//!
//! let formula = multicore_dft_expanded(64, 2, 4, None, 8).unwrap();
//! let plan = Plan::from_formula(&formula, 2, 4).unwrap();
//! let x: Vec<Cplx> = (0..64).map(|k| Cplx::real(k as f64)).collect();
//! let y = plan.execute(&x);
//! assert_eq!(y.len(), 64);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cemit;
pub mod codelet;
pub mod fuse;
pub mod hook;
pub mod lower;
pub mod parallel;
pub mod plan;
pub mod shard;
pub mod simd;
pub mod stage;
pub mod vectorize;

/// `usize` index → `u32` table entry. Permutation/gather tables store
/// `u32` to halve their footprint; a transform large enough to overflow
/// one (n > 2³²) is far beyond anything this workspace lowers, so the
/// conversion asserts instead of truncating.
pub(crate) fn u32_idx(v: usize) -> u32 {
    u32::try_from(v).expect("index exceeds u32 table range")
}

pub use batch::BatchExecutor;
pub use cemit::{emit_c, CFlavor};
pub use codelet::Codelet;
pub use hook::{MemHook, NullHook, Region};
pub use lower::{lower_seq, LowerError};
pub use parallel::{ExecOutcome, ParallelExecutor};
pub use plan::{install_validator, Plan, PlanValidator, PlanWorkspace, Step};
pub use shard::{shard_plan, ShardError, ShardSpec, ShardWorkspace};
pub use simd::detected_simd_width;
pub use spiral_smp::SpiralError;
pub use vectorize::{stage_alignment, vectorize_plan, vectorize_program};
