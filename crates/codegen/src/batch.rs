//! Batched execution: many independent small transforms per dispatch.
//!
//! The paper's parallel schedule only pays off above a size crossover —
//! below it, per-transform barrier and dispatch cost eats the speedup
//! (§4's small-`n` tail). Serving workloads are dominated by exactly
//! those small transforms, so [`BatchExecutor`] restores the speedup by
//! parallelizing over the *batch dimension* instead of inside each
//! transform: `B` independent size-`n` inputs are partitioned
//! contiguously across the pool threads, each thread runs its whole
//! transforms back-to-back through the allocation-free sequential
//! interpreter ([`Plan::execute_into`]) with a reused per-thread
//! workspace, and the entire batch costs **one** pool dispatch/join —
//! one synchronization set total, not one barrier per plan step per
//! transform.
//!
//! Because transforms are independent, there is no cross-thread
//! dataflow at all: each thread writes only its own transforms' output
//! rows, so the scheduling is race-free by construction (the same
//! disjoint-write argument `spiral-verify` checks for the stage
//! executor, but trivially satisfied here).
//!
//! The failure model mirrors [`crate::ParallelExecutor`]: worker panics
//! surface as [`SpiralError::WorkerPanic`] instead of poisoning the
//! caller, the pool watchdog bounds a wedged run, and non-finite values
//! never leave the executor.

use crate::plan::{Plan, PlanWorkspace};
use spiral_smp::error::SpiralError;
use spiral_smp::pool::Pool;
use spiral_spl::cplx::{first_non_finite, Cplx};

/// Executes batches of independent transforms across a persistent pool,
/// partitioned by the batch dimension.
pub struct BatchExecutor {
    pool: Pool,
    threads: usize,
}

/// Shared pointer to the per-transform output rows.
///
/// # Safety
///
/// `Sync` is sound because the batch partition assigns each transform
/// index `b` to exactly one thread (`share` produces disjoint
/// contiguous ranges covering `0..B`), and a thread touches only
/// `rows[b]` for its own `b` — no two threads ever alias a row, and the
/// rows themselves are separate allocations.
struct SharedRows {
    rows: *mut Vec<Cplx>,
    len: usize,
}
unsafe impl Sync for SharedRows {}

impl BatchExecutor {
    /// Executor with `threads` pool workers (including the caller).
    pub fn new(threads: usize) -> BatchExecutor {
        let threads = threads.max(1);
        BatchExecutor {
            pool: Pool::new(threads),
            threads,
        }
    }

    /// Number of worker threads (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the worker pool is in a runnable state.
    pub fn healthy(&self) -> bool {
        self.pool.healthy()
    }

    /// Execute `plan` once per input, in input order. Panics on failure;
    /// see [`try_execute_batch`](Self::try_execute_batch).
    pub fn execute_batch(&self, plan: &Plan, inputs: &[Vec<Cplx>]) -> Vec<Vec<Cplx>> {
        match self.try_execute_batch(plan, inputs) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Execute `plan` once per input, in input order, as one pool
    /// dispatch. Output `b` is the transform of `inputs[b]`, elementwise
    /// identical to `plan.execute(&inputs[b])` (both run the same
    /// interpreter). Worker panics, a wedged pool, and non-finite output
    /// all return `Err` in bounded time, and the executor remains usable
    /// afterwards.
    pub fn try_execute_batch(
        &self,
        plan: &Plan,
        inputs: &[Vec<Cplx>],
    ) -> Result<Vec<Vec<Cplx>>, SpiralError> {
        self.exec_impl(plan, inputs, BatchTrace::default())
    }

    /// Like [`try_execute_batch`](Self::try_execute_batch), but record a
    /// timestamped [`spiral_smp::trace::SpanKind::BatchTransform`] span
    /// per transform (stage = transform index within the batch) plus the
    /// pool-job spans into `timeline` — the batch-dimension counterpart
    /// of the stage executor's observed run.
    ///
    /// Only available with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn try_execute_batch_observed(
        &self,
        plan: &Plan,
        inputs: &[Vec<Cplx>],
        timeline: &dyn spiral_smp::trace::TimelineSink,
    ) -> Result<Vec<Vec<Cplx>>, SpiralError> {
        self.exec_impl(
            plan,
            inputs,
            BatchTrace {
                timeline: Some(timeline),
                _marker: std::marker::PhantomData,
            },
        )
    }

    fn exec_impl(
        &self,
        plan: &Plan,
        inputs: &[Vec<Cplx>],
        tr: BatchTrace<'_>,
    ) -> Result<Vec<Vec<Cplx>>, SpiralError> {
        let _ = &tr;
        for (b, x) in inputs.iter().enumerate() {
            if x.len() != plan.n {
                return Err(SpiralError::Plan(format!(
                    "batch input {b} has length {}, plan size is {}",
                    x.len(),
                    plan.n
                )));
            }
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut out: Vec<Vec<Cplx>> = inputs.iter().map(|_| vec![Cplx::ZERO; plan.n]).collect();
        let shared = SharedRows {
            rows: out.as_mut_ptr(),
            len: out.len(),
        };
        // Borrow the whole struct so the closure captures one
        // `&SharedRows` (disjoint capture would grab the bare non-Sync
        // pointer).
        let shared = &shared;
        let threads = self.threads;

        let job = |tid: usize| {
            let (lo, hi) = crate::plan::share(shared.len, threads, tid);
            let mut ws = PlanWorkspace::default();
            // `b` indexes `inputs` and the raw `shared.rows` pointer in
            // lockstep; an iterator over `inputs` would hide that pairing.
            #[allow(clippy::needless_range_loop)]
            for b in lo..hi {
                #[cfg(feature = "trace")]
                let t0 = tr.timeline.map(|_| std::time::Instant::now());
                // Safety: see SharedRows — `b` ranges are disjoint across
                // threads, so this is the row's only live reference.
                let row: &mut Vec<Cplx> = unsafe { &mut *shared.rows.add(b) };
                plan.execute_into(&inputs[b], row, &mut ws);
                #[cfg(feature = "trace")]
                if let (Some(tl), Some(t0)) = (tr.timeline, t0) {
                    tl.span(
                        tid,
                        spiral_smp::trace::SpanKind::BatchTransform,
                        crate::u32_idx(b),
                        t0,
                        std::time::Instant::now(),
                    );
                }
            }
        };
        #[cfg(feature = "trace")]
        let run_result = match tr.timeline {
            Some(tl) => self.pool.try_run_observed(&job, None, Some(tl)),
            None => self.pool.try_run(&job),
        };
        #[cfg(not(feature = "trace"))]
        let run_result = self.pool.try_run(&job);
        run_result?;

        // Corruption guard: non-finite values never leave the executor.
        for (b, row) in out.iter().enumerate() {
            if let Some(index) = first_non_finite(row) {
                return Err(SpiralError::NonFinite {
                    index,
                    context: format!("batch transform {b} of a {}-point plan", plan.n),
                });
            }
        }
        Ok(out)
    }
}

/// Optional tracing context for the batch run. Without the `trace`
/// feature this is a zero-sized struct and every use compiles out.
#[derive(Clone, Copy, Default)]
struct BatchTrace<'a> {
    /// Where timestamped per-transform spans go, when observing.
    #[cfg(feature = "trace")]
    timeline: Option<&'a dyn spiral_smp::trace::TimelineSink>,
    _marker: std::marker::PhantomData<&'a ()>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_rewrite::sequential_dft;
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn plan_for(n: usize) -> Plan {
        Plan::from_formula(&sequential_dft(n, 8), 1, 4).unwrap()
    }

    fn batch_inputs(b: usize, n: usize) -> Vec<Vec<Cplx>> {
        (0..b)
            .map(|k| {
                (0..n)
                    .map(|j| Cplx::new(j as f64 + k as f64 * 0.25, k as f64 - j as f64 * 0.5))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_execute_bitwise() {
        let n = 64;
        let plan = plan_for(n);
        for p in [1usize, 2, 3, 4] {
            let exec = BatchExecutor::new(p);
            for b in [1usize, 2, 7, 16] {
                let xs = batch_inputs(b, n);
                let got = exec.try_execute_batch(&plan, &xs).unwrap();
                assert_eq!(got.len(), b);
                for (y, x) in got.iter().zip(&xs) {
                    // Same interpreter on both paths → bitwise equal.
                    assert_eq!(y, &plan.execute(x));
                }
            }
        }
    }

    #[test]
    fn batch_computes_the_dft() {
        let n = 32;
        let plan = plan_for(n);
        let exec = BatchExecutor::new(2);
        let xs = batch_inputs(5, n);
        let got = exec.execute_batch(&plan, &xs);
        for (y, x) in got.iter().zip(&xs) {
            assert_slices_close(y, &dft(n).eval(x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn empty_batch_is_ok() {
        let exec = BatchExecutor::new(2);
        assert!(exec
            .try_execute_batch(&plan_for(16), &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wrong_length_input_is_rejected() {
        let exec = BatchExecutor::new(2);
        let mut xs = batch_inputs(3, 16);
        xs[1].pop();
        let err = exec.try_execute_batch(&plan_for(16), &xs).unwrap_err();
        assert!(matches!(err, SpiralError::Plan(_)), "{err}");
        assert!(err.to_string().contains("batch input 1"));
    }

    #[test]
    fn executor_is_reusable_across_batches_and_plans() {
        let exec = BatchExecutor::new(3);
        for n in [16usize, 64, 32] {
            let plan = plan_for(n);
            let xs = batch_inputs(9, n);
            let got = exec.execute_batch(&plan, &xs);
            for (y, x) in got.iter().zip(&xs) {
                assert_eq!(y, &plan.execute(x));
            }
        }
        assert!(exec.healthy());
    }

    #[test]
    fn more_threads_than_transforms_is_fine() {
        let n = 16;
        let plan = plan_for(n);
        let exec = BatchExecutor::new(4);
        let xs = batch_inputs(2, n);
        let got = exec.execute_batch(&plan, &xs);
        for (y, x) in got.iter().zip(&xs) {
            assert_eq!(y, &plan.execute(x));
        }
    }
}
