//! Executable stages — the loop-level IR the SPL compiler lowers to.
//!
//! A [`LocalProgram`] is a sequence of out-of-place stages over a vector
//! of some dimension. Kernel stages carry explicit *gather/scatter* index
//! maps (affine loop nests, optionally post-composed with a permutation
//! table) and an optional fused twiddle multiplication — the result of the
//! loop merging of [11]: permutations and diagonals are not executed as
//! separate passes but folded into the adjacent compute loop.

use crate::codelet::Codelet;
use spiral_spl::cplx::Cplx;
use std::sync::Arc;

/// One loop dimension of a kernel stage's iteration space.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LoopDim {
    /// Iteration count.
    pub count: usize,
    /// Input-index stride per iteration.
    pub in_stride: usize,
    /// Output-index stride per iteration.
    pub out_stride: usize,
}

/// Apply a codelet of size `c` across a loop nest.
///
/// For every multi-index `(i_0, …, i_{d-1})` over `loops` and every slot
/// `t < c`:
/// ```text
/// in_idx  = in_map ( in_off  + Σ i_d · in_stride_d  + t · in_t_stride  )
/// out_idx = out_map( out_off + Σ i_d · out_stride_d + t · out_t_stride )
/// ```
/// where `in_map`/`out_map` are optional fused permutation tables. If
/// `twiddle` is present, input slot `t` of flat iteration `i` is scaled by
/// `twiddle[i·c + t]` on load.
#[derive(Clone, Debug)]
pub struct KernelStage {
    /// The straight-line kernel applied at each iteration.
    pub codelet: Codelet,
    /// Outer loop nest (outermost first).
    pub loops: Vec<LoopDim>,
    /// Input base offset.
    pub in_off: usize,
    /// Output base offset.
    pub out_off: usize,
    /// Input stride between codelet slots.
    pub in_t_stride: usize,
    /// Output stride between codelet slots.
    pub out_t_stride: usize,
    /// Fused gather permutation (applied after the affine index).
    pub in_map: Option<Arc<Vec<u32>>>,
    /// Fused scatter permutation (applied after the affine index).
    pub out_map: Option<Arc<Vec<u32>>>,
    /// Scale-on-load table, indexed `[flat·c + t]`.
    pub twiddle: Option<Arc<Vec<Cplx>>>,
    /// Scale-on-store: output slot `t` of flat iteration `i` is multiplied
    /// by `twiddle_out[i·c + t]` before the scatter (fused trailing
    /// diagonal).
    pub twiddle_out: Option<Arc<Vec<Cplx>>>,
    /// Lane width ν of the short-vector backend (1 = scalar). Set by the
    /// `vectorize` pass only after proving the ν-alignment preconditions:
    /// the innermost loop is a contiguous lane loop (unit strides, count
    /// divisible by ν) and every other offset/stride/map is ν-granular,
    /// so a lane group is ν consecutive complex elements on both sides.
    pub vec_width: usize,
    /// Lane-grouped copy of `twiddle` for the vector path:
    /// `twiddle_lanes[g·c·ν + t·ν + l] = twiddle[(g·ν + l)·c + t]`.
    /// Present iff `vec_width > 1` and `twiddle` is present; the
    /// certification passes check the correspondence (a swapped lane
    /// shuffle is rejected IR).
    pub twiddle_lanes: Option<Arc<Vec<Cplx>>>,
    /// Lane-grouped copy of `twiddle_out` (same layout contract).
    pub twiddle_out_lanes: Option<Arc<Vec<Cplx>>>,
}

impl KernelStage {
    /// A bare codelet stage covering exactly `c` contiguous points.
    pub fn unit(codelet: Codelet) -> KernelStage {
        KernelStage {
            codelet,
            loops: Vec::new(),
            in_off: 0,
            out_off: 0,
            in_t_stride: 1,
            out_t_stride: 1,
            in_map: None,
            out_map: None,
            twiddle: None,
            twiddle_out: None,
            vec_width: 1,
            twiddle_lanes: None,
            twiddle_out_lanes: None,
        }
    }

    /// Total number of codelet applications.
    pub fn iterations(&self) -> usize {
        self.loops.iter().map(|l| l.count).product()
    }

    /// Points this stage covers (must equal the program dimension).
    pub fn span(&self) -> usize {
        self.iterations() * self.codelet.size()
    }

    /// Real flops of one full stage execution.
    pub fn flops(&self) -> u64 {
        let tw = self.twiddle.as_ref().map_or(0, |_| 6 * self.span() as u64)
            + self
                .twiddle_out
                .as_ref()
                .map_or(0, |_| 6 * self.span() as u64);
        self.iterations() as u64 * self.codelet.flops() + tw
    }

    /// Enumerate the iteration space in execution order:
    /// `f(flat, in_base, out_base)` for every flat iteration, where the
    /// bases are the affine indices *before* `in_map`/`out_map`
    /// indirection and `t`-stride offsets. This is the IR hook the
    /// certification passes (`spiral-verify::certify`) use to replay a
    /// stage's exact access pattern — including the `flat` index that
    /// [`trace`](Self::trace) discards but twiddle lookup
    /// (`twiddle[flat·c + t]`) depends on.
    pub fn for_each_iteration<F: FnMut(usize, usize, usize)>(&self, mut f: F) {
        let d = self.loops.len();
        let mut idx = vec![0usize; d];
        let mut in_base = self.in_off;
        let mut out_base = self.out_off;
        let total = self.iterations();
        for flat in 0..total {
            f(flat, in_base, out_base);
            // Odometer increment (innermost dimension last).
            for k in (0..d).rev() {
                idx[k] += 1;
                in_base += self.loops[k].in_stride;
                out_base += self.loops[k].out_stride;
                if idx[k] < self.loops[k].count {
                    break;
                }
                idx[k] = 0;
                in_base -= self.loops[k].count * self.loops[k].in_stride;
                out_base -= self.loops[k].count * self.loops[k].out_stride;
            }
        }
    }

    /// Execute `dst = stage(src)`.
    pub fn apply(&self, src: &[Cplx], dst: &mut [Cplx], scratch: &mut Scratch) {
        self.apply_view(SrcView::Local(src), dst, scratch);
    }

    /// Execute with an arbitrary input view (local slice or fused global
    /// gather). The view dispatch is monomorphized out of the inner loop.
    /// Stages marked by the `vectorize` pass take the ν-lane path when
    /// the view is a plain local slice; gathered views (fused exchanges
    /// read the *global* buffer through an arbitrary table, so lane
    /// groups need not be contiguous there) fall back to the scalar
    /// interpretation, which is always valid for vector-marked IR.
    pub fn apply_view(&self, src: SrcView<'_>, dst: &mut [Cplx], scratch: &mut Scratch) {
        let vec_width = if cfg!(feature = "force-scalar") {
            1
        } else {
            self.vec_width
        };
        match src {
            SrcView::Local(s) => match vec_width {
                2 => self.apply_vector::<2>(s, dst, scratch),
                4 => self.apply_vector::<4>(s, dst, scratch),
                _ => self.apply_inner(|i| s[i], dst, scratch),
            },
            SrcView::Gathered { buf, gather, off } => {
                self.apply_inner(|i| buf[gather[off + i] as usize], dst, scratch);
            }
        }
    }

    /// ν-lane execution: processes lane groups of `NU` consecutive flat
    /// iterations at once. The innermost lane loop has unit strides, so
    /// slot `t` of a group is `NU` consecutive complex elements on both
    /// the gather and scatter side; twiddles read the lane-grouped
    /// tables. Per-lane arithmetic matches the scalar path op-for-op.
    fn apply_vector<const NU: usize>(&self, src: &[Cplx], dst: &mut [Cplx], scratch: &mut Scratch) {
        let c = self.codelet.size();
        scratch.gather.resize(c * NU, Cplx::ZERO);
        scratch.result.resize(c * NU, Cplx::ZERO);
        let in_map = self.in_map.as_deref();
        let out_map = self.out_map.as_deref();
        let tw = self.twiddle_lanes.as_deref();
        let tw_out = self.twiddle_out_lanes.as_deref();
        self.for_each_iteration(|flat, in_base, out_base| {
            if !flat.is_multiple_of(NU) {
                return;
            }
            let gbase = (flat / NU) * c * NU;
            for t in 0..c {
                let a = in_base + t * self.in_t_stride;
                let start = match in_map {
                    Some(m) => m[a] as usize,
                    None => a,
                };
                scratch.gather[t * NU..(t + 1) * NU].copy_from_slice(&src[start..start + NU]);
            }
            if let Some(w) = tw {
                for (x, wv) in scratch.gather.iter_mut().zip(&w[gbase..gbase + c * NU]) {
                    *x *= *wv;
                }
            }
            self.codelet
                .apply_lanes::<NU>(&scratch.gather, &mut scratch.result, &mut scratch.dag);
            if let Some(w) = tw_out {
                for (x, wv) in scratch.result.iter_mut().zip(&w[gbase..gbase + c * NU]) {
                    *x *= *wv;
                }
            }
            for t in 0..c {
                let a = out_base + t * self.out_t_stride;
                let start = match out_map {
                    Some(m) => m[a] as usize,
                    None => a,
                };
                dst[start..start + NU].copy_from_slice(&scratch.result[t * NU..(t + 1) * NU]);
            }
        });
    }

    fn apply_inner<G: Fn(usize) -> Cplx>(&self, get: G, dst: &mut [Cplx], scratch: &mut Scratch) {
        let c = self.codelet.size();
        scratch.gather.resize(c, Cplx::ZERO);
        scratch.result.resize(c, Cplx::ZERO);
        let in_map = self.in_map.as_deref();
        let out_map = self.out_map.as_deref();
        let twiddle = self.twiddle.as_deref();
        let twiddle_out = self.twiddle_out.as_deref();
        self.for_each_iteration(|flat, in_base, out_base| {
            // Gather (with optional fused permutation and twiddle scaling)
            // — specialized loops keep the per-element path branch-free.
            match (in_map, twiddle) {
                (None, None) => {
                    for t in 0..c {
                        scratch.gather[t] = get(in_base + t * self.in_t_stride);
                    }
                }
                (Some(m), None) => {
                    for t in 0..c {
                        scratch.gather[t] = get(m[in_base + t * self.in_t_stride] as usize);
                    }
                }
                (None, Some(w)) => {
                    for t in 0..c {
                        scratch.gather[t] = get(in_base + t * self.in_t_stride) * w[flat * c + t];
                    }
                }
                (Some(m), Some(w)) => {
                    for t in 0..c {
                        scratch.gather[t] =
                            get(m[in_base + t * self.in_t_stride] as usize) * w[flat * c + t];
                    }
                }
            }
            self.codelet
                .apply(&scratch.gather, &mut scratch.result, &mut scratch.dag);
            // Scatter (with optional fused trailing diagonal).
            match (out_map, twiddle_out) {
                (None, None) => {
                    for t in 0..c {
                        dst[out_base + t * self.out_t_stride] = scratch.result[t];
                    }
                }
                (Some(m), None) => {
                    for t in 0..c {
                        dst[m[out_base + t * self.out_t_stride] as usize] = scratch.result[t];
                    }
                }
                (None, Some(w)) => {
                    for t in 0..c {
                        dst[out_base + t * self.out_t_stride] = scratch.result[t] * w[flat * c + t];
                    }
                }
                (Some(m), Some(w)) => {
                    for t in 0..c {
                        dst[m[out_base + t * self.out_t_stride] as usize] =
                            scratch.result[t] * w[flat * c + t];
                    }
                }
            }
        });
    }

    /// Emit the memory-access stream of one execution (for the machine
    /// simulator): `f(is_write, idx)` in program order — the `c` reads of
    /// each iteration, then its `c` writes.
    pub fn trace<F: FnMut(bool, usize)>(&self, mut f: F) {
        let c = self.codelet.size();
        let in_map = self.in_map.as_deref();
        let out_map = self.out_map.as_deref();
        self.for_each_iteration(|_flat, in_base, out_base| {
            for t in 0..c {
                let mut idx = in_base + t * self.in_t_stride;
                if let Some(m) = in_map {
                    idx = m[idx] as usize;
                }
                f(false, idx);
            }
            for t in 0..c {
                let mut idx = out_base + t * self.out_t_stride;
                if let Some(m) = out_map {
                    idx = m[idx] as usize;
                }
                f(true, idx);
            }
        });
    }
}

/// Reusable per-thread scratch for kernel execution.
#[derive(Default)]
pub struct Scratch {
    /// Gathered codelet input slots.
    pub gather: Vec<Cplx>,
    /// Codelet output slots.
    pub result: Vec<Cplx>,
    /// DAG-interpreter value store.
    pub dag: Vec<Cplx>,
}

/// Input view of a stage: either a local slice, or an indirected view
/// into a *global* buffer through a permutation table — the executable
/// form of a fused `P ⊗̄ I_µ` exchange (the paper's [11]-style merging of
/// permutations into the adjacent compute loop, applied across the
/// parallel boundary).
#[derive(Copy, Clone)]
pub enum SrcView<'a> {
    /// A plain local slice.
    Local(&'a [Cplx]),
    /// `value(i) = buf[gather[off + i]]`.
    Gathered {
        /// The global buffer.
        buf: &'a [Cplx],
        /// The gather table (size of the global buffer).
        gather: &'a [u32],
        /// This chunk's offset into the table.
        off: usize,
    },
}

impl<'a> SrcView<'a> {
    /// Value at logical index `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> Cplx {
        match self {
            SrcView::Local(s) => s[i],
            SrcView::Gathered { buf, gather, off } => buf[gather[off + i] as usize],
        }
    }

    /// The absolute index this view reads for logical index `i` (for
    /// tracing: gathered views address the global buffer).
    #[inline]
    pub fn global_index(&self, i: usize) -> usize {
        match self {
            SrcView::Local(_) => i,
            SrcView::Gathered { gather, off, .. } => gather[off + i] as usize,
        }
    }

    /// True when this view reads through a gather table.
    pub fn is_gathered(&self) -> bool {
        matches!(self, SrcView::Gathered { .. })
    }
}

/// One out-of-place stage of a local program.
#[derive(Clone, Debug)]
pub enum LocalStage {
    /// A codelet loop nest.
    Kernel(KernelStage),
    /// `dst[i] = src[table[i]]`.
    Permute(Arc<Vec<u32>>),
    /// `dst[i] = src[i] * table[i]`.
    Scale(Arc<Vec<Cplx>>),
}

impl LocalStage {
    /// Real flops of one application over a `dim`-point vector.
    pub fn flops(&self, dim: usize) -> u64 {
        match self {
            LocalStage::Kernel(k) => k.flops(),
            LocalStage::Permute(_) => 0,
            LocalStage::Scale(_) => 6 * dim as u64,
        }
    }

    /// Execute `dst = stage(src)`.
    pub fn apply(&self, src: &[Cplx], dst: &mut [Cplx], scratch: &mut Scratch) {
        self.apply_view(SrcView::Local(src), dst, scratch);
    }

    /// Execute with an arbitrary input view (dispatch hoisted out of the
    /// element loops).
    pub fn apply_view(&self, src: SrcView<'_>, dst: &mut [Cplx], scratch: &mut Scratch) {
        match self {
            LocalStage::Kernel(k) => k.apply_view(src, dst, scratch),
            LocalStage::Permute(t) => match src {
                SrcView::Local(s) => {
                    for (d, &i) in dst.iter_mut().zip(t.iter()) {
                        *d = s[i as usize];
                    }
                }
                SrcView::Gathered { buf, gather, off } => {
                    for (d, &i) in dst.iter_mut().zip(t.iter()) {
                        *d = buf[gather[off + i as usize] as usize];
                    }
                }
            },
            LocalStage::Scale(w) => match src {
                SrcView::Local(s) => {
                    for ((d, wi), v) in dst.iter_mut().zip(w.iter()).zip(s.iter()) {
                        *d = *v * *wi;
                    }
                }
                SrcView::Gathered { buf, gather, off } => {
                    for (i, (d, wi)) in dst.iter_mut().zip(w.iter()).enumerate() {
                        *d = buf[gather[off + i] as usize] * *wi;
                    }
                }
            },
        }
    }

    /// Emit `f(is_write, idx)` for every access of one application.
    pub fn trace<F: FnMut(bool, usize)>(&self, dim: usize, mut f: F) {
        match self {
            LocalStage::Kernel(k) => k.trace(f),
            LocalStage::Permute(t) => {
                for (i, &s) in t.iter().enumerate() {
                    f(false, s as usize);
                    f(true, i);
                }
            }
            LocalStage::Scale(_) => {
                for i in 0..dim {
                    f(false, i);
                    f(true, i);
                }
            }
        }
    }
}

/// A sequence of out-of-place stages on vectors of dimension `dim`.
/// An empty program denotes the identity.
#[derive(Clone, Debug, Default)]
pub struct LocalProgram {
    /// Vector dimension every stage operates on.
    pub dim: usize,
    /// Stages in application order.
    pub stages: Vec<LocalStage>,
}

impl LocalProgram {
    /// The empty (identity) program.
    pub fn identity(dim: usize) -> LocalProgram {
        LocalProgram {
            dim,
            stages: Vec::new(),
        }
    }

    /// Total real flops of one execution.
    pub fn flops(&self) -> u64 {
        self.stages.iter().map(|s| s.flops(self.dim)).sum()
    }

    /// Execute `dst = program(src)`. `tmp` must have length ≥ `dim`; it is
    /// used for intermediate ping-ponging so `src` is never written.
    pub fn run(&self, src: &[Cplx], dst: &mut [Cplx], tmp: &mut [Cplx], scratch: &mut Scratch) {
        self.run_view(SrcView::Local(src), dst, tmp, scratch);
    }

    /// Execute with an arbitrary input view feeding the first stage
    /// (used by fused-exchange parallel steps).
    pub fn run_view(
        &self,
        src: SrcView<'_>,
        dst: &mut [Cplx],
        tmp: &mut [Cplx],
        scratch: &mut Scratch,
    ) {
        let l = self.stages.len();
        assert!(dst.len() == self.dim);
        assert!(tmp.len() >= self.dim);
        if l == 0 {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = src.get(i);
            }
            return;
        }
        let tmp = &mut tmp[..self.dim];
        // Targets alternate so that stage L-1 writes `dst`.
        for (k, stage) in self.stages.iter().enumerate() {
            let to_dst = (l - 1 - k).is_multiple_of(2);
            match (k == 0, to_dst) {
                (true, true) => stage.apply_view(src, dst, scratch),
                (true, false) => stage.apply_view(src, tmp, scratch),
                (false, true) => stage.apply(tmp, dst, scratch),
                (false, false) => stage.apply(dst, tmp, scratch),
            }
        }
    }

    /// Convenience out-of-place evaluation (allocates).
    pub fn eval(&self, src: &[Cplx]) -> Vec<Cplx> {
        let mut dst = vec![Cplx::ZERO; self.dim];
        let mut tmp = vec![Cplx::ZERO; self.dim];
        let mut scratch = Scratch::default();
        self.run(src, &mut dst, &mut tmp, &mut scratch);
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::assert_slices_close;
    use spiral_spl::perm::Perm;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(k as f64 + 1.0, -(k as f64)))
            .collect()
    }

    #[test]
    fn unit_kernel_stage_is_plain_codelet() {
        let stage = KernelStage::unit(Codelet::F2);
        assert_eq!(stage.span(), 2);
        let x = ramp(2);
        let mut y = vec![Cplx::ZERO; 2];
        stage.apply(&x, &mut y, &mut Scratch::default());
        assert!(y[0].approx_eq(x[0] + x[1], 1e-12));
        assert!(y[1].approx_eq(x[0] - x[1], 1e-12));
    }

    #[test]
    fn block_loop_matches_i_tensor_a() {
        // I_3 ⊗ F_2: 3 contiguous blocks.
        let mut stage = KernelStage::unit(Codelet::F2);
        stage.loops.push(LoopDim {
            count: 3,
            in_stride: 2,
            out_stride: 2,
        });
        assert_eq!(stage.span(), 6);
        let x = ramp(6);
        let mut y = vec![Cplx::ZERO; 6];
        stage.apply(&x, &mut y, &mut Scratch::default());
        let want =
            spiral_spl::builder::tensor(spiral_spl::builder::i(3), spiral_spl::builder::f2())
                .eval(&x);
        assert_slices_close(&y, &want, 1e-12);
    }

    #[test]
    fn stride_loop_matches_a_tensor_i() {
        // F_2 ⊗ I_3: codelet at stride 3, loop stride 1.
        let mut stage = KernelStage::unit(Codelet::F2);
        stage.in_t_stride = 3;
        stage.out_t_stride = 3;
        stage.loops.push(LoopDim {
            count: 3,
            in_stride: 1,
            out_stride: 1,
        });
        let x = ramp(6);
        let mut y = vec![Cplx::ZERO; 6];
        stage.apply(&x, &mut y, &mut Scratch::default());
        let want =
            spiral_spl::builder::tensor(spiral_spl::builder::f2(), spiral_spl::builder::i(3))
                .eval(&x);
        assert_slices_close(&y, &want, 1e-12);
    }

    #[test]
    fn fused_gather_permutation() {
        // (I_2 ⊗ F_2) L^4_2 with the stride permutation fused as a gather.
        let l = Perm::stride(4, 2);
        let table: Arc<Vec<u32>> = Arc::new(l.table().iter().map(|&v| crate::u32_idx(v)).collect());
        let mut stage = KernelStage::unit(Codelet::F2);
        stage.loops.push(LoopDim {
            count: 2,
            in_stride: 2,
            out_stride: 2,
        });
        stage.in_map = Some(table);
        let x = ramp(4);
        let mut y = vec![Cplx::ZERO; 4];
        stage.apply(&x, &mut y, &mut Scratch::default());
        let want = spiral_spl::builder::compose(vec![
            spiral_spl::builder::tensor(spiral_spl::builder::i(2), spiral_spl::builder::f2()),
            spiral_spl::builder::stride(4, 2),
        ])
        .eval(&x);
        assert_slices_close(&y, &want, 1e-12);
    }

    #[test]
    fn fused_twiddle_scaling() {
        // (I_2 ⊗ F_2) · diag(w): twiddle applied on load.
        let w: Vec<Cplx> = (0..4).map(|k| Cplx::cis(0.3 * k as f64)).collect();
        let mut stage = KernelStage::unit(Codelet::F2);
        stage.loops.push(LoopDim {
            count: 2,
            in_stride: 2,
            out_stride: 2,
        });
        stage.twiddle = Some(Arc::new(w.clone()));
        let x = ramp(4);
        let mut y = vec![Cplx::ZERO; 4];
        stage.apply(&x, &mut y, &mut Scratch::default());
        let want = spiral_spl::builder::compose(vec![
            spiral_spl::builder::tensor(spiral_spl::builder::i(2), spiral_spl::builder::f2()),
            spiral_spl::builder::diag(w),
        ])
        .eval(&x);
        assert_slices_close(&y, &want, 1e-12);
    }

    #[test]
    fn permute_and_scale_stages() {
        let perm = Perm::stride(6, 2);
        let table: Arc<Vec<u32>> =
            Arc::new(perm.table().iter().map(|&v| crate::u32_idx(v)).collect());
        let x = ramp(6);
        let mut y = vec![Cplx::ZERO; 6];
        LocalStage::Permute(table).apply(&x, &mut y, &mut Scratch::default());
        for r in 0..6 {
            assert!(y[r].approx_eq(x[perm.src(r)], 0.0));
        }
        let w: Vec<Cplx> = (0..6).map(|k| Cplx::real(k as f64)).collect();
        let mut z = vec![Cplx::ZERO; 6];
        LocalStage::Scale(Arc::new(w.clone())).apply(&x, &mut z, &mut Scratch::default());
        for r in 0..6 {
            assert!(z[r].approx_eq(x[r] * w[r], 1e-12));
        }
    }

    #[test]
    fn program_ping_pong_any_length() {
        // Four F2-block stages compose: (I2⊗F2)^4 = 4·(I2⊗I2)... i.e.
        // applying the same stage repeatedly; check against formula eval.
        let mut stage = KernelStage::unit(Codelet::F2);
        stage.loops.push(LoopDim {
            count: 2,
            in_stride: 2,
            out_stride: 2,
        });
        for len in 1..=4 {
            let prog = LocalProgram {
                dim: 4,
                stages: vec![LocalStage::Kernel(stage.clone()); len],
            };
            let x = ramp(4);
            let got = prog.eval(&x);
            let f =
                spiral_spl::builder::tensor(spiral_spl::builder::i(2), spiral_spl::builder::f2());
            let mut want = x.clone();
            for _ in 0..len {
                want = f.eval(&want);
            }
            assert_slices_close(&got, &want, 1e-10);
        }
    }

    #[test]
    fn empty_program_is_identity() {
        let prog = LocalProgram::identity(5);
        let x = ramp(5);
        assert_slices_close(&prog.eval(&x), &x, 0.0);
        assert_eq!(prog.flops(), 0);
    }

    #[test]
    fn trace_covers_all_outputs_once() {
        let mut stage = KernelStage::unit(Codelet::F2);
        stage.loops.push(LoopDim {
            count: 4,
            in_stride: 2,
            out_stride: 2,
        });
        let mut writes = vec![0usize; 8];
        let mut reads = vec![0usize; 8];
        stage.trace(|is_write, idx| {
            if is_write {
                writes[idx] += 1;
            } else {
                reads[idx] += 1;
            }
        });
        assert!(writes.iter().all(|&c| c == 1), "{writes:?}");
        assert!(reads.iter().all(|&c| c == 1), "{reads:?}");
    }

    #[test]
    fn flop_accounting() {
        let mut stage = KernelStage::unit(Codelet::F2);
        stage.loops.push(LoopDim {
            count: 4,
            in_stride: 2,
            out_stride: 2,
        });
        assert_eq!(stage.flops(), 16);
        let mut with_tw = stage.clone();
        with_tw.twiddle = Some(Arc::new(vec![Cplx::ONE; 8]));
        assert_eq!(with_tw.flops(), 16 + 48);
    }
}
