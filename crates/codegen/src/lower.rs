//! Lowering SPL formulas to stage programs.
//!
//! `lower_seq` compiles a (sequential) formula to a [`LocalProgram`]:
//! composition becomes stage sequencing (right factor first), tensor
//! products with identities become loop lifting — `I_m ⊗ ·` replicates a
//! stage across `m` blocks, `· ⊗ I_k` spreads it across stride-`k` lanes —
//! and permutations/diagonals become explicit stages that the fusion pass
//! (`fuse`) then merges into adjacent compute loops.

use crate::codelet::Codelet;
use crate::stage::{KernelStage, LocalProgram, LocalStage, LoopDim};
use spiral_spl::ast::Spl;
use spiral_spl::cplx::Cplx;
use spiral_spl::perm::Perm;
use std::sync::Arc;

/// Lowering failure: the formula contains structure the stage IR cannot
/// express (not produced by this generator's derivations).
#[derive(Clone, Debug)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot lower formula: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Largest `DFT_n` leaf that becomes a codelet; bigger unexpanded DFTs
/// are rejected so that an un-expanded non-terminal cannot silently turn
/// into an O(n²) kernel.
pub const MAX_CODELET: usize = 64;

/// Compile a formula to a sequential stage program.
pub fn lower_seq(f: &Spl) -> Result<LocalProgram, LowerError> {
    match f {
        Spl::I(n) => Ok(LocalProgram::identity(*n)),
        Spl::F2 => Ok(kernel_program(Codelet::F2)),
        Spl::Dft(k) => {
            if *k > MAX_CODELET {
                return Err(LowerError(format!(
                    "DFT_{k} leaf exceeds MAX_CODELET={MAX_CODELET}; expand it first"
                )));
            }
            Ok(kernel_program(Codelet::for_size(*k)))
        }
        Spl::Diag(d) => Ok(LocalProgram {
            dim: d.len(),
            stages: vec![LocalStage::Scale(Arc::new(d.entries()))],
        }),
        Spl::Perm(p) => Ok(perm_program(p)),
        Spl::PermBar { perm, mu } => {
            let full = Perm::TensorId(Box::new(perm.clone()), *mu);
            Ok(perm_program(&full))
        }
        Spl::Compose(fs) => {
            let dim = f.dim();
            let mut stages = Vec::new();
            for factor in fs.iter().rev() {
                let prog = lower_seq(factor)?;
                if prog.dim != dim {
                    return Err(LowerError(format!(
                        "composition dimension mismatch: {} vs {}",
                        prog.dim, dim
                    )));
                }
                stages.extend(prog.stages);
            }
            Ok(LocalProgram { dim, stages })
        }
        Spl::Tensor(a, b) => match (&**a, &**b) {
            (Spl::I(m), x) => Ok(lift_block(lower_seq(x)?, *m)),
            (x, Spl::I(k)) => Ok(lift_stride(lower_seq(x)?, *k)),
            (x, y) => {
                // A ⊗ B = (A ⊗ I_nb) (I_na ⊗ B)
                let (na, nb) = (x.dim(), y.dim());
                let mut prog = lift_block(lower_seq(y)?, na);
                let left = lift_stride(lower_seq(x)?, nb);
                prog.stages.extend(left.stages);
                Ok(prog)
            }
        },
        Spl::TensorPar { p, a } => Ok(lift_block(lower_seq(a)?, *p)),
        Spl::DirectSum(fs) | Spl::DirectSumPar(fs) => lower_direct_sum(fs),
        // Tags are semantically transparent to sequential lowering; the
        // vec(ν) hint is honored later by the post-fusion `vectorize` pass.
        Spl::Smp { a, .. } | Spl::Vec { a, .. } | Spl::Dist { a, .. } => lower_seq(a),
    }
}

fn kernel_program(c: Codelet) -> LocalProgram {
    let dim = c.size();
    LocalProgram {
        dim,
        stages: vec![LocalStage::Kernel(KernelStage::unit(c))],
    }
}

fn perm_program(p: &Perm) -> LocalProgram {
    let table: Vec<u32> = p.table().iter().map(|&v| crate::u32_idx(v)).collect();
    LocalProgram {
        dim: p.dim(),
        stages: vec![LocalStage::Permute(Arc::new(table))],
    }
}

/// Direct sums are supported when all blocks are diagonals (twiddle
/// segments from rule (11)) or all permutations — the forms the generator
/// produces. A block-diagonal of general programs would need per-block
/// stage alignment, which the IR deliberately does not model.
fn lower_direct_sum(fs: &[Spl]) -> Result<LocalProgram, LowerError> {
    let dim: usize = fs.iter().map(|b| b.dim()).sum();
    if fs.iter().all(|b| matches!(b, Spl::Diag(_))) {
        let mut table = Vec::with_capacity(dim);
        for b in fs {
            if let Spl::Diag(d) = b {
                table.extend(d.entries());
            }
        }
        return Ok(LocalProgram {
            dim,
            stages: vec![LocalStage::Scale(Arc::new(table))],
        });
    }
    if fs.iter().all(|b| b.as_perm().is_some()) {
        let mut table = Vec::with_capacity(dim);
        let mut off = 0u32;
        for b in fs {
            let p = b.as_perm().unwrap();
            table.extend(p.table().iter().map(|&v| off + crate::u32_idx(v)));
            off += crate::u32_idx(p.dim());
        }
        return Ok(LocalProgram {
            dim,
            stages: vec![LocalStage::Permute(Arc::new(table))],
        });
    }
    Err(LowerError(
        "direct sum of non-diagonal, non-permutation blocks".to_string(),
    ))
}

/// Lift a program under `I_m ⊗ ·`: every stage repeats over `m`
/// consecutive blocks of the original dimension.
pub fn lift_block(prog: LocalProgram, m: usize) -> LocalProgram {
    if m == 1 {
        return prog;
    }
    let d = prog.dim;
    let stages = prog
        .stages
        .into_iter()
        .map(|s| match s {
            LocalStage::Kernel(mut k) => {
                k.loops.insert(
                    0,
                    LoopDim {
                        count: m,
                        in_stride: d,
                        out_stride: d,
                    },
                );
                k.in_map = k.in_map.map(|t| Arc::new(block_lift_table(&t, m, d)));
                k.out_map = k.out_map.map(|t| Arc::new(block_lift_table(&t, m, d)));
                let block_rep = |w: Arc<Vec<Cplx>>| {
                    let mut big = Vec::with_capacity(w.len() * m);
                    for _ in 0..m {
                        big.extend_from_slice(&w);
                    }
                    Arc::new(big)
                };
                k.twiddle = k.twiddle.map(block_rep);
                k.twiddle_out = k.twiddle_out.map(block_rep);
                LocalStage::Kernel(k)
            }
            LocalStage::Permute(t) => LocalStage::Permute(Arc::new(block_lift_table(&t, m, d))),
            LocalStage::Scale(w) => {
                let mut big = Vec::with_capacity(w.len() * m);
                for _ in 0..m {
                    big.extend_from_slice(&w);
                }
                LocalStage::Scale(Arc::new(big))
            }
        })
        .collect();
    LocalProgram { dim: d * m, stages }
}

fn block_lift_table(t: &[u32], m: usize, d: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(t.len() * m);
    for q in 0..crate::u32_idx(m) {
        out.extend(t.iter().map(|&v| q * crate::u32_idx(d) + v));
    }
    out
}

/// Lift a program under `· ⊗ I_k`: every point becomes `k` interleaved
/// lanes; strides and offsets scale by `k` and an innermost lane loop is
/// appended.
pub fn lift_stride(prog: LocalProgram, k: usize) -> LocalProgram {
    if k == 1 {
        return prog;
    }
    let d = prog.dim;
    let stages = prog
        .stages
        .into_iter()
        .map(|s| match s {
            LocalStage::Kernel(mut ks) => {
                for l in &mut ks.loops {
                    l.in_stride *= k;
                    l.out_stride *= k;
                }
                ks.in_off *= k;
                ks.out_off *= k;
                ks.in_t_stride *= k;
                ks.out_t_stride *= k;
                ks.loops.push(LoopDim {
                    count: k,
                    in_stride: 1,
                    out_stride: 1,
                });
                ks.in_map = ks.in_map.map(|t| Arc::new(stride_lift_table(&t, k)));
                ks.out_map = ks.out_map.map(|t| Arc::new(stride_lift_table(&t, k)));
                // New flat order interleaves the lane loop innermost:
                // flat' = flat·k + lane, same twiddle for every lane.
                let c = ks.codelet.size();
                let lane_rep = |w: Arc<Vec<Cplx>>| {
                    let iters = w.len() / c;
                    let mut big = Vec::with_capacity(w.len() * k);
                    for f in 0..iters {
                        for _ in 0..k {
                            big.extend_from_slice(&w[f * c..(f + 1) * c]);
                        }
                    }
                    Arc::new(big)
                };
                ks.twiddle = ks.twiddle.map(lane_rep);
                ks.twiddle_out = ks.twiddle_out.map(lane_rep);
                LocalStage::Kernel(ks)
            }
            LocalStage::Permute(t) => LocalStage::Permute(Arc::new(stride_lift_table(&t, k))),
            LocalStage::Scale(w) => {
                let mut big = Vec::with_capacity(w.len() * k);
                for i in 0..d * k {
                    big.push(w[i / k]);
                }
                LocalStage::Scale(Arc::new(big))
            }
        })
        .collect();
    LocalProgram { dim: d * k, stages }
}

fn stride_lift_table(t: &[u32], k: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(t.len() * k);
    for i in 0..t.len() * k {
        out.push(t[i / k] * crate::u32_idx(k) + crate::u32_idx(i % k));
    }
    out
}

/// Twiddle table for a scale value vector indexed by the *gathered*
/// positions of a kernel stage: `w_slot[flat·c + t] = w[input index of
/// (flat, t)]`. Used by the fusion pass.
pub fn twiddle_for_kernel(k: &KernelStage, w: &[Cplx]) -> Vec<Cplx> {
    let c = k.codelet.size();
    let mut out = Vec::with_capacity(k.iterations() * c);
    k.trace(|is_write, idx| {
        if !is_write {
            out.push(w[idx]);
        }
    });
    out
}

/// Scale table for a diagonal *following* a kernel, keyed by the
/// kernel's scatter positions: `w_slot[flat·c + t] = w[output index of
/// (flat, t)]`. Used by the fusion pass for scale-on-store.
pub fn twiddle_for_kernel_out(k: &KernelStage, w: &[Cplx]) -> Vec<Cplx> {
    let c = k.codelet.size();
    let mut out = Vec::with_capacity(k.iterations() * c);
    k.trace(|is_write, idx| {
        if is_write {
            out.push(w[idx]);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::builder::*;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(j as f64 + 0.5, 1.0 - j as f64 * 0.3))
            .collect()
    }

    /// Lowering must preserve semantics exactly.
    fn check_lower(f: &Spl) {
        let prog = lower_seq(f).unwrap_or_else(|e| panic!("lowering {f} failed: {e}"));
        assert_eq!(prog.dim, f.dim(), "{f}");
        let x = ramp(f.dim());
        let want = f.eval(&x);
        let got = prog.eval(&x);
        assert_slices_close(&got, &want, 1e-9 * f.dim() as f64);
    }

    #[test]
    fn primitives_lower() {
        check_lower(&f2());
        check_lower(&dft(4));
        check_lower(&dft(7));
        check_lower(&twiddle(2, 4));
        check_lower(&stride(12, 3));
        check_lower(&i(6));
    }

    #[test]
    fn tensor_forms_lower() {
        check_lower(&tensor(i(3), f2()));
        check_lower(&tensor(f2(), i(3)));
        check_lower(&tensor(i(2), tensor(f2(), i(2))));
        check_lower(&tensor(tensor(f2(), i(2)), i(3)));
        check_lower(&tensor(dft(3), dft(4))); // general A ⊗ B
    }

    #[test]
    fn compose_lowers_right_to_left() {
        check_lower(&cooley_tukey(2, 4));
        check_lower(&cooley_tukey(4, 4));
        check_lower(&six_step(4, 4));
    }

    #[test]
    fn recursive_expansion_lowers() {
        use spiral_rewrite::RuleTree;
        for n in [8usize, 16, 32, 24] {
            let f = RuleTree::balanced(n, 4).expand().normalized();
            check_lower(&f);
        }
    }

    #[test]
    fn parallel_constructs_lower_sequentially() {
        check_lower(&tensor_par(2, tensor(i(2), f2())));
        check_lower(&perm_bar(spiral_spl::perm::Perm::stride(4, 2), 2));
        check_lower(&dsum_par(vec![twiddle(2, 2), twiddle(2, 2)]));
    }

    #[test]
    fn full_multicore_formula_lowers() {
        use spiral_rewrite::multicore_dft_expanded;
        let f = multicore_dft_expanded(64, 2, 4, None, 8).unwrap();
        check_lower(&f);
    }

    #[test]
    fn direct_sum_of_perms_lowers() {
        check_lower(&dsum(vec![stride(4, 2), stride(4, 2)]));
    }

    #[test]
    fn direct_sum_of_general_blocks_rejected() {
        let f = dsum(vec![dft(2), dft(2)]);
        assert!(lower_seq(&f).is_err());
    }

    #[test]
    fn oversized_dft_leaf_rejected() {
        let f = dft(128);
        let err = lower_seq(&f).unwrap_err();
        assert!(err.0.contains("MAX_CODELET"), "{err}");
    }

    #[test]
    fn lift_block_and_stride_compose() {
        // (I_2 ⊗ F_2) ⊗ I_3 nested lift.
        let f = tensor(tensor(i(2), f2()), i(3));
        check_lower(&f);
        // I_3 ⊗ (F_2 ⊗ I_2)
        let g = tensor(i(3), tensor(f2(), i(2)));
        check_lower(&g);
    }

    #[test]
    fn twiddle_for_kernel_matches_gather_order() {
        // Kernel (I_2 ⊗ F_2) with w = position index; gathered order is
        // identity here, so the twiddle table equals w.
        let mut k = KernelStage::unit(Codelet::F2);
        k.loops.push(LoopDim {
            count: 2,
            in_stride: 2,
            out_stride: 2,
        });
        let w: Vec<Cplx> = (0..4).map(|i| Cplx::real(i as f64)).collect();
        let tw = twiddle_for_kernel(&k, &w);
        assert_eq!(tw.len(), 4);
        for (i, v) in tw.iter().enumerate() {
            assert!(v.approx_eq(w[i], 0.0));
        }
    }
}
