//! Instrumentation interface for the machine simulator.
//!
//! Traced execution replays the exact memory-access streams the parallel
//! executor would generate — which thread touches which buffer element in
//! which order, where the barriers fall — without needing real hardware
//! parallelism. The `spiral-sim` crate implements [`MemHook`] with a cache
//! and coherence model.

/// Identity of a buffer in the executor's address space.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Region {
    /// Ping buffer (holds the input initially).
    BufA,
    /// Pong buffer.
    BufB,
    /// Thread-`tid`'s private scratch.
    Tmp(usize),
}

impl Region {
    /// Map to a distinct element-address base given the transform size
    /// `n` and a per-region alignment of `mu` elements. Regions are laid
    /// out far apart so they never share cache lines.
    pub fn base(self, n: usize, mu: usize) -> usize {
        let span = (n + mu).next_power_of_two().max(mu);
        match self {
            Region::BufA => 0,
            Region::BufB => span,
            Region::Tmp(t) => 2 * span + (t + 1) * span,
        }
    }
}

/// Observer of a traced plan execution. Element indices are logical
/// (multiply by 16 bytes for byte addresses).
pub trait MemHook {
    /// Thread `tid` reads element `idx` of `region`.
    fn read(&mut self, tid: usize, region: Region, idx: usize);
    /// Thread `tid` writes element `idx` of `region`.
    fn write(&mut self, tid: usize, region: Region, idx: usize);
    /// Thread `tid` performs `count` real flops.
    fn flops(&mut self, tid: usize, count: u64);
    /// All threads synchronize (end of a plan step).
    fn barrier(&mut self);
    /// Thread `tid` pays fixed overhead (in machine cycles): thread
    /// spawning, planner bookkeeping, etc. Used by baseline models (e.g.
    /// FFTW-style per-region thread creation when pooling is off).
    /// Default: ignored.
    fn overhead(&mut self, _tid: usize, _cycles: f64) {}
}

/// A hook that ignores everything (for testing the traced-execution path
/// itself).
#[derive(Default)]
pub struct NullHook;

impl MemHook for NullHook {
    fn read(&mut self, _: usize, _: Region, _: usize) {}
    fn write(&mut self, _: usize, _: Region, _: usize) {}
    fn flops(&mut self, _: usize, _: u64) {}
    fn barrier(&mut self) {}
}

/// A hook that counts events — used by tests to assert trace structure.
#[derive(Default, Debug)]
pub struct CountingHook {
    /// Total element reads observed.
    pub reads: u64,
    /// Total element writes observed.
    pub writes: u64,
    /// Total flops observed.
    pub flops: u64,
    /// Barriers observed.
    pub barriers: u64,
    /// Flops observed per thread id.
    pub per_tid_flops: std::collections::HashMap<usize, u64>,
}

impl MemHook for CountingHook {
    fn read(&mut self, _tid: usize, _r: Region, _i: usize) {
        self.reads += 1;
    }
    fn write(&mut self, _tid: usize, _r: Region, _i: usize) {
        self.writes += 1;
    }
    fn flops(&mut self, tid: usize, count: u64) {
        self.flops += count;
        *self.per_tid_flops.entry(tid).or_insert(0) += count;
    }
    fn barrier(&mut self) {
        self.barriers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_never_overlap() {
        let n = 100;
        let mu = 4;
        let spans: Vec<(usize, usize)> = [
            Region::BufA,
            Region::BufB,
            Region::Tmp(0),
            Region::Tmp(1),
            Region::Tmp(3),
        ]
        .iter()
        .map(|r| (r.base(n, mu), r.base(n, mu) + n))
        .collect();
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                assert!(a.1 <= b.0 || b.1 <= a.0, "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn region_bases_are_line_aligned() {
        for r in [Region::BufA, Region::BufB, Region::Tmp(0), Region::Tmp(5)] {
            assert_eq!(r.base(1000, 4) % 4, 0);
        }
    }
}
