//! Property-based tests for the SPL language invariants.

use proptest::prelude::*;
use spiral_spl::builder::*;
use spiral_spl::cplx::{assert_slices_close, Cplx};
use spiral_spl::perm::Perm;
use spiral_spl::Spl;

fn cplx_vec(n: usize) -> impl Strategy<Value = Vec<Cplx>> {
    prop::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Cplx::new(re, im)),
        n,
    )
}

/// Random small SPL formula of the given dimension built from the
/// constructs the rewriting system manipulates.
fn formula(dim: usize) -> BoxedStrategy<Spl> {
    let leaves: Vec<Spl> = {
        let mut v = vec![i(dim), dft(dim)];
        for d in spiral_spl::num::divisors(dim) {
            if d > 1 && d < dim {
                v.push(stride(dim, d));
                v.push(twiddle(d, dim / d));
                v.push(tensor(dft(d), i(dim / d)));
                v.push(tensor(i(d), dft(dim / d)));
            }
        }
        if dim == 2 {
            v.push(f2());
        }
        v
    };
    let leaf = prop::sample::select(leaves);
    leaf.prop_recursive(3, 16, 4, move |inner| {
        prop::collection::vec(inner, 1..4).prop_map(compose).boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated formula validates and has the requested dimension.
    #[test]
    fn formulas_validate(f in formula(8)) {
        prop_assert_eq!(f.validate().unwrap(), 8);
    }

    /// eval is linear: A(αx + y) = αAx + Ay.
    #[test]
    fn eval_is_linear(
        f in formula(8),
        x in cplx_vec(8),
        y in cplx_vec(8),
        are in -3.0f64..3.0,
        aim in -3.0f64..3.0,
    ) {
        let alpha = Cplx::new(are, aim);
        let mixed: Vec<Cplx> =
            x.iter().zip(&y).map(|(a, b)| *a * alpha + *b).collect();
        let lhs = f.eval(&mixed);
        let fx = f.eval(&x);
        let fy = f.eval(&y);
        let rhs: Vec<Cplx> =
            fx.iter().zip(&fy).map(|(a, b)| *a * alpha + *b).collect();
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!(l.approx_eq(*r, 1e-6), "{l:?} vs {r:?}");
        }
    }

    /// Display → parse round-trips semantically.
    #[test]
    fn display_parse_roundtrip(f in formula(8), x in cplx_vec(8)) {
        let s = f.to_string();
        let g = spiral_spl::parse(&s)
            .unwrap_or_else(|e| panic!("reparse of `{s}` failed: {e}"));
        let ya = f.eval(&x);
        let yb = g.eval(&x);
        for (a, b) in ya.iter().zip(&yb) {
            prop_assert!(a.approx_eq(*b, 1e-9));
        }
    }

    /// Normalization preserves semantics.
    #[test]
    fn normalization_preserves_semantics(f in formula(8), x in cplx_vec(8)) {
        let n = f.normalized();
        assert_slices_close(&f.eval(&x), &n.eval(&x), 1e-9);
    }

    /// Cooley–Tukey rule (1) equals the DFT for arbitrary factorizations.
    #[test]
    fn cooley_tukey_equals_dft(
        mi in 1usize..5,
        ni in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (m, n) = (mi + 1, ni + 1);
        let len = m * n;
        let mut rng_state = seed;
        let mut next = || {
            // xorshift — deterministic pseudo-random input from the seed
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let x: Vec<Cplx> = (0..len).map(|_| Cplx::new(next(), next())).collect();
        let lhs = dft(len).eval(&x);
        let rhs = cooley_tukey(m, n).eval(&x);
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!(a.approx_eq(*b, 1e-8), "m={m} n={n}");
        }
    }

    /// Stride permutations are bijections and invert correctly.
    #[test]
    fn stride_perm_bijection(mi in 1usize..6, ni in 1usize..6) {
        let (m, n) = (mi + 1, ni + 1);
        let p = Perm::stride(m * n, m);
        let mut seen = vec![false; m * n];
        for r in 0..m * n {
            let s = p.src(r);
            prop_assert!(!seen[s]);
            seen[s] = true;
            prop_assert_eq!(p.dest(s), r);
        }
        let pi = p.inverse();
        for r in 0..m * n {
            prop_assert_eq!(pi.src(p.src(r)), r);
        }
    }

    /// L^{mn}_m · L^{mn}_n = I (the classical inverse pair).
    #[test]
    fn stride_inverse_pair(mi in 1usize..6, ni in 1usize..6) {
        let (m, n) = (mi + 1, ni + 1);
        let comp = Perm::Compose(vec![
            Perm::stride(m * n, m),
            Perm::stride(m * n, n),
        ]);
        prop_assert!(comp.is_identity());
    }

    /// (A ⊗ B) matches the dense Kronecker product for random operands.
    #[test]
    fn tensor_matches_kron(a in formula(2), b in formula(4)) {
        let t = tensor(a.clone(), b.clone());
        let dense = a.to_matrix().kron(&b.to_matrix());
        let via = t.to_matrix();
        prop_assert!(dense.approx_eq(&via, 1e-8));
    }

    /// Twiddle diagonal split (rule 11 substrate) is a partition.
    #[test]
    fn twiddle_split_partition(mi in 1usize..5, pexp in 0usize..3) {
        let m = (mi + 1) * 2;
        let n = 4usize;
        let p = 1usize << pexp;
        let d = spiral_spl::DiagSpec::twiddle(m, n);
        if d.len().is_multiple_of(p) {
            let parts = d.split(p);
            let mut recon = Vec::new();
            for part in &parts {
                recon.extend(part.entries());
            }
            let full = d.entries();
            for (a, b) in full.iter().zip(&recon) {
                prop_assert!(a.approx_eq(*b, 0.0));
            }
        }
    }
}
