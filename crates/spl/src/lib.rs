//! # spiral-spl — the SPL formula language
//!
//! SPL (Signal Processing Language) expresses linear transform algorithms
//! as formulas over structured matrices: identities, the DFT, twiddle
//! diagonals, stride permutations, matrix products, tensor (Kronecker)
//! products, and direct sums. This crate provides:
//!
//! * the AST ([`Spl`]) including the shared-memory *tagged* operators of
//!   the SC'06 paper (`I_p ⊗∥ A`, `⊕∥`, `P ⊗̄ I_µ`, and the `smp(p,µ)` tag),
//! * reference semantics ([`Spl::eval`], [`Spl::apply`]) — the testing
//!   oracle for the rewriting system and the code generator,
//! * dense materialization ([`Spl::to_matrix`]) for matrix-equality tests
//!   of rewrite rules,
//! * symbolic permutations ([`perm::Perm`]) and diagonals
//!   ([`diag::DiagSpec`]) that downstream loop merging folds into
//!   compute loops,
//! * a printer/parser pair for the ASCII formula syntax.
//!
//! ## Example
//!
//! ```
//! use spiral_spl::builder::*;
//! use spiral_spl::cplx::Cplx;
//!
//! // Cooley–Tukey rule (1): DFT_8 = (DFT_2 ⊗ I_4) T^8_4 (I_2 ⊗ DFT_4) L^8_2
//! let formula = cooley_tukey(2, 4);
//! let x: Vec<Cplx> = (0..8).map(|k| Cplx::real(k as f64)).collect();
//! let y = formula.eval(&x);
//! let reference = dft(8).eval(&x);
//! for (a, b) in y.iter().zip(&reference) {
//!     assert!(a.approx_eq(*b, 1e-9));
//! }
//! ```

#![warn(missing_docs)]

pub mod apply;
pub mod ast;
pub mod builder;
pub mod cplx;
pub mod diag;
pub mod display;
pub mod exact;
pub mod matrix;
pub mod num;
pub mod parse;
pub mod perm;

pub use ast::{Spl, SplError};
pub use cplx::Cplx;
pub use diag::DiagSpec;
pub use matrix::Mat;
pub use parse::{parse, ParseError};
pub use perm::Perm;
