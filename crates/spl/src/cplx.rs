//! Complex arithmetic for interleaved double-precision FFT data.
//!
//! The paper measures the cache-line parameter `µ` in complex numbers
//! (§3.1: 64-byte line, `double` data ⇒ µ = 4). `Cplx` is a plain
//! `#[repr(C)]` pair of `f64`, i.e. exactly 16 bytes, so that layout
//! reasoning (cache lines, false sharing) matches the paper's.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number in rectangular form, 16 bytes, interleaved layout.
#[derive(Copy, Clone, Default, PartialEq)]
#[repr(C)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// The additive identity `0`.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1`.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };

    /// Construct from rectangular parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Real number embedded in the complex plane.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Cplx { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by `i` (one rotation, no multiplications).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Cplx {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiply by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Cplx {
            re: self.im,
            im: -self.re,
        }
    }

    /// Reciprocal `1/z`. Not hardened against overflow; inputs in FFT
    /// twiddle usage are unit-modulus.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Cplx {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Fused `self * w + acc` convenience used by naive DFT kernels.
    #[inline(always)]
    pub fn mul_add(self, w: Cplx, acc: Cplx) -> Cplx {
        Cplx {
            re: acc.re + self.re * w.re - self.im * w.im,
            im: acc.im + self.re * w.im + self.im * w.re,
        }
    }

    /// Max of |Δre|, |Δim| against `other` — used by tests for tolerances.
    #[inline]
    pub fn dist_inf(self, other: Cplx) -> f64 {
        (self.re - other.re).abs().max((self.im - other.im).abs())
    }

    /// True if within `tol` of `other` in the infinity norm.
    #[inline]
    pub fn approx_eq(self, other: Cplx, tol: f64) -> bool {
        self.dist_inf(other) <= tol
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Cplx {
    type Output = Cplx;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: Cplx) -> Cplx {
        self * rhs.recip()
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn neg(self) -> Cplx {
        Cplx {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Cplx {
        Cplx {
            re: self.re * rhs,
            im: self.im * rhs,
        }
    }
}

impl AddAssign for Cplx {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Cplx {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Cplx) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Cplx {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Cplx) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}{:+.6}i)", self.re, self.im)
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::real(re)
    }
}

/// Index of the first non-finite (NaN/∞) value in a complex slice, or
/// `None` when every element is finite. The execution layer scans
/// results with this before they leave the executor, and the tuner uses
/// it to quarantine candidates producing corrupted output.
pub fn first_non_finite(xs: &[Cplx]) -> Option<usize> {
    xs.iter()
        .position(|z| !z.re.is_finite() || !z.im.is_finite())
}

/// Maximum infinity-norm distance between two complex slices.
pub fn max_dist(a: &[Cplx], b: &[Cplx]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_dist: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| x.dist_inf(*y))
        .fold(0.0, f64::max)
}

/// Assert two complex slices are equal within `tol`, with a useful message.
pub fn assert_slices_close(a: &[Cplx], b: &[Cplx], tol: f64) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.approx_eq(*y, tol),
            "slices differ at index {i}: {x:?} vs {y:?} (tol={tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_interleaved_16_bytes() {
        assert_eq!(std::mem::size_of::<Cplx>(), 16);
        assert_eq!(std::mem::align_of::<Cplx>(), 8);
    }

    #[test]
    fn basic_field_ops() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -1.0);
        assert_eq!(a + b, Cplx::new(4.0, 1.0));
        assert_eq!(a - b, Cplx::new(-2.0, 3.0));
        assert_eq!(a * b, Cplx::new(5.0, 5.0));
        assert_eq!(-a, Cplx::new(-1.0, -2.0));
        assert!((a / b * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn mul_by_i_matches_full_multiply() {
        let z = Cplx::new(0.3, -0.7);
        assert!(z.mul_i().approx_eq(z * Cplx::I, 0.0));
        assert!(z.mul_neg_i().approx_eq(z * -Cplx::I, 0.0));
    }

    #[test]
    fn cis_unit_circle() {
        for k in 0..16 {
            let t = 2.0 * std::f64::consts::PI * k as f64 / 16.0;
            let z = Cplx::cis(t);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(Cplx::cis(0.0).approx_eq(Cplx::ONE, 1e-15));
        assert!(Cplx::cis(std::f64::consts::PI / 2.0).approx_eq(Cplx::I, 1e-15));
    }

    #[test]
    fn conj_and_norm() {
        let z = Cplx::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), Cplx::new(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(Cplx::real(25.0), 1e-12));
    }

    #[test]
    fn mul_add_matches_expanded() {
        let a = Cplx::new(1.5, -2.5);
        let w = Cplx::new(0.25, 0.75);
        let acc = Cplx::new(-1.0, 1.0);
        assert!(a.mul_add(w, acc).approx_eq(a * w + acc, 1e-15));
    }

    #[test]
    fn slice_helpers() {
        let a = [Cplx::ONE, Cplx::I];
        let b = [Cplx::ONE, Cplx::new(0.0, 1.0 + 1e-13)];
        assert!(max_dist(&a, &b) < 1e-12);
        assert_slices_close(&a, &b, 1e-12);
    }

    #[test]
    #[should_panic(expected = "slices differ")]
    fn slice_assert_panics_on_mismatch() {
        assert_slices_close(&[Cplx::ONE], &[Cplx::I], 1e-12);
    }
}
