//! Integer and root-of-unity utilities shared across the generator.

use crate::cplx::Cplx;
use std::f64::consts::PI;

/// Primitive `n`-th root of unity used by the DFT definition in the paper:
/// `ω_n = e^{-2πi/n}` (note the **negative** sign — forward transform).
#[inline]
pub fn omega(n: usize) -> Cplx {
    Cplx::cis(-2.0 * PI / n as f64)
}

/// `ω_n^k = e^{-2πik/n}`, computed directly from the angle for accuracy
/// (repeated multiplication drifts for large `n`).
#[inline]
pub fn omega_pow(n: usize, k: usize) -> Cplx {
    // Reduce k mod n first so the angle stays small.
    let k = (k % n) as f64;
    Cplx::cis(-2.0 * PI * k / n as f64)
}

/// `ω_n^{k}` for a possibly huge exponent `k = a*b` given as factors,
/// reducing `a*b mod n` in u128 to avoid overflow for large transforms.
#[inline]
pub fn omega_pow2(n: usize, a: usize, b: usize) -> Cplx {
    let k = ((a as u128 * b as u128) % n as u128) as usize;
    omega_pow(n, k)
}

/// True if `n` is a power of two (and nonzero).
#[inline]
pub const fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// `log2(n)` for exact powers of two.
#[inline]
pub fn log2_exact(n: usize) -> Option<u32> {
    if is_pow2(n) {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

/// All divisors of `n` in increasing order (n up to transform sizes, so
/// trial division is fine).
pub fn divisors(n: usize) -> Vec<usize> {
    assert!(n > 0);
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// Nontrivial factorizations `n = m * k` with `1 < m < n`, as `(m, n/m)`.
pub fn splittings(n: usize) -> Vec<(usize, usize)> {
    divisors(n)
        .into_iter()
        .filter(|&d| d > 1 && d < n)
        .map(|d| (d, n / d))
        .collect()
}

/// Prime factorization as (prime, multiplicity) pairs.
pub fn factorize(mut n: usize) -> Vec<(usize, u32)> {
    assert!(n > 0);
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut e = 0;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            out.push((p, e));
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// Greatest common divisor.
pub const fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Pseudo-Mflop/s metric from the paper's §4:
/// `5 N log2(N) / t` with `t` in microseconds.
pub fn pseudo_mflops(n: usize, runtime_us: f64) -> f64 {
    assert!(runtime_us > 0.0, "runtime must be positive");
    5.0 * n as f64 * (n as f64).log2() / runtime_us
}

/// The same metric from a cycle count and clock frequency in GHz
/// (used with the machine simulator: `t_us = cycles / (GHz * 1000)`).
pub fn pseudo_mflops_cycles(n: usize, cycles: f64, ghz: f64) -> f64 {
    pseudo_mflops(n, cycles / (ghz * 1000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_is_principal_root() {
        for n in [1usize, 2, 3, 4, 8, 12, 16] {
            let w = omega(n);
            // ω^n = 1
            let mut z = Cplx::ONE;
            for _ in 0..n {
                z *= w;
            }
            assert!(z.approx_eq(Cplx::ONE, 1e-12), "n={n}: {z:?}");
        }
        // negative sign: ω_4 = -i
        assert!(omega(4).approx_eq(Cplx::new(0.0, -1.0), 1e-15));
    }

    #[test]
    fn omega_pow_reduces_modulo() {
        for n in [3usize, 5, 8] {
            for k in 0..3 * n {
                assert!(omega_pow(n, k).approx_eq(omega_pow(n, k % n), 1e-12));
            }
        }
    }

    #[test]
    fn omega_pow2_avoids_overflow() {
        let n = 1 << 20;
        let a = (1 << 19) + 3;
        let b = (1 << 19) + 7;
        let direct = omega_pow(n, (a * b) % n);
        assert!(omega_pow2(n, a, b).approx_eq(direct, 1e-12));
    }

    #[test]
    fn pow2_checks() {
        assert!(is_pow2(1) && is_pow2(2) && is_pow2(1024));
        assert!(!is_pow2(0) && !is_pow2(3) && !is_pow2(12));
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(256), Some(8));
        assert_eq!(log2_exact(12), None);
    }

    #[test]
    fn divisors_and_splittings() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(13), vec![1, 13]);
        assert_eq!(splittings(8), vec![(2, 4), (4, 2)]);
        assert!(splittings(7).is_empty());
    }

    #[test]
    fn factorize_basic() {
        assert_eq!(factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
        assert_eq!(factorize(1), vec![]);
        assert_eq!(factorize(97), vec![(97, 1)]);
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
    }

    #[test]
    fn pseudo_mflops_formula() {
        // 5 * 1024 * 10 / 10us = 5120
        let v = pseudo_mflops(1024, 10.0);
        assert!((v - 5120.0).abs() < 1e-9);
        // cycles variant: 20000 cycles at 2 GHz = 10 us
        let v2 = pseudo_mflops_cycles(1024, 20000.0, 2.0);
        assert!((v2 - 5120.0).abs() < 1e-9);
    }
}
