//! Reference semantics: apply a formula to a vector.
//!
//! This interpreter is the *testing oracle* of the whole system — every
//! rewrite rule and every compiled plan is checked against it. It favors
//! obviousness over speed (the fast path is the compiled plan in
//! `spiral-codegen`).

use crate::ast::Spl;
use crate::cplx::Cplx;
use crate::num::omega_pow2;

impl Spl {
    /// Compute `y = A x` where `A` is this formula. Allocates; see
    /// `apply` for the in-buffer version.
    pub fn eval(&self, x: &[Cplx]) -> Vec<Cplx> {
        let mut y = vec![Cplx::ZERO; self.dim()];
        self.apply(x, &mut y);
        y
    }

    /// Compute `y = A x` out of place. `x` and `y` must both have length
    /// `self.dim()`.
    pub fn apply(&self, x: &[Cplx], y: &mut [Cplx]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "apply: input length {} != dim {}", x.len(), n);
        assert_eq!(y.len(), n, "apply: output length {} != dim {}", y.len(), n);
        match self {
            Spl::I(_) => y.copy_from_slice(x),
            Spl::F2 => {
                let (a, b) = (x[0], x[1]);
                y[0] = a + b;
                y[1] = a - b;
            }
            Spl::Dft(n) => naive_dft(*n, x, y),
            Spl::Diag(d) => {
                for k in 0..n {
                    y[k] = x[k] * d.entry(k);
                }
            }
            Spl::Perm(p) => {
                for r in 0..n {
                    y[r] = x[p.src(r)];
                }
            }
            Spl::Compose(fs) => {
                // Right-to-left through ping-pong temporaries.
                let mut cur = x.to_vec();
                let mut tmp = vec![Cplx::ZERO; n];
                for f in fs.iter().rev() {
                    f.apply(&cur, &mut tmp);
                    std::mem::swap(&mut cur, &mut tmp);
                }
                y.copy_from_slice(&cur);
            }
            Spl::Tensor(a, b) => apply_tensor(a, b, x, y),
            Spl::DirectSum(fs) | Spl::DirectSumPar(fs) => {
                let mut off = 0;
                for f in fs {
                    let d = f.dim();
                    f.apply(&x[off..off + d], &mut y[off..off + d]);
                    off += d;
                }
            }
            Spl::TensorPar { p, a } => {
                let d = a.dim();
                for blk in 0..*p {
                    a.apply(&x[blk * d..(blk + 1) * d], &mut y[blk * d..(blk + 1) * d]);
                }
            }
            Spl::PermBar { perm, mu } => {
                // (P ⊗ I_µ): move whole µ-blocks.
                let blocks = perm.dim();
                for r in 0..blocks {
                    let s = perm.src(r);
                    y[r * mu..(r + 1) * mu].copy_from_slice(&x[s * mu..(s + 1) * mu]);
                }
            }
            Spl::Smp { a, .. } | Spl::Vec { a, .. } | Spl::Dist { a, .. } => a.apply(x, y),
        }
    }
}

/// Defining matrix-vector product `y_k = Σ_l ω_n^{kl} x_l` with
/// `ω_n = e^{-2πi/n}` — O(n²), the ground truth everything reduces to.
pub fn naive_dft(n: usize, x: &[Cplx], y: &mut [Cplx]) {
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    for (k, yk) in y.iter_mut().enumerate() {
        let mut acc = Cplx::ZERO;
        for (l, &xl) in x.iter().enumerate() {
            acc = xl.mul_add(omega_pow2(n, k, l), acc);
        }
        *yk = acc;
    }
}

fn apply_tensor(a: &Spl, b: &Spl, x: &[Cplx], y: &mut [Cplx]) {
    let (ma, nb) = (a.dim(), b.dim());
    match (matches!(a, Spl::I(_)), matches!(b, Spl::I(_))) {
        // I_m ⊗ B: contiguous blocks (paper §2.2: working set n, base += n).
        (true, _) => {
            for blk in 0..ma {
                b.apply(
                    &x[blk * nb..(blk + 1) * nb],
                    &mut y[blk * nb..(blk + 1) * nb],
                );
            }
        }
        // A ⊗ I_n: interleaved working sets at stride n.
        (_, true) => {
            let mut gx = vec![Cplx::ZERO; ma];
            let mut gy = vec![Cplx::ZERO; ma];
            for j in 0..nb {
                for r in 0..ma {
                    gx[r] = x[r * nb + j];
                }
                a.apply(&gx, &mut gy);
                for r in 0..ma {
                    y[r * nb + j] = gy[r];
                }
            }
        }
        // General A ⊗ B = (A ⊗ I_nb) · (I_ma ⊗ B).
        _ => {
            let mid: Vec<Cplx> = {
                let mut t = vec![Cplx::ZERO; ma * nb];
                for blk in 0..ma {
                    b.apply(
                        &x[blk * nb..(blk + 1) * nb],
                        &mut t[blk * nb..(blk + 1) * nb],
                    );
                }
                t
            };
            let mut gx = vec![Cplx::ZERO; ma];
            let mut gy = vec![Cplx::ZERO; ma];
            for j in 0..nb {
                for r in 0..ma {
                    gx[r] = mid[r * nb + j];
                }
                a.apply(&gx, &mut gy);
                for r in 0..ma {
                    y[r * nb + j] = gy[r];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(k as f64 + 1.0, -(k as f64) * 0.5))
            .collect()
    }

    #[test]
    fn dft2_equals_f2() {
        let x = ramp(2);
        assert_slices_close(&dft(2).eval(&x), &f2().eval(&x), 1e-12);
    }

    #[test]
    fn dft1_is_identity() {
        let x = ramp(1);
        assert_slices_close(&dft(1).eval(&x), &x, 1e-15);
    }

    #[test]
    fn dft4_known_values() {
        // DFT of [1,1,1,1] is [4,0,0,0]; of the unit impulse is all-ones.
        let ones = vec![Cplx::ONE; 4];
        let y = dft(4).eval(&ones);
        assert!(y[0].approx_eq(Cplx::real(4.0), 1e-12));
        for yk in &y[1..] {
            assert!(yk.approx_eq(Cplx::ZERO, 1e-12));
        }
        let mut imp = vec![Cplx::ZERO; 4];
        imp[0] = Cplx::ONE;
        let y = dft(4).eval(&imp);
        for yk in &y {
            assert!(yk.approx_eq(Cplx::ONE, 1e-12));
        }
    }

    #[test]
    fn dft_forward_sign_convention() {
        // With ω = e^{-2πi/n}, DFT_4 of e_1 = (1, -i, -1, i).
        let mut e1 = vec![Cplx::ZERO; 4];
        e1[1] = Cplx::ONE;
        let y = dft(4).eval(&e1);
        let want = [Cplx::ONE, Cplx::new(0.0, -1.0), Cplx::real(-1.0), Cplx::I];
        assert_slices_close(&y, &want, 1e-12);
    }

    #[test]
    fn cooley_tukey_rule_1_matches_dft() {
        for (m, n) in [
            (2usize, 2usize),
            (2, 4),
            (4, 2),
            (2, 3),
            (3, 2),
            (4, 4),
            (3, 5),
        ] {
            let x = ramp(m * n);
            let lhs = dft(m * n).eval(&x);
            let rhs = cooley_tukey(m, n).eval(&x);
            assert_slices_close(&lhs, &rhs, 1e-9);
        }
    }

    #[test]
    fn six_step_rule_3_matches_dft() {
        for (m, n) in [(2usize, 2usize), (4, 4), (2, 8), (8, 2), (3, 3)] {
            let x = ramp(m * n);
            assert_slices_close(&dft(m * n).eval(&x), &six_step(m, n).eval(&x), 1e-9);
        }
    }

    #[test]
    fn recursive_dft8_formula_2() {
        // Paper eq. (2): DFT_8 via two applications of rule (1).
        let inner = compose(vec![
            tensor(dft(2), i(2)),
            twiddle(2, 2),
            tensor(i(2), dft(2)),
            stride(4, 2),
        ]);
        let f = compose(vec![
            tensor(dft(2), i(4)),
            twiddle(2, 4),
            tensor(i(2), inner),
            stride(8, 2),
        ]);
        let x = ramp(8);
        assert_slices_close(&dft(8).eval(&x), &f.eval(&x), 1e-9);
    }

    #[test]
    fn tensor_of_two_dfts_is_2d_dft() {
        // DFT_m ⊗ DFT_n equals the 2-D row-column transform.
        let (m, n) = (3usize, 4usize);
        let x = ramp(m * n);
        let via_tensor = tensor(dft(m), dft(n)).eval(&x);
        let via_stages = compose(vec![tensor(dft(m), i(n)), tensor(i(m), dft(n))]).eval(&x);
        assert_slices_close(&via_tensor, &via_stages, 1e-9);
    }

    #[test]
    fn parallel_ops_match_untagged_counterparts() {
        let x = ramp(8);
        assert_slices_close(
            &tensor_par(2, dft(4)).eval(&x),
            &tensor(i(2), dft(4)).eval(&x),
            1e-12,
        );
        assert_slices_close(
            &dsum_par(vec![dft(4), dft(4)]).eval(&x),
            &dsum(vec![dft(4), dft(4)]).eval(&x),
            1e-12,
        );
        let p = crate::perm::Perm::stride(4, 2);
        assert_slices_close(
            &perm_bar(p.clone(), 2).eval(&x),
            &tensor(perm(p), i(2)).eval(&x),
            1e-12,
        );
        assert_slices_close(&smp(2, 4, dft(8)).eval(&x), &dft(8).eval(&x), 1e-12);
    }

    #[test]
    fn stride_perm_node_matches_permutation() {
        let x = ramp(6);
        let y = stride(6, 2).eval(&x);
        // L^6_2: y[i*3+j] = x[j*2+i] for i<2, j<3
        for i in 0..2 {
            for j in 0..3 {
                assert!(y[i * 3 + j].approx_eq(x[j * 2 + i], 0.0));
            }
        }
    }

    #[test]
    fn direct_sum_blocks() {
        let x = ramp(5);
        let y = dsum(vec![dft(2), dft(3)]).eval(&x);
        let y0 = dft(2).eval(&x[..2]);
        let y1 = dft(3).eval(&x[2..]);
        assert_slices_close(&y[..2], &y0, 1e-12);
        assert_slices_close(&y[2..], &y1, 1e-12);
    }

    #[test]
    fn linearity_of_eval() {
        let f = cooley_tukey(2, 4);
        let x1 = ramp(8);
        let x2: Vec<Cplx> = ramp(8).iter().map(|z| z.mul_i()).collect();
        let sum: Vec<Cplx> = x1.iter().zip(&x2).map(|(a, b)| *a + *b).collect();
        let lhs = f.eval(&sum);
        let rhs: Vec<Cplx> = f
            .eval(&x1)
            .iter()
            .zip(&f.eval(&x2))
            .map(|(a, b)| *a + *b)
            .collect();
        assert_slices_close(&lhs, &rhs, 1e-9);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn apply_checks_lengths() {
        let mut y = vec![Cplx::ZERO; 4];
        dft(4).apply(&ramp(3), &mut y);
    }
}
