//! The SPL formula language (paper §2.2–2.3).
//!
//! A formula denotes a square complex matrix; FFT algorithms are recursive
//! factorizations of `DFT_n` into products of structured sparse matrices.
//! The shared-memory extension (§3.1) adds *tags* `smp(p, µ)` and *tagged
//! parallel operators* `I_p ⊗∥ A`, `⊕∥`, and `P ⊗̄ I_µ` which declare a
//! subformula fully optimized for a `p`-way machine with cache-line length
//! `µ` (in complex elements).

use crate::diag::DiagSpec;
use crate::perm::Perm;

/// An SPL formula (always a square matrix in this framework).
#[derive(Clone, Debug, PartialEq)]
pub enum Spl {
    /// Identity matrix `I_n`.
    I(usize),
    /// The 2-point DFT butterfly `F_2 = [[1, 1], [1, -1]]` — the base case
    /// of the Cooley–Tukey recursion.
    F2,
    /// Unexpanded transform `DFT_n` (a *non-terminal* for the rewriting
    /// system; semantics are the defining matrix-vector product).
    Dft(usize),
    /// A diagonal matrix (twiddle factors or explicit).
    Diag(DiagSpec),
    /// A permutation matrix (stride permutations and combinations).
    Perm(Perm),
    /// Matrix product `A_0 · A_1 · … · A_{k-1}` (applied right to left).
    Compose(Vec<Spl>),
    /// Kronecker (tensor) product `A ⊗ B`.
    Tensor(Box<Spl>, Box<Spl>),
    /// Direct sum `A_0 ⊕ … ⊕ A_{k-1}` (block-diagonal).
    DirectSum(Vec<Spl>),
    /// Tagged parallel tensor `I_p ⊗∥ A`: one block per processor
    /// (paper eq. (4)). Semantically equal to `I_p ⊗ A`.
    TensorPar {
        /// Processor count.
        p: usize,
        /// The per-processor block.
        a: Box<Spl>,
    },
    /// Tagged parallel direct sum `⊕∥ A_i` with one summand per processor.
    /// Semantically equal to `DirectSum`.
    DirectSumPar(Vec<Spl>),
    /// Tagged cache-line permutation `P ⊗̄ I_µ`: reorders whole cache lines
    /// only, hence incurs no false sharing. Semantically `P ⊗ I_µ`.
    PermBar {
        /// The block permutation `P` (acting on lines).
        perm: Perm,
        /// Cache-line length in complex elements.
        mu: usize,
    },
    /// Rewriting tag `smp(p, µ)` wrapping a subformula that still has to be
    /// parallelized (paper §3.1). Semantically transparent.
    Smp {
        /// Processor count.
        p: usize,
        /// Cache-line length in complex elements.
        mu: usize,
        /// The subformula to parallelize.
        a: Box<Spl>,
    },
    /// Short-vector tag `vec(ν)` requesting the wrapped subformula be
    /// lowered to ν-wide SIMD leaf kernels (paper §3.2: the shared-memory
    /// formula composes with the short-vector FFT). Semantically
    /// transparent, like `smp`.
    Vec {
        /// Vector length in complex elements (lanes per kernel call).
        nu: usize,
        /// The subformula to vectorize.
        a: Box<Spl>,
    },
    /// Multi-process sharding tag `dist(q)` requesting the wrapped
    /// subformula's outermost tensor factor be sharded across `q` worker
    /// *processes* (distributed execution is the same algebra as
    /// `smp(p,µ)` with a communication term — Hunt–Mullin). Semantically
    /// transparent, like `smp` and `vec`; the lowering records the shard
    /// geometry and a fleet backend executes the sharded prefix.
    Dist {
        /// Worker-process count.
        q: usize,
        /// The subformula to shard.
        a: Box<Spl>,
    },
}

/// Errors from structural validation.
#[derive(Clone, Debug, PartialEq)]
pub enum SplError {
    /// A composition multiplies matrices of different dimensions.
    ComposeDim {
        /// Dimension of the left factor.
        left: usize,
        /// Dimension of the right factor.
        right: usize,
    },
    /// An n-ary operator has no operands.
    Empty(&'static str),
    /// Dimension constraint violated (message, offending sizes).
    Constraint(&'static str, usize, usize),
}

impl std::fmt::Display for SplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplError::ComposeDim { left, right } => {
                write!(f, "composition dimension mismatch: {left} vs {right}")
            }
            SplError::Empty(op) => write!(f, "empty {op}"),
            SplError::Constraint(msg, a, b) => write!(f, "{msg}: {a}, {b}"),
        }
    }
}

impl std::error::Error for SplError {}

impl Spl {
    /// Matrix dimension (formulas here are always square).
    pub fn dim(&self) -> usize {
        match self {
            Spl::I(n) => *n,
            Spl::F2 => 2,
            Spl::Dft(n) => *n,
            Spl::Diag(d) => d.len(),
            Spl::Perm(p) => p.dim(),
            Spl::Compose(fs) => fs.first().map_or(0, |f| f.dim()),
            Spl::Tensor(a, b) => a.dim() * b.dim(),
            Spl::DirectSum(fs) | Spl::DirectSumPar(fs) => fs.iter().map(|f| f.dim()).sum(),
            Spl::TensorPar { p, a } => p * a.dim(),
            Spl::PermBar { perm, mu } => perm.dim() * mu,
            Spl::Smp { a, .. } | Spl::Vec { a, .. } | Spl::Dist { a, .. } => a.dim(),
        }
    }

    /// Structural validation: dimensions line up, no empty n-ary nodes,
    /// size constraints on primitives hold. Returns the dimension.
    pub fn validate(&self) -> Result<usize, SplError> {
        match self {
            Spl::I(n) | Spl::Dft(n) => {
                if *n == 0 {
                    Err(SplError::Constraint("zero-size matrix", 0, 0))
                } else {
                    Ok(*n)
                }
            }
            Spl::F2 => Ok(2),
            Spl::Diag(d) => {
                if let DiagSpec::Twiddle { m, n, off, len } = d {
                    if off + len > m * n {
                        return Err(SplError::Constraint(
                            "twiddle segment out of range",
                            off + len,
                            m * n,
                        ));
                    }
                }
                Ok(d.len())
            }
            Spl::Perm(p) => Ok(p.dim()),
            Spl::Compose(fs) => {
                if fs.is_empty() {
                    return Err(SplError::Empty("composition"));
                }
                let dims: Result<Vec<usize>, _> = fs.iter().map(|f| f.validate()).collect();
                let dims = dims?;
                for w in dims.windows(2) {
                    if w[0] != w[1] {
                        return Err(SplError::ComposeDim {
                            left: w[0],
                            right: w[1],
                        });
                    }
                }
                Ok(dims[0])
            }
            Spl::Tensor(a, b) => Ok(a.validate()? * b.validate()?),
            Spl::DirectSum(fs) | Spl::DirectSumPar(fs) => {
                if fs.is_empty() {
                    return Err(SplError::Empty("direct sum"));
                }
                let mut total = 0;
                for f in fs {
                    total += f.validate()?;
                }
                Ok(total)
            }
            Spl::TensorPar { p, a } => {
                if *p == 0 {
                    return Err(SplError::Empty("parallel tensor"));
                }
                Ok(p * a.validate()?)
            }
            Spl::PermBar { perm, mu } => {
                if *mu == 0 {
                    return Err(SplError::Constraint("µ must be positive", 0, 0));
                }
                Ok(perm.dim() * mu)
            }
            Spl::Smp { p, mu, a } => {
                if *p == 0 || *mu == 0 {
                    return Err(SplError::Constraint("smp(p,µ) needs p,µ ≥ 1", *p, *mu));
                }
                a.validate()
            }
            Spl::Vec { nu, a } => {
                if *nu == 0 || !nu.is_power_of_two() {
                    return Err(SplError::Constraint(
                        "vec(ν) needs a power-of-two ν",
                        *nu,
                        0,
                    ));
                }
                a.validate()
            }
            Spl::Dist { q, a } => {
                if *q < 2 || !q.is_power_of_two() {
                    return Err(SplError::Constraint(
                        "dist(q) needs a power-of-two q ≥ 2",
                        *q,
                        0,
                    ));
                }
                let d = a.validate()?;
                if !d.is_multiple_of(*q) {
                    return Err(SplError::Constraint("dist(q) needs q | dim", *q, d));
                }
                Ok(d)
            }
        }
    }

    /// Immediate children, for generic traversals.
    pub fn children(&self) -> Vec<&Spl> {
        match self {
            Spl::Compose(fs) | Spl::DirectSum(fs) | Spl::DirectSumPar(fs) => fs.iter().collect(),
            Spl::Tensor(a, b) => vec![a, b],
            Spl::TensorPar { a, .. }
            | Spl::Smp { a, .. }
            | Spl::Vec { a, .. }
            | Spl::Dist { a, .. } => vec![a],
            _ => vec![],
        }
    }

    /// Rebuild this node with transformed children (bottom-up map helper).
    pub fn map_children(&self, f: &mut impl FnMut(&Spl) -> Spl) -> Spl {
        match self {
            Spl::Compose(fs) => Spl::Compose(fs.iter().map(&mut *f).collect()),
            Spl::DirectSum(fs) => Spl::DirectSum(fs.iter().map(&mut *f).collect()),
            Spl::DirectSumPar(fs) => Spl::DirectSumPar(fs.iter().map(&mut *f).collect()),
            Spl::Tensor(a, b) => Spl::Tensor(Box::new(f(a)), Box::new(f(b))),
            Spl::TensorPar { p, a } => Spl::TensorPar {
                p: *p,
                a: Box::new(f(a)),
            },
            Spl::Smp { p, mu, a } => Spl::Smp {
                p: *p,
                mu: *mu,
                a: Box::new(f(a)),
            },
            Spl::Vec { nu, a } => Spl::Vec {
                nu: *nu,
                a: Box::new(f(a)),
            },
            Spl::Dist { q, a } => Spl::Dist {
                q: *q,
                a: Box::new(f(a)),
            },
            leaf => leaf.clone(),
        }
    }

    /// Number of nodes in the formula tree (Perm/Diag specs count as one).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// True if the formula contains an unexpanded `DFT_n` non-terminal.
    pub fn has_nonterminal(&self) -> bool {
        matches!(self, Spl::Dft(_)) || self.children().iter().any(|c| c.has_nonterminal())
    }

    /// True if the formula contains an `smp(p,µ)` tag (i.e. rewriting for
    /// shared memory is not finished).
    pub fn has_smp_tag(&self) -> bool {
        matches!(self, Spl::Smp { .. }) || self.children().iter().any(|c| c.has_smp_tag())
    }

    /// True if the formula contains a `vec(ν)` short-vector tag.
    pub fn has_vec_tag(&self) -> bool {
        matches!(self, Spl::Vec { .. }) || self.children().iter().any(|c| c.has_vec_tag())
    }

    /// True if the formula contains a `dist(q)` multi-process tag.
    pub fn has_dist_tag(&self) -> bool {
        matches!(self, Spl::Dist { .. }) || self.children().iter().any(|c| c.has_dist_tag())
    }

    /// The widest `dist(q)` tag in the formula (1 if untagged) — the
    /// worker-process count the sharded backend would use.
    pub fn dist_procs(&self) -> usize {
        let own = match self {
            Spl::Dist { q, .. } => *q,
            _ => 1,
        };
        self.children()
            .iter()
            .map(|c| c.dist_procs())
            .fold(own, usize::max)
    }

    /// The widest `vec(ν)` tag in the formula (1 if untagged) — the lane
    /// width the lowered plan will require of the executing host.
    pub fn vec_width(&self) -> usize {
        let own = match self {
            Spl::Vec { nu, .. } => *nu,
            _ => 1,
        };
        self.children()
            .iter()
            .map(|c| c.vec_width())
            .fold(own, usize::max)
    }

    /// If the formula denotes a permutation matrix built from the
    /// permutation primitives (possibly tensored with identities and
    /// composed), extract it as a `Perm` index function.
    pub fn as_perm(&self) -> Option<Perm> {
        match self {
            Spl::I(n) => Some(Perm::Id(*n)),
            Spl::Perm(p) => Some(p.clone()),
            Spl::Tensor(a, b) => match (a.as_perm(), b.as_perm()) {
                (Some(pa), Some(Perm::Id(r))) => Some(Perm::TensorId(Box::new(pa), r)),
                (Some(Perm::Id(l)), Some(pb)) => Some(Perm::IdTensor(l, Box::new(pb))),
                // General perm ⊗ perm: (P ⊗ Q) = (P ⊗ I)(I ⊗ Q)
                (Some(pa), Some(pb)) => {
                    let r = pb.dim();
                    let l = pa.dim();
                    Some(Perm::Compose(vec![
                        Perm::TensorId(Box::new(pa), r),
                        Perm::IdTensor(l, Box::new(pb)),
                    ]))
                }
                _ => None,
            },
            Spl::PermBar { perm, mu } => Some(Perm::TensorId(Box::new(perm.clone()), *mu)),
            Spl::Compose(fs) => {
                let ps: Option<Vec<Perm>> = fs.iter().map(|f| f.as_perm()).collect();
                ps.map(Perm::Compose)
            }
            Spl::Smp { a, .. } | Spl::Vec { a, .. } | Spl::Dist { a, .. } => a.as_perm(),
            _ => None,
        }
    }

    /// True if the formula is semantically a permutation-with-identity
    /// structure (cheap structural check via `as_perm`).
    pub fn is_permutation(&self) -> bool {
        self.as_perm().is_some()
    }

    /// Flatten nested compositions and drop size-preserving identities
    /// inside products; purely cosmetic normalization used by the rewriter
    /// so rule patterns don't have to anticipate nesting.
    pub fn normalized(&self) -> Spl {
        let node = self.map_children(&mut |c| c.normalized());
        match node {
            Spl::Compose(fs) => {
                let mut flat = Vec::new();
                for f in fs {
                    match f {
                        Spl::Compose(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                // Drop identities unless that would empty the product.
                let kept: Vec<Spl> = flat
                    .iter()
                    .filter(|f| !matches!(f, Spl::I(_)))
                    .cloned()
                    .collect();
                let mut fs = if kept.is_empty() { flat } else { kept };
                if fs.len() == 1 {
                    fs.pop().unwrap()
                } else {
                    Spl::Compose(fs)
                }
            }
            Spl::Tensor(a, b) => match (*a, *b) {
                (Spl::I(1), x) | (x, Spl::I(1)) => x,
                (Spl::I(m), Spl::I(n)) => Spl::I(m * n),
                (a, b) => Spl::Tensor(Box::new(a), Box::new(b)),
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn dims_of_primitives() {
        assert_eq!(Spl::I(5).dim(), 5);
        assert_eq!(Spl::F2.dim(), 2);
        assert_eq!(Spl::Dft(16).dim(), 16);
        assert_eq!(twiddle(2, 4).dim(), 8);
        assert_eq!(stride(8, 2).dim(), 8);
    }

    #[test]
    fn dims_of_operators() {
        let t = tensor(dft(2), i(4));
        assert_eq!(t.dim(), 8);
        let c = compose(vec![t.clone(), twiddle(2, 4)]);
        assert_eq!(c.dim(), 8);
        let ds = dsum(vec![dft(2), dft(3)]);
        assert_eq!(ds.dim(), 5);
        let tp = tensor_par(2, dft(4));
        assert_eq!(tp.dim(), 8);
        let pb = perm_bar(crate::perm::Perm::stride(4, 2), 4);
        assert_eq!(pb.dim(), 16);
        assert_eq!(smp(2, 4, dft(8)).dim(), 8);
    }

    #[test]
    fn validate_accepts_cooley_tukey_shape() {
        let f = compose(vec![
            tensor(dft(2), i(4)),
            twiddle(2, 4),
            tensor(i(2), dft(4)),
            stride(8, 2),
        ]);
        assert_eq!(f.validate().unwrap(), 8);
    }

    #[test]
    fn validate_rejects_dim_mismatch() {
        let bad = compose(vec![dft(4), dft(8)]);
        assert!(matches!(
            bad.validate(),
            Err(SplError::ComposeDim { left: 4, right: 8 })
        ));
    }

    #[test]
    fn validate_rejects_empty_and_zero() {
        assert!(Spl::Compose(vec![]).validate().is_err());
        assert!(Spl::DirectSum(vec![]).validate().is_err());
        assert!(Spl::I(0).validate().is_err());
        assert!(Spl::Smp {
            p: 0,
            mu: 4,
            a: Box::new(dft(4))
        }
        .validate()
        .is_err());
    }

    #[test]
    fn nonterminal_and_tag_detection() {
        let f = compose(vec![tensor(dft(2), i(4)), stride(8, 2)]);
        assert!(f.has_nonterminal());
        assert!(!f.has_smp_tag());
        let g = smp(2, 4, f.clone());
        assert!(g.has_smp_tag());
        assert!(!tensor(Spl::F2, i(2)).has_nonterminal());
    }

    #[test]
    fn as_perm_extracts_structures() {
        // L^8_2 ⊗ I_4 is a permutation
        let f = tensor(stride(8, 2), i(4));
        let p = f.as_perm().expect("should be a permutation");
        assert_eq!(p.dim(), 32);
        // I_2 ⊗ L^4_2 also
        assert!(tensor(i(2), stride(4, 2)).as_perm().is_some());
        // A DFT is not
        assert!(dft(4).as_perm().is_none());
        // Composition of permutations is
        assert!(compose(vec![stride(8, 2), stride(8, 4)])
            .as_perm()
            .is_some());
        // But a product containing a diag is not
        assert!(compose(vec![stride(8, 2), twiddle(2, 4)])
            .as_perm()
            .is_none());
    }

    #[test]
    fn as_perm_matches_matrix_semantics() {
        use crate::cplx::Cplx;
        let f = tensor(stride(6, 2), i(2));
        let p = f.as_perm().unwrap();
        let x: Vec<Cplx> = (0..12).map(|k| Cplx::real(k as f64)).collect();
        let via_perm: Vec<Cplx> = (0..12).map(|r| x[p.src(r)]).collect();
        let via_eval = f.eval(&x);
        crate::cplx::assert_slices_close(&via_perm, &via_eval, 1e-12);
    }

    #[test]
    fn normalization_flattens() {
        let f = compose(vec![
            compose(vec![dft(4), i(4)]),
            compose(vec![stride(4, 2)]),
        ]);
        let n = f.normalized();
        match n {
            Spl::Compose(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(matches!(fs[0], Spl::Dft(4)));
            }
            other => panic!("expected flattened compose, got {other:?}"),
        }
        // I_1 ⊗ A = A, I_m ⊗ I_n = I_{mn}
        assert_eq!(tensor(i(1), dft(4)).normalized(), dft(4));
        assert_eq!(tensor(i(2), i(3)).normalized(), Spl::I(6));
    }

    #[test]
    fn node_count_counts() {
        let f = compose(vec![tensor(dft(2), i(4)), stride(8, 2)]);
        assert_eq!(f.node_count(), 5);
    }
}
