//! Exact cyclotomic arithmetic — the number type of the certification
//! passes.
//!
//! The symbolic plan interpreter (`spiral-verify::certify`) must prove
//! that a lowered plan computes `DFT_n` *exactly*, with no floating-point
//! tolerance. Every constant a DFT plan multiplies by is a root of unity
//! `ω_N^k = e^{-2πik/N}`, and every intermediate value reached from a
//! basis vector is a finite rational combination of such roots — an
//! element of the cyclotomic field `ℚ(ω_N)`. This module implements that
//! field fragment:
//!
//! * [`Rat`] — arbitrary-precision-free exact rationals over `i128` with
//!   checked arithmetic (certification values are tiny; an overflow is a
//!   bug, not a rounding event);
//! * [`Cyclo`] — sparse rational combinations `Σ q_k · ω_N^k`, with ring
//!   arithmetic and an exact zero test;
//! * [`cyclotomic_poly`] — the minimal polynomial `Φ_N` of `ω_N` over ℚ,
//!   which makes the zero test *decidable*: `Σ q_k ω_N^k = 0` in ℂ iff
//!   `Φ_N(x)` divides `Σ q_k x^k` in `ℚ[x]` (reduction `mod x^N − 1`
//!   alone is **not** enough — `1 + ω + … + ω^{N−1} = 0` is a nonzero
//!   polynomial mod `x^N − 1`).
//!
//! The module is pure, safe, allocation-light Rust with no platform
//! dependencies — it is exercised under Miri in CI (`certify` job).

use crate::cplx::Cplx;
use crate::num::gcd;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Absolute tolerance when *snapping* an `f64` constant to the root of
/// unity it denotes. Distinct roots of order ≤ 512 are ≥ 2·sin(π/512)
/// ≈ 0.012 apart, while `Cplx::cis`-computed twiddles sit within a few
/// ulp (≤ ~1e-15) of the exact value — so 1e-9 is both unambiguous and
/// forgiving of accumulated constant folding.
pub const SNAP_EPS: f64 = 1e-9;

/// An exact rational number `num/den` with `den > 0` and
/// `gcd(|num|, den) = 1`. All arithmetic is checked: certification works
/// with coefficients bounded by the transform size, so an overflow
/// indicates a logic error and panics rather than silently wrapping.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    den: i128,
}

// Named by-value arithmetic instead of operator traits: every call site
// chains through `Cyclo`'s equally-named `&self` methods, and one
// naming scheme across both types beats operator sugar on one of them.
#[allow(clippy::should_implement_trait)]
impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// `num/den`, normalized. Panics when `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = i128::try_from(gcd128(num.unsigned_abs(), den.unsigned_abs()))
            .expect("rational overflow: |gcd| exceeds i128");
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `k` as a rational.
    pub const fn int(k: i128) -> Rat {
        Rat { num: k, den: 1 }
    }

    /// Numerator (normalized form, sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (normalized form, always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True iff this is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Exact sum.
    pub fn add(self, o: Rat) -> Rat {
        let num = self
            .num
            .checked_mul(o.den)
            .and_then(|a| o.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .expect("rational overflow in add");
        let den = self.den.checked_mul(o.den).expect("rational overflow");
        Rat::new(num, den)
    }

    /// Exact difference.
    pub fn sub(self, o: Rat) -> Rat {
        self.add(o.neg())
    }

    /// Exact product.
    pub fn mul(self, o: Rat) -> Rat {
        let num = self
            .num
            .checked_mul(o.num)
            .expect("rational overflow in mul");
        let den = self.den.checked_mul(o.den).expect("rational overflow");
        Rat::new(num, den)
    }

    /// Exact negation.
    pub fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }

    /// Nearest `f64` (for diagnostics only — never for decisions).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

fn gcd128(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Least common multiple of two orders.
pub fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// An element of `ℚ(ω_N)` as a sparse rational combination
/// `Σ coeffs[k] · ω_N^k` with `ω_N = e^{-2πi/N}` (the paper's forward
/// root; see [`crate::num::omega`]). Exponents are kept reduced mod `N`
/// and zero coefficients are pruned, so the representation of zero is
/// the empty map — though equality of *values* still requires
/// [`Cyclo::is_zero`] on the difference (the sparse form is not
/// canonical: `1 + ω_3 + ω_3²` is a nonempty representation of zero).
#[derive(Clone, PartialEq, Eq)]
pub struct Cyclo {
    order: u32,
    coeffs: BTreeMap<u32, Rat>,
}

impl Cyclo {
    /// The zero of `ℚ(ω_order)`.
    pub fn zero(order: usize) -> Cyclo {
        assert!(order > 0, "cyclotomic order must be positive");
        Cyclo {
            order: u32::try_from(order).expect("cyclotomic order exceeds u32"),
            coeffs: BTreeMap::new(),
        }
    }

    /// The one of `ℚ(ω_order)`.
    pub fn one(order: usize) -> Cyclo {
        Cyclo::root(order, 0)
    }

    /// `ω_order^k` (exponent reduced mod `order`).
    pub fn root(order: usize, k: usize) -> Cyclo {
        let mut c = Cyclo::zero(order);
        let k = u32::try_from(k % order).expect("exponent below a u32 order");
        c.coeffs.insert(k, Rat::ONE);
        c
    }

    /// The rational `r` embedded in `ℚ(ω_order)`.
    pub fn from_rat(order: usize, r: Rat) -> Cyclo {
        let mut c = Cyclo::zero(order);
        if !r.is_zero() {
            c.coeffs.insert(0, r);
        }
        c
    }

    /// The order `N` of the ambient root `ω_N`.
    pub fn order(&self) -> usize {
        self.order as usize
    }

    /// Number of nonzero terms in the sparse representation.
    pub fn terms(&self) -> usize {
        self.coeffs.len()
    }

    /// Lift into `ℚ(ω_new_order)`; requires `order | new_order`
    /// (`ω_N^k = ω_{cN}^{ck}`).
    pub fn lift(&self, new_order: usize) -> Cyclo {
        let new_order = u32::try_from(new_order).expect("cyclotomic order exceeds u32");
        assert!(
            new_order % self.order == 0,
            "lift target {new_order} not a multiple of order {}",
            self.order
        );
        let c = new_order / self.order;
        let mut out = Cyclo::zero(new_order as usize);
        for (&k, &q) in &self.coeffs {
            out.coeffs.insert(k * c, q);
        }
        out
    }

    fn insert_term(&mut self, k: u32, q: Rat) {
        if q.is_zero() {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.coeffs.entry(k) {
            Entry::Vacant(v) => {
                v.insert(q);
            }
            Entry::Occupied(mut o) => {
                let s = o.get().add(q);
                if s.is_zero() {
                    o.remove();
                } else {
                    *o.get_mut() = s;
                }
            }
        }
    }

    /// Exact sum (orders must match; lift first if they differ).
    pub fn add(&self, o: &Cyclo) -> Cyclo {
        assert_eq!(self.order, o.order, "cyclotomic order mismatch in add");
        let mut out = self.clone();
        for (&k, &q) in &o.coeffs {
            out.insert_term(k, q);
        }
        out
    }

    /// Exact difference.
    pub fn sub(&self, o: &Cyclo) -> Cyclo {
        self.add(&o.neg())
    }

    /// Exact negation.
    pub fn neg(&self) -> Cyclo {
        Cyclo {
            order: self.order,
            coeffs: self.coeffs.iter().map(|(&k, &q)| (k, q.neg())).collect(),
        }
    }

    /// Exact product (sparse convolution of exponents mod `order`).
    pub fn mul(&self, o: &Cyclo) -> Cyclo {
        assert_eq!(self.order, o.order, "cyclotomic order mismatch in mul");
        let mut out = Cyclo::zero(self.order as usize);
        for (&ka, &qa) in &self.coeffs {
            for (&kb, &qb) in &o.coeffs {
                out.insert_term((ka + kb) % self.order, qa.mul(qb));
            }
        }
        out
    }

    /// Multiply by `ω_order^k` — an exponent shift, no coefficient
    /// arithmetic (the common case: twiddle application).
    pub fn mul_root(&self, k: usize) -> Cyclo {
        let k = u32::try_from(k % self.order as usize).expect("exponent below a u32 order");
        Cyclo {
            order: self.order,
            coeffs: self
                .coeffs
                .iter()
                .map(|(&e, &q)| ((e + k) % self.order, q))
                .collect(),
        }
    }

    /// Scale by a rational.
    pub fn scale(&self, r: Rat) -> Cyclo {
        if r.is_zero() {
            return Cyclo::zero(self.order as usize);
        }
        Cyclo {
            order: self.order,
            coeffs: self.coeffs.iter().map(|(&k, &q)| (k, q.mul(r))).collect(),
        }
    }

    /// Exact zero test: `Σ q_k ω_N^k = 0` iff `Φ_N | Σ q_k x^k` in
    /// `ℚ[x]`. Polynomial remainder by the (monic, integer) cyclotomic
    /// polynomial — no tolerance anywhere.
    pub fn is_zero(&self) -> bool {
        match self.coeffs.len() {
            0 => return true,
            // A single pruned term q·ω^k with q ≠ 0 is never zero.
            1 => return false,
            // a·ω^p + b·ω^q = 0 ⟺ ω^{q−p} = −a/b. A root of unity that is
            // rational is an algebraic integer in ℚ, hence ±1 — so the
            // only two-term vanishing combination is q − p = N/2 (where
            // ω^{N/2} = −1) with equal coefficients. This is the hot path:
            // executing a plan on a basis vector keeps every value a
            // single term (the FFT flow graph has unique input→output
            // paths), so equivalence diffs have at most two terms.
            2 => {
                let mut it = self.coeffs.iter();
                let (&p, &a) = it.next().unwrap();
                let (&q, &b) = it.next().unwrap();
                return self.order.is_multiple_of(2) && q - p == self.order / 2 && a == b;
            }
            _ => {}
        }
        // Dense remainder working vector, degree < order.
        let n = self.order as usize;
        let mut poly = vec![Rat::ZERO; n];
        for (&k, &q) in &self.coeffs {
            poly[k as usize] = q;
        }
        let phi = cyclotomic_poly(n);
        let deg = phi.len() - 1;
        // Synthetic division by the monic Φ_N: eliminate from the top.
        for top in (deg..n).rev() {
            let c = poly[top];
            if c.is_zero() {
                continue;
            }
            poly[top] = Rat::ZERO;
            for (i, &pc) in phi.iter().enumerate().take(deg) {
                if pc != 0 {
                    let t = c.mul(Rat::int(pc));
                    poly[top - deg + i] = poly[top - deg + i].sub(t);
                }
            }
        }
        poly.iter().take(deg).all(Rat::is_zero)
    }

    /// Exact equality of values (not of representations).
    pub fn eq_exact(&self, o: &Cyclo) -> bool {
        self.sub(o).is_zero()
    }

    /// Nearest `f64` complex value (diagnostics only).
    pub fn to_cplx(&self) -> Cplx {
        let n = self.order as usize;
        let mut z = Cplx::ZERO;
        for (&k, &q) in &self.coeffs {
            z += crate::num::omega_pow(n, k as usize) * q.to_f64();
        }
        z
    }

    /// Snap a floating-point constant to the root of unity it denotes:
    /// `Some(ω_order^k)` when `c` lies within [`SNAP_EPS`] of that root,
    /// `None` when `c` is not (close to) any unit root of this order.
    /// The returned value is *exact*; the snap only decides which exact
    /// constant the float was printed from.
    pub fn from_cplx_unit(c: Cplx, order: usize) -> Option<Cyclo> {
        if (c.norm_sqr() - 1.0).abs() > 4.0 * SNAP_EPS {
            return None;
        }
        // ω_order^k has angle −2πk/order.
        let theta = c.im.atan2(c.re);
        let frac = -theta * order as f64 / (2.0 * std::f64::consts::PI);
        // rem_euclid puts the rounded exponent in [0, order), so the
        // cast is exact; the snap is then re-verified against the true
        // root below.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let k = frac.round().rem_euclid(order as f64) as usize % order;
        let w = crate::num::omega_pow(order, k);
        if (w.re - c.re).abs() <= SNAP_EPS && (w.im - c.im).abs() <= SNAP_EPS {
            Some(Cyclo::root(order, k))
        } else {
            None
        }
    }
}

impl fmt::Debug for Cyclo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (&k, &q) in &self.coeffs {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if k == 0 {
                write!(f, "{q:?}")?;
            } else if q == Rat::ONE {
                write!(f, "w{}^{k}", self.order)?;
            } else {
                write!(f, "{q:?}*w{}^{k}", self.order)?;
            }
        }
        Ok(())
    }
}

/// The `N`-th cyclotomic polynomial `Φ_N` as integer coefficients,
/// constant term first (`phi[i]` is the coefficient of `x^i`; the
/// leading coefficient is always 1). Computed by exact division
/// `Φ_N = (x^N − 1) / ∏_{d|N, d<N} Φ_d` and memoized process-wide.
pub fn cyclotomic_poly(n: usize) -> Vec<i128> {
    assert!(n > 0, "cyclotomic order must be positive");
    static CACHE: OnceLock<Mutex<BTreeMap<usize, Vec<i128>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(p) = cache.lock().unwrap().get(&n) {
        return p.clone();
    }
    let p = compute_cyclotomic(n);
    cache.lock().unwrap().entry(n).or_insert(p).clone()
}

fn compute_cyclotomic(n: usize) -> Vec<i128> {
    if n == 1 {
        return vec![-1, 1]; // x − 1
    }
    // Power-of-two fast path: Φ_{2^k}(x) = x^{2^{k−1}} + 1.
    if n.is_power_of_two() {
        let half = n / 2;
        let mut p = vec![0i128; half + 1];
        p[0] = 1;
        p[half] = 1;
        return p;
    }
    // x^N − 1 divided by every proper-divisor cyclotomic.
    let mut num = vec![0i128; n + 1];
    num[0] = -1;
    num[n] = 1;
    for d in crate::num::divisors(n) {
        if d < n {
            num = poly_div_exact(&num, &compute_cyclotomic(d));
        }
    }
    num
}

/// Exact division of integer polynomials (`b` monic; remainder must be
/// zero — both hold for cyclotomic factors).
fn poly_div_exact(a: &[i128], b: &[i128]) -> Vec<i128> {
    assert_eq!(*b.last().unwrap(), 1, "divisor must be monic");
    let mut rem = a.to_vec();
    let db = b.len() - 1;
    let dq = rem.len() - 1 - db;
    let mut quot = vec![0i128; dq + 1];
    for top in (db..rem.len()).rev() {
        let c = rem[top];
        if c == 0 {
            continue;
        }
        quot[top - db] = c;
        for (i, &bc) in b.iter().enumerate() {
            rem[top - db + i] = rem[top - db + i]
                .checked_sub(c.checked_mul(bc).expect("cyclotomic overflow"))
                .expect("cyclotomic overflow");
        }
    }
    assert!(rem.iter().all(|&c| c == 0), "non-exact cyclotomic division");
    quot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::omega_pow;

    #[test]
    fn rational_arithmetic_normalizes() {
        let a = Rat::new(2, 4);
        assert_eq!(a, Rat::new(1, 2));
        assert_eq!(a.add(a), Rat::ONE);
        assert_eq!(Rat::new(1, 3).sub(Rat::new(1, 3)), Rat::ZERO);
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(3, 6).mul(Rat::new(2, 5)), Rat::new(1, 5));
        assert_eq!(Rat::int(7).numer(), 7);
        assert_eq!(Rat::new(3, -9).denom(), 3);
    }

    #[test]
    fn cyclotomic_polys_small_orders() {
        assert_eq!(cyclotomic_poly(1), vec![-1, 1]); // x − 1
        assert_eq!(cyclotomic_poly(2), vec![1, 1]); // x + 1
        assert_eq!(cyclotomic_poly(3), vec![1, 1, 1]); // x² + x + 1
        assert_eq!(cyclotomic_poly(4), vec![1, 0, 1]); // x² + 1
        assert_eq!(cyclotomic_poly(6), vec![1, -1, 1]); // x² − x + 1
        assert_eq!(cyclotomic_poly(12), vec![1, 0, -1, 0, 1]);
        // Degree is Euler's totient.
        for (n, phi) in [(8, 4), (9, 6), (10, 4), (15, 8), (16, 8), (24, 8)] {
            assert_eq!(cyclotomic_poly(n).len() - 1, phi, "Φ_{n}");
        }
    }

    #[test]
    fn root_powers_cycle_and_vanish() {
        for n in [2usize, 3, 4, 6, 8, 12, 16, 24, 64] {
            // ω^n = 1
            let mut p = Cyclo::one(n);
            for _ in 0..n {
                p = p.mul(&Cyclo::root(n, 1));
            }
            assert!(p.eq_exact(&Cyclo::one(n)), "ω_{n}^{n} ≠ 1");
            // Σ_k ω^k = 0 (geometric sum of all n-th roots)
            let mut s = Cyclo::zero(n);
            for k in 0..n {
                s = s.add(&Cyclo::root(n, k));
            }
            assert!(s.is_zero(), "Σ ω_{n}^k ≠ 0: {s:?}");
        }
    }

    #[test]
    fn nonzero_values_are_nonzero() {
        for n in [3usize, 4, 8, 12] {
            assert!(!Cyclo::one(n).is_zero());
            assert!(!Cyclo::root(n, 1).is_zero());
            let almost = Cyclo::one(n).add(&Cyclo::root(n, 1));
            assert!(!almost.is_zero(), "1 + ω_{n} reported zero");
        }
        // ω_4 + ω_4³ = −i + i = 0.
        let s = Cyclo::root(4, 1).add(&Cyclo::root(4, 3));
        assert!(s.is_zero());
    }

    #[test]
    fn mul_matches_float_arithmetic() {
        let n = 24;
        let a = Cyclo::root(n, 5).add(&Cyclo::from_rat(n, Rat::new(1, 2)));
        let b = Cyclo::root(n, 17).sub(&Cyclo::root(n, 2));
        let exact = a.mul(&b).to_cplx();
        let float = a.to_cplx() * b.to_cplx();
        assert!(exact.approx_eq(float, 1e-12), "{exact:?} vs {float:?}");
    }

    #[test]
    fn lift_preserves_value() {
        let a = Cyclo::root(6, 1).add(&Cyclo::one(6));
        let lifted = a.lift(24);
        assert_eq!(lifted.order(), 24);
        assert!(lifted.to_cplx().approx_eq(a.to_cplx(), 1e-12));
        // Exact cross-order equality via lift.
        assert!(Cyclo::root(6, 3).lift(12).eq_exact(&Cyclo::root(12, 6)));
    }

    #[test]
    fn snapping_recovers_exact_roots() {
        for n in [4usize, 8, 12, 20, 64, 128] {
            for k in 0..n {
                let c = omega_pow(n, k);
                let snapped = Cyclo::from_cplx_unit(c, n).expect("root must snap");
                assert!(
                    snapped.eq_exact(&Cyclo::root(n, k)),
                    "ω_{n}^{k} snapped to {snapped:?}"
                );
            }
        }
        // Non-unit and off-root constants must not snap.
        assert!(Cyclo::from_cplx_unit(Cplx::new(0.5, 0.0), 8).is_none());
        assert!(Cyclo::from_cplx_unit(Cplx::new(2.0, 0.0), 8).is_none());
        let between = Cplx::cis(-std::f64::consts::PI / 8.0); // ω_16, not an 8th root
        assert!(Cyclo::from_cplx_unit(between, 8).is_none());
        assert!(Cyclo::from_cplx_unit(between, 16).is_some());
    }

    #[test]
    fn dft4_rows_orthogonal_exactly() {
        // Exact DFT identity: Σ_j ω_4^{rj} · conj-row ω_4^{−sj} = 4·[r=s].
        let n = 4;
        for r in 0..n {
            for s in 0..n {
                let mut acc = Cyclo::zero(n);
                for j in 0..n {
                    acc = acc.add(&Cyclo::root(n, (r * j + (n - s) * j) % n));
                }
                if r == s {
                    assert!(acc.eq_exact(&Cyclo::from_rat(n, Rat::int(4))));
                } else {
                    assert!(acc.is_zero(), "rows {r},{s}: {acc:?}");
                }
            }
        }
    }

    #[test]
    fn scale_and_neg() {
        let n = 8;
        let a = Cyclo::root(n, 3);
        assert!(a.scale(Rat::ZERO).is_zero());
        assert!(a.add(&a.neg()).is_zero());
        let half = a.scale(Rat::new(1, 2));
        assert!(half.add(&half).eq_exact(&a));
    }

    #[test]
    fn terms_stay_sparse_and_pruned() {
        let n = 16;
        let a = Cyclo::root(n, 2).add(&Cyclo::root(n, 5));
        assert_eq!(a.terms(), 2);
        let cancelled = a.sub(&Cyclo::root(n, 5));
        assert_eq!(cancelled.terms(), 1, "cancelled term must be pruned");
    }
}
