//! Parser for the ASCII SPL syntax produced by `Display`.
//!
//! Grammar (whitespace-insensitive):
//! ```text
//! expr    := tensor ('*' tensor)*                 -- composition
//! tensor  := atom (tensop atom)*                  -- left-associative
//! tensop  := '@' | '@||' | '@bar'
//! atom    := 'I_' NUM | 'F_2' | 'DFT_' NUM
//!          | 'L^' NUM '_' NUM
//!          | 'T^' NUM '_' NUM ('[' NUM '..' NUM ']')?
//!          | 'dsum' '||'? '(' expr (',' expr)* ')'
//!          | 'smp' '(' NUM ',' NUM ')' '[' expr ']'
//!          | 'diag' '(' FLOAT ',' FLOAT (';' FLOAT ',' FLOAT)* ')'
//!          | '(' expr ')'
//! ```
//! `A @|| B` requires `A = I_p` (tagged parallel tensor); `A @bar I_µ`
//! requires `A` to denote a permutation.

use crate::ast::Spl;
use crate::builder;
use crate::cplx::Cplx;
use crate::diag::DiagSpec;
use std::sync::Arc;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse an SPL formula from its ASCII syntax.
pub fn parse(input: &str) -> Result<Spl, ParseError> {
    let mut p = Parser {
        s: input.as_bytes(),
        pos: 0,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn eat_str(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn num(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| self.err(format!("bad number: {e}")))
    }

    fn float(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos < self.s.len() && (self.s[self.pos] == b'-' || self.s[self.pos] == b'+') {
            self.pos += 1;
        }
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_digit()
                || self.s[self.pos] == b'.'
                || self.s[self.pos] == b'e'
                || self.s[self.pos] == b'E'
                || (self.pos > start
                    && (self.s[self.pos] == b'-' || self.s[self.pos] == b'+')
                    && matches!(self.s[self.pos - 1], b'e' | b'E')))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected float"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| self.err(format!("bad float: {e}")))
    }

    fn ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.s[start..self.pos]).into_owned()
    }

    fn expr(&mut self) -> Result<Spl, ParseError> {
        let mut parts = vec![self.tensor()?];
        while self.eat(b'*') {
            parts.push(self.tensor()?);
        }
        Ok(builder::compose(parts))
    }

    fn tensor(&mut self) -> Result<Spl, ParseError> {
        let mut left = self.atom()?;
        loop {
            self.skip_ws();
            if !self.s[self.pos..].starts_with(b"@") {
                break;
            }
            self.pos += 1;
            if self.s[self.pos..].starts_with(b"||") {
                self.pos += 2;
                let right = self.atom()?;
                let p = match left {
                    Spl::I(p) => p,
                    other => {
                        return Err(self.err(format!("@|| requires I_p on the left, got {other}")))
                    }
                };
                left = builder::tensor_par(p, right);
            } else if self.s[self.pos..].starts_with(b"bar") {
                self.pos += 3;
                let right = self.atom()?;
                let mu = match right {
                    Spl::I(mu) => mu,
                    other => {
                        return Err(self.err(format!("@bar requires I_µ on the right, got {other}")))
                    }
                };
                let perm = left.as_perm().ok_or_else(|| {
                    self.err(format!(
                        "@bar requires a permutation on the left, got {left}"
                    ))
                })?;
                left = builder::perm_bar(perm, mu);
            } else {
                let right = self.atom()?;
                left = builder::tensor(left, right);
            }
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Spl, ParseError> {
        self.skip_ws();
        if self.eat(b'(') {
            let e = self.expr()?;
            self.expect(b')')?;
            return Ok(e);
        }
        let id = self.ident();
        match id.as_str() {
            "I" => {
                self.expect(b'_')?;
                Ok(Spl::I(self.num()?))
            }
            "F" => {
                self.expect(b'_')?;
                let n = self.num()?;
                if n != 2 {
                    return Err(self.err("only F_2 is a primitive"));
                }
                Ok(Spl::F2)
            }
            "DFT" => {
                self.expect(b'_')?;
                Ok(Spl::Dft(self.num()?))
            }
            "L" => {
                self.expect(b'^')?;
                let mn = self.num()?;
                self.expect(b'_')?;
                let m = self.num()?;
                if m == 0 || mn % m != 0 {
                    return Err(self.err(format!("L^{mn}_{m}: m must divide mn")));
                }
                Ok(builder::stride(mn, m))
            }
            "T" => {
                self.expect(b'^')?;
                let mn = self.num()?;
                self.expect(b'_')?;
                let n = self.num()?;
                if n == 0 || mn % n != 0 {
                    return Err(self.err(format!("T^{mn}_{n}: n must divide mn")));
                }
                let m = mn / n;
                if self.eat(b'[') {
                    let off = self.num()?;
                    if !self.eat_str("..") {
                        return Err(self.err("expected '..' in twiddle segment"));
                    }
                    let end = self.num()?;
                    self.expect(b']')?;
                    if end < off || end > mn {
                        return Err(self.err("bad twiddle segment range"));
                    }
                    Ok(Spl::Diag(DiagSpec::Twiddle {
                        m,
                        n,
                        off,
                        len: end - off,
                    }))
                } else {
                    Ok(builder::twiddle(m, n))
                }
            }
            "dsum" => {
                let par = self.eat_str("||");
                self.expect(b'(')?;
                let mut parts = vec![self.expr()?];
                while self.eat(b',') {
                    parts.push(self.expr()?);
                }
                self.expect(b')')?;
                Ok(if par {
                    builder::dsum_par(parts)
                } else {
                    builder::dsum(parts)
                })
            }
            "smp" => {
                self.expect(b'(')?;
                let p = self.num()?;
                self.expect(b',')?;
                let mu = self.num()?;
                self.expect(b')')?;
                self.expect(b'[')?;
                let e = self.expr()?;
                self.expect(b']')?;
                Ok(builder::smp(p, mu, e))
            }
            "vec" => {
                self.expect(b'(')?;
                let nu = self.num()?;
                self.expect(b')')?;
                self.expect(b'[')?;
                let e = self.expr()?;
                self.expect(b']')?;
                Ok(builder::vec_tag(nu, e))
            }
            "dist" => {
                self.expect(b'(')?;
                let q = self.num()?;
                self.expect(b')')?;
                self.expect(b'[')?;
                let e = self.expr()?;
                self.expect(b']')?;
                Ok(builder::dist_tag(q, e))
            }
            "diag" => {
                self.expect(b'(')?;
                let mut entries = Vec::new();
                loop {
                    let re = self.float()?;
                    self.expect(b',')?;
                    let im = self.float()?;
                    entries.push(Cplx::new(re, im));
                    if !self.eat(b';') {
                        break;
                    }
                }
                self.expect(b')')?;
                Ok(Spl::Diag(DiagSpec::Explicit(Arc::new(entries))))
            }
            "" => Err(self.err("expected formula atom")),
            other => Err(self.err(format!("unknown atom '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::matrix::assert_formula_eq;

    fn roundtrip(f: &Spl) {
        let s = f.to_string();
        let g = parse(&s).unwrap_or_else(|e| panic!("cannot reparse `{s}`: {e}"));
        // Structures may differ (e.g. Perm nodes vs Tensor-of-perm), so
        // compare semantics.
        if f.dim() <= 64 {
            assert_formula_eq(f, &g, 1e-9);
        } else {
            assert_eq!(f.dim(), g.dim());
        }
    }

    #[test]
    fn parse_primitives() {
        assert_eq!(parse("I_4").unwrap(), i(4));
        assert_eq!(parse("F_2").unwrap(), f2());
        assert_eq!(parse("DFT_16").unwrap(), dft(16));
        assert_eq!(parse("T^8_4").unwrap(), twiddle(2, 4));
        assert_eq!(parse("L^8_2").unwrap(), stride(8, 2));
    }

    #[test]
    fn parse_compose_and_tensor() {
        let f = parse("(DFT_2 @ I_4) * T^8_4 * (I_2 @ DFT_4) * L^8_2").unwrap();
        assert_formula_eq(&f, &cooley_tukey(2, 4), 1e-9);
    }

    #[test]
    fn parse_parallel_constructs() {
        let f = parse("I_2 @|| DFT_4").unwrap();
        assert_eq!(f, tensor_par(2, dft(4)));
        let g = parse("smp(2,4)[DFT_8]").unwrap();
        assert_eq!(g, smp(2, 4, dft(8)));
        let h = parse("L^4_2 @bar I_4").unwrap();
        assert_eq!(h, perm_bar(crate::perm::Perm::stride(4, 2), 4));
        let d = parse("dsum||(DFT_2, DFT_2)").unwrap();
        assert_eq!(d, dsum_par(vec![dft(2), dft(2)]));
    }

    #[test]
    fn parse_twiddle_segment() {
        let f = parse("T^8_4[4..8]").unwrap();
        assert_eq!(
            f,
            Spl::Diag(crate::diag::DiagSpec::Twiddle {
                m: 2,
                n: 4,
                off: 4,
                len: 4
            })
        );
    }

    #[test]
    fn parse_explicit_diag() {
        let f = parse("diag(1,0;0,-1.5)").unwrap();
        match f {
            Spl::Diag(crate::diag::DiagSpec::Explicit(v)) => {
                assert_eq!(v.len(), 2);
                assert!(v[1].approx_eq(Cplx::new(0.0, -1.5), 0.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn roundtrip_various() {
        roundtrip(&cooley_tukey(2, 4));
        roundtrip(&six_step(4, 4));
        roundtrip(&tensor_par(2, tensor(i(2), dft(4))));
        roundtrip(&smp(2, 4, dft(32)));
        roundtrip(&dsum(vec![dft(2), f2(), i(3)]));
        roundtrip(&perm_bar(crate::perm::Perm::stride(8, 2), 4));
        roundtrip(&diag(vec![Cplx::new(1.0, 2.0), Cplx::new(-0.5, 0.0)]));
    }

    #[test]
    fn errors_reported_with_position() {
        assert!(parse("").is_err());
        assert!(parse("I_").is_err());
        assert!(parse("DFT_4 extra").is_err());
        assert!(parse("F_3").is_err());
        assert!(parse("L^8_3").is_err()); // 3 does not divide 8
        assert!(parse("DFT_2 @|| DFT_2").is_err()); // @|| needs I_p left
        assert!(parse("DFT_2 @bar I_4").is_err()); // @bar needs perm left
        assert!(parse("L^4_2 @bar DFT_4").is_err()); // @bar needs I right
        assert!(parse("bogus_3").is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse("(DFT_2@I_4)*T^8_4*(I_2@DFT_4)*L^8_2").unwrap();
        let b = parse("  ( DFT_2 @ I_4 )\n * T^8_4 * ( I_2 @ DFT_4 ) * L^8_2  ").unwrap();
        assert_eq!(a, b);
    }
}
