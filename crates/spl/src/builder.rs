//! Convenience constructors for SPL formulas.
//!
//! These keep rule implementations close to the paper's notation:
//! `compose(vec![tensor(dft(m), i(n)), twiddle(m, n), …])` reads like
//! eq. (1).

use crate::ast::Spl;
use crate::cplx::Cplx;
use crate::diag::DiagSpec;
use crate::perm::Perm;
use std::sync::Arc;

/// Identity `I_n`.
pub fn i(n: usize) -> Spl {
    Spl::I(n)
}

/// Unexpanded transform `DFT_n`.
pub fn dft(n: usize) -> Spl {
    Spl::Dft(n)
}

/// The butterfly base case `F_2`.
pub fn f2() -> Spl {
    Spl::F2
}

/// Twiddle diagonal `T^{mn}_n` of the Cooley–Tukey rule (paper's `D_{m,n}`).
pub fn twiddle(m: usize, n: usize) -> Spl {
    Spl::Diag(DiagSpec::twiddle(m, n))
}

/// Explicit diagonal.
pub fn diag(entries: Vec<Cplx>) -> Spl {
    Spl::Diag(DiagSpec::Explicit(Arc::new(entries)))
}

/// Stride permutation `L^{mn}_m`.
pub fn stride(mn: usize, m: usize) -> Spl {
    Spl::Perm(Perm::stride(mn, m))
}

/// Arbitrary permutation node.
pub fn perm(p: Perm) -> Spl {
    Spl::Perm(p)
}

/// Matrix product; single-element products collapse.
pub fn compose(mut fs: Vec<Spl>) -> Spl {
    assert!(!fs.is_empty(), "compose of nothing");
    if fs.len() == 1 {
        fs.pop().unwrap()
    } else {
        Spl::Compose(fs)
    }
}

/// Tensor product `A ⊗ B`.
pub fn tensor(a: Spl, b: Spl) -> Spl {
    Spl::Tensor(Box::new(a), Box::new(b))
}

/// Direct sum `⊕ A_i`.
pub fn dsum(fs: Vec<Spl>) -> Spl {
    assert!(!fs.is_empty(), "direct sum of nothing");
    Spl::DirectSum(fs)
}

/// Tagged parallel tensor `I_p ⊗∥ A` (paper eq. (4)).
pub fn tensor_par(p: usize, a: Spl) -> Spl {
    Spl::TensorPar { p, a: Box::new(a) }
}

/// Tagged parallel direct sum `⊕∥ A_i`.
pub fn dsum_par(fs: Vec<Spl>) -> Spl {
    assert!(!fs.is_empty(), "parallel direct sum of nothing");
    Spl::DirectSumPar(fs)
}

/// Tagged cache-line permutation `P ⊗̄ I_µ`.
pub fn perm_bar(p: Perm, mu: usize) -> Spl {
    Spl::PermBar { perm: p, mu }
}

/// Rewriting tag `smp(p, µ)`.
pub fn smp(p: usize, mu: usize, a: Spl) -> Spl {
    Spl::Smp {
        p,
        mu,
        a: Box::new(a),
    }
}

/// Short-vector tag `vec(ν)`.
pub fn vec_tag(nu: usize, a: Spl) -> Spl {
    Spl::Vec { nu, a: Box::new(a) }
}

/// Multi-process sharding tag `dist(q)`.
pub fn dist_tag(q: usize, a: Spl) -> Spl {
    Spl::Dist { q, a: Box::new(a) }
}

/// The Cooley–Tukey right-hand side of rule (1):
/// `(DFT_m ⊗ I_n) · T^{mn}_n · (I_m ⊗ DFT_n) · L^{mn}_m`.
pub fn cooley_tukey(m: usize, n: usize) -> Spl {
    compose(vec![
        tensor(dft(m), i(n)),
        twiddle(m, n),
        tensor(i(m), dft(n)),
        stride(m * n, m),
    ])
}

/// The six-step FFT right-hand side of rule (3):
/// `L^{mn}_m (I_n ⊗ DFT_m) L^{mn}_n T (I_m ⊗ DFT_n) L^{mn}_m`.
pub fn six_step(m: usize, n: usize) -> Spl {
    compose(vec![
        stride(m * n, m),
        tensor(i(n), dft(m)),
        stride(m * n, n),
        twiddle(m, n),
        tensor(i(m), dft(n)),
        stride(m * n, m),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_dims() {
        assert_eq!(cooley_tukey(2, 4).dim(), 8);
        assert_eq!(cooley_tukey(2, 4).validate().unwrap(), 8);
        assert_eq!(six_step(4, 4).validate().unwrap(), 16);
    }

    #[test]
    fn compose_collapses_singleton() {
        assert_eq!(compose(vec![dft(4)]), dft(4));
    }

    #[test]
    #[should_panic(expected = "compose of nothing")]
    fn compose_rejects_empty() {
        compose(vec![]);
    }
}
