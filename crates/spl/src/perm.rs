//! Permutations as index functions.
//!
//! The stride permutation `L^{mn}_m` is the only primitive permutation the
//! Cooley–Tukey framework needs; tensoring with identities and composition
//! generate everything that appears in the rules. Permutations are kept
//! symbolic so they can be folded into adjacent loops as gather/scatter
//! index mappings (the paper's loop-merging, ref. [11]).

use std::fmt;

/// A symbolic permutation on `{0, …, n-1}`.
#[derive(Clone, Debug, PartialEq)]
pub enum Perm {
    /// Identity on `n` points.
    Id(usize),
    /// Stride permutation `L^{mn}_m`: output index `i·n + j` takes input
    /// index `j·m + i` for `0 ≤ i < m`, `0 ≤ j < n` (paper §2.2, reading
    /// `in+j ↦ jm+i` as the gather map). Viewing `x` as an `n×m` matrix
    /// stored row-major, `L^{mn}_m x` is its `m×n` transpose.
    Stride {
        /// Total number of points `mn`.
        mn: usize,
        /// The stride parameter `m` (must divide `mn`).
        m: usize,
    },
    /// `P ⊗ I_r` — permutes `dim(P)` blocks of `r` consecutive points.
    TensorId(Box<Perm>, usize),
    /// `I_l ⊗ P` — applies `P` independently within `l` consecutive blocks.
    IdTensor(usize, Box<Perm>),
    /// Composition `P_0 · P_1 · … · P_{k-1}` (applied right to left, like
    /// matrix products).
    Compose(Vec<Perm>),
}

impl Perm {
    /// Stride permutation `L^{mn}_m`; `m` must divide `mn`.
    pub fn stride(mn: usize, m: usize) -> Perm {
        assert!(
            m > 0 && mn.is_multiple_of(m),
            "L^{{{mn}}}_{{{m}}}: {m} must divide {mn}"
        );
        if m == 1 || m == mn {
            Perm::Id(mn)
        } else {
            Perm::Stride { mn, m }
        }
    }

    /// Number of points permuted.
    pub fn dim(&self) -> usize {
        match self {
            Perm::Id(n) => *n,
            Perm::Stride { mn, .. } => *mn,
            Perm::TensorId(p, r) => p.dim() * r,
            Perm::IdTensor(l, p) => l * p.dim(),
            Perm::Compose(ps) => ps.first().map_or(0, |p| p.dim()),
        }
    }

    /// Gather form: for `y = P x`, `y[r] = x[self.src(r)]`.
    pub fn src(&self, r: usize) -> usize {
        debug_assert!(r < self.dim(), "index {r} out of range {}", self.dim());
        match self {
            Perm::Id(_) => r,
            // y[i·n + j] = x[j·m + i]  ⇒  for output r = i·n + j:
            // i = r div n, j = r mod n, src = j·m + i with n = mn/m.
            Perm::Stride { mn, m } => {
                let n = mn / m;
                (r % n) * m + r / n
            }
            Perm::TensorId(p, rr) => p.src(r / rr) * rr + r % rr,
            Perm::IdTensor(_, p) => {
                let np = p.dim();
                (r / np) * np + p.src(r % np)
            }
            // y = P0 (P1 x): y[r] = (P1 x)[P0.src(r)] = x[P1.src(P0.src(r))]
            Perm::Compose(ps) => ps.iter().fold(r, |acc, p| p.src(acc)),
        }
    }

    /// Scatter form: for `y = P x`, `y[self.dest(s)] = x[s]`.
    pub fn dest(&self, s: usize) -> usize {
        debug_assert!(s < self.dim());
        match self {
            Perm::Id(_) => s,
            // input j·m + i goes to i·n + j: j = s div m, i = s mod m.
            Perm::Stride { mn, m } => {
                let n = mn / m;
                (s % m) * n + s / m
            }
            Perm::TensorId(p, rr) => p.dest(s / rr) * rr + s % rr,
            Perm::IdTensor(_, p) => {
                let np = p.dim();
                (s / np) * np + p.dest(s % np)
            }
            Perm::Compose(ps) => ps.iter().rev().fold(s, |acc, p| p.dest(acc)),
        }
    }

    /// Inverse permutation. `L^{mn}_m` inverts to `L^{mn}_{mn/m}`.
    pub fn inverse(&self) -> Perm {
        match self {
            Perm::Id(n) => Perm::Id(*n),
            Perm::Stride { mn, m } => Perm::stride(*mn, mn / m),
            Perm::TensorId(p, r) => Perm::TensorId(Box::new(p.inverse()), *r),
            Perm::IdTensor(l, p) => Perm::IdTensor(*l, Box::new(p.inverse())),
            Perm::Compose(ps) => Perm::Compose(ps.iter().rev().map(|p| p.inverse()).collect()),
        }
    }

    /// True if this permutation is (structurally reducible to) the identity.
    pub fn is_identity(&self) -> bool {
        let n = self.dim();
        (0..n).all(|r| self.src(r) == r)
    }

    /// Apply to a slice out of place.
    pub fn apply<T: Copy>(&self, x: &[T], y: &mut [T]) {
        let n = self.dim();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for r in 0..n {
            y[r] = x[self.src(r)];
        }
    }

    /// The permutation as an index table `tbl[r] = src(r)`.
    pub fn table(&self) -> Vec<usize> {
        (0..self.dim()).map(|r| self.src(r)).collect()
    }

    /// True if the permutation moves whole blocks of `µ` consecutive points
    /// (i.e. it can be written `Q ⊗ I_µ` for some permutation `Q`).
    /// This is the paper's cache-line-safety condition for `P ⊗̄ I_µ`.
    pub fn is_block_perm(&self, mu: usize) -> bool {
        let n = self.dim();
        if mu == 0 || !n.is_multiple_of(mu) {
            return false;
        }
        (0..n / mu).all(|b| {
            let base = self.src(b * mu);
            base.is_multiple_of(mu) && (1..mu).all(|k| self.src(b * mu + k) == base + k)
        })
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Perm::Id(n) => write!(f, "I_{n}"),
            Perm::Stride { mn, m } => write!(f, "L^{mn}_{m}"),
            Perm::TensorId(p, r) => write!(f, "({p} @ I_{r})"),
            Perm::IdTensor(l, p) => write!(f, "(I_{l} @ {p})"),
            Perm::Compose(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", parts.join(" * "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(p: &Perm) {
        let n = p.dim();
        let mut seen = vec![false; n];
        for r in 0..n {
            let s = p.src(r);
            assert!(s < n && !seen[s], "{p}: not a bijection at {r}");
            seen[s] = true;
            // src and dest are mutually inverse index maps
            assert_eq!(p.dest(s), r, "{p}: dest(src({r})) != {r}");
        }
    }

    #[test]
    fn stride_matches_paper_definition() {
        // L^{mn}_m : output i·n + j gathers input j·m + i
        let (m, n) = (2usize, 3usize);
        let p = Perm::stride(m * n, m);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(p.src(i * n + j), j * m + i);
                assert_eq!(p.dest(j * m + i), i * n + j);
            }
        }
    }

    #[test]
    fn stride_transposes_matrix() {
        // x viewed as n×m row-major; L^{mn}_m x is the m×n transpose.
        let (m, n) = (3usize, 4usize);
        let p = Perm::stride(m * n, m);
        let x: Vec<usize> = (0..m * n).collect();
        let mut y = vec![0usize; m * n];
        p.apply(&x, &mut y);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(y[i * n + j], x[j * m + i]);
            }
        }
    }

    #[test]
    fn degenerate_strides_are_identity() {
        assert_eq!(Perm::stride(8, 1), Perm::Id(8));
        assert_eq!(Perm::stride(8, 8), Perm::Id(8));
    }

    #[test]
    fn all_constructors_are_bijections() {
        let l62 = Perm::stride(6, 2);
        check_bijection(&l62);
        check_bijection(&Perm::TensorId(Box::new(l62.clone()), 4));
        check_bijection(&Perm::IdTensor(3, Box::new(l62.clone())));
        check_bijection(&Perm::Compose(vec![Perm::stride(6, 3), Perm::stride(6, 2)]));
    }

    #[test]
    fn inverse_composes_to_identity() {
        let cases = vec![
            Perm::stride(12, 3),
            Perm::TensorId(Box::new(Perm::stride(6, 2)), 2),
            Perm::IdTensor(2, Box::new(Perm::stride(6, 3))),
            Perm::Compose(vec![Perm::stride(8, 2), Perm::stride(8, 4)]),
        ];
        for p in cases {
            let pi = p.inverse();
            let comp = Perm::Compose(vec![p.clone(), pi]);
            assert!(comp.is_identity(), "{p} * inverse != id");
        }
    }

    #[test]
    fn stride_inverse_identity_l_mn_m() {
        // (L^{mn}_m)^{-1} = L^{mn}_{n}
        let p = Perm::stride(12, 4);
        assert_eq!(p.inverse(), Perm::stride(12, 3));
    }

    #[test]
    fn compose_order_is_matrix_order() {
        // y = (P0 · P1) x must equal P0 applied to (P1 x).
        let p0 = Perm::stride(6, 2);
        let p1 = Perm::stride(6, 3);
        let comp = Perm::Compose(vec![p0.clone(), p1.clone()]);
        let x: Vec<usize> = (0..6).collect();
        let mut t = vec![0; 6];
        let mut y1 = vec![0; 6];
        p1.apply(&x, &mut t);
        p0.apply(&t, &mut y1);
        let mut y2 = vec![0; 6];
        comp.apply(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn block_perm_detection() {
        // L^{pn}_p ⊗ I_µ moves whole µ-blocks.
        let mu = 4;
        let p = Perm::TensorId(Box::new(Perm::stride(8, 2)), mu);
        assert!(p.is_block_perm(mu));
        assert!(p.is_block_perm(2)); // coarser blocks still contiguous
                                     // A raw stride permutation with stride not multiple of µ is not.
        let q = Perm::stride(8, 2);
        assert!(!q.is_block_perm(4));
        assert!(q.is_block_perm(1)); // every permutation is 1-block
    }

    #[test]
    fn table_matches_src() {
        let p = Perm::stride(6, 2);
        assert_eq!(p.table(), (0..6).map(|r| p.src(r)).collect::<Vec<_>>());
    }
}
