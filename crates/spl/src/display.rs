//! Printing of SPL formulas.
//!
//! `Display` produces a parseable ASCII syntax (see `parse`); `pretty`
//! produces a Unicode rendering close to the paper's notation.

use crate::ast::Spl;
use crate::diag::DiagSpec;
use std::fmt;

impl fmt::Display for Spl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spl::I(n) => write!(f, "I_{n}"),
            Spl::F2 => write!(f, "F_2"),
            Spl::Dft(n) => write!(f, "DFT_{n}"),
            Spl::Diag(DiagSpec::Twiddle { m, n, off, len }) => {
                if *off == 0 && *len == m * n {
                    write!(f, "T^{}_{}", m * n, n)
                } else {
                    write!(f, "T^{}_{}[{}..{}]", m * n, n, off, off + len)
                }
            }
            Spl::Diag(DiagSpec::Explicit(v)) => {
                write!(f, "diag(")?;
                for (k, z) in v.iter().enumerate() {
                    if k > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{},{}", z.re, z.im)?;
                }
                write!(f, ")")
            }
            Spl::Perm(p) => write!(f, "{p}"),
            Spl::Compose(fs) => {
                write!(f, "(")?;
                for (k, x) in fs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Spl::Tensor(a, b) => write!(f, "({a} @ {b})"),
            Spl::DirectSum(fs) => {
                write!(f, "dsum(")?;
                for (k, x) in fs.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Spl::DirectSumPar(fs) => {
                write!(f, "dsum||(")?;
                for (k, x) in fs.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Spl::TensorPar { p, a } => write!(f, "(I_{p} @|| {a})"),
            Spl::PermBar { perm, mu } => write!(f, "({perm} @bar I_{mu})"),
            Spl::Smp { p, mu, a } => write!(f, "smp({p},{mu})[{a}]"),
            Spl::Vec { nu, a } => write!(f, "vec({nu})[{a}]"),
            Spl::Dist { q, a } => write!(f, "dist({q})[{a}]"),
        }
    }
}

impl Spl {
    /// Unicode rendering close to the paper's notation (not parseable).
    pub fn pretty(&self) -> String {
        match self {
            Spl::I(n) => format!("I{}", sub(*n)),
            Spl::F2 => "F₂".to_string(),
            Spl::Dft(n) => format!("DFT{}", sub(*n)),
            Spl::Diag(DiagSpec::Twiddle { m, n, off, len }) => {
                if *off == 0 && *len == m * n {
                    format!("T^{}{}", m * n, sub(*n))
                } else {
                    format!("T^{}{}[{}..{})", m * n, sub(*n), off, off + len)
                }
            }
            Spl::Diag(DiagSpec::Explicit(v)) => format!("diag(·{}·)", v.len()),
            Spl::Perm(p) => p.to_string(),
            Spl::Compose(fs) => fs
                .iter()
                .map(|x| x.pretty())
                .collect::<Vec<_>>()
                .join(" · "),
            Spl::Tensor(a, b) => format!("({} ⊗ {})", a.pretty(), b.pretty()),
            Spl::DirectSum(fs) => format!(
                "({})",
                fs.iter()
                    .map(|x| x.pretty())
                    .collect::<Vec<_>>()
                    .join(" ⊕ ")
            ),
            Spl::DirectSumPar(fs) => format!(
                "({})",
                fs.iter()
                    .map(|x| x.pretty())
                    .collect::<Vec<_>>()
                    .join(" ⊕∥ ")
            ),
            Spl::TensorPar { p, a } => format!("(I{} ⊗∥ {})", sub(*p), a.pretty()),
            Spl::PermBar { perm, mu } => format!("({perm} ⊗̄ I{})", sub(*mu)),
            Spl::Smp { p, mu, a } => format!("⟨{}⟩smp({p},{mu})", a.pretty()),
            Spl::Vec { nu, a } => format!("⟨{}⟩vec(ν={nu})", a.pretty()),
            Spl::Dist { q, a } => format!("⟨{}⟩dist(q={q})", a.pretty()),
        }
    }
}

fn sub(n: usize) -> String {
    const DIGITS: [char; 10] = ['₀', '₁', '₂', '₃', '₄', '₅', '₆', '₇', '₈', '₉'];
    n.to_string()
        .chars()
        .map(|c| DIGITS[c.to_digit(10).unwrap() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::builder::*;

    #[test]
    fn display_primitives() {
        assert_eq!(i(4).to_string(), "I_4");
        assert_eq!(f2().to_string(), "F_2");
        assert_eq!(dft(8).to_string(), "DFT_8");
        assert_eq!(twiddle(2, 4).to_string(), "T^8_4");
        assert_eq!(stride(8, 2).to_string(), "L^8_2");
    }

    #[test]
    fn display_cooley_tukey_reads_like_paper() {
        let f = cooley_tukey(2, 4);
        assert_eq!(
            f.to_string(),
            "((DFT_2 @ I_4) * T^8_4 * (I_2 @ DFT_4) * L^8_2)"
        );
    }

    #[test]
    fn display_parallel_constructs() {
        assert_eq!(tensor_par(2, dft(4)).to_string(), "(I_2 @|| DFT_4)");
        assert_eq!(smp(2, 4, dft(8)).to_string(), "smp(2,4)[DFT_8]");
        assert_eq!(
            dsum_par(vec![dft(2), dft(2)]).to_string(),
            "dsum||(DFT_2, DFT_2)"
        );
        let pb = perm_bar(crate::perm::Perm::stride(4, 2), 4);
        assert_eq!(pb.to_string(), "(L^4_2 @bar I_4)");
    }

    #[test]
    fn display_twiddle_segment() {
        use crate::ast::Spl;
        use crate::diag::DiagSpec;
        let seg = Spl::Diag(DiagSpec::Twiddle {
            m: 2,
            n: 4,
            off: 4,
            len: 4,
        });
        assert_eq!(seg.to_string(), "T^8_4[4..8]");
    }

    #[test]
    fn pretty_uses_unicode() {
        let f = cooley_tukey(2, 4);
        let p = f.pretty();
        assert!(p.contains('⊗'), "{p}");
        assert!(p.contains("DFT₂"), "{p}");
    }
}
