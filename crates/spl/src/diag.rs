//! Diagonal matrices: the Cooley–Tukey twiddle-factor diagonal `T^{mn}_n`
//! (called `D_{m,n}` in the paper's eq. (1)) and its contiguous segments
//! produced by parallelization rule (11), plus explicit diagonals for tests.

use crate::cplx::Cplx;
use crate::num::omega_pow2;
use std::sync::Arc;

/// Specification of a diagonal matrix.
#[derive(Clone, Debug, PartialEq)]
pub enum DiagSpec {
    /// Segment `[off, off+len)` of the twiddle diagonal `T^{mn}_n`, whose
    /// full diagonal entry at position `i*n + j` (with `0 ≤ i < m`,
    /// `0 ≤ j < n`) is `ω_{mn}^{i·j}`.
    ///
    /// The full diagonal is `off = 0, len = m*n`. Rule (11) splits it into
    /// `p` segments `D_i` of length `m*n/p`.
    Twiddle {
        /// Row count `m` of the Cooley–Tukey split.
        m: usize,
        /// Column count `n` of the Cooley–Tukey split.
        n: usize,
        /// Start of the segment within the full diagonal.
        off: usize,
        /// Segment length.
        len: usize,
    },
    /// An arbitrary explicit diagonal (mainly for tests and hand-built
    /// formulas). Shared so that clones of formulas stay cheap.
    Explicit(Arc<Vec<Cplx>>),
}

impl DiagSpec {
    /// Full twiddle diagonal `T^{mn}_n` of the Cooley–Tukey rule.
    pub fn twiddle(m: usize, n: usize) -> Self {
        DiagSpec::Twiddle {
            m,
            n,
            off: 0,
            len: m * n,
        }
    }

    /// Dimension (number of diagonal entries).
    pub fn len(&self) -> usize {
        match self {
            DiagSpec::Twiddle { len, .. } => *len,
            DiagSpec::Explicit(v) => v.len(),
        }
    }

    /// True for a zero-length diagonal.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Diagonal entry at local position `k` (i.e. absolute position
    /// `off + k` for twiddle segments).
    #[inline]
    pub fn entry(&self, k: usize) -> Cplx {
        match self {
            DiagSpec::Twiddle { m, n, off, len } => {
                debug_assert!(k < *len);
                let abs = off + k;
                let i = abs / n;
                let j = abs % n;
                debug_assert!(i < *m);
                omega_pow2(m * n, i, j)
            }
            DiagSpec::Explicit(v) => v[k],
        }
    }

    /// Materialize all entries.
    pub fn entries(&self) -> Vec<Cplx> {
        (0..self.len()).map(|k| self.entry(k)).collect()
    }

    /// Split into `p` contiguous equal segments (rule (11)). Requires
    /// `p | len`.
    pub fn split(&self, p: usize) -> Vec<DiagSpec> {
        let total = self.len();
        assert!(
            p > 0 && total.is_multiple_of(p),
            "diag split: {p} must divide {total}"
        );
        let seg = total / p;
        (0..p)
            .map(|i| match self {
                DiagSpec::Twiddle { m, n, off, .. } => DiagSpec::Twiddle {
                    m: *m,
                    n: *n,
                    off: off + i * seg,
                    len: seg,
                },
                DiagSpec::Explicit(v) => {
                    DiagSpec::Explicit(Arc::new(v[i * seg..(i + 1) * seg].to_vec()))
                }
            })
            .collect()
    }

    /// Pointwise multiply a vector in place by this diagonal.
    pub fn scale(&self, data: &mut [Cplx]) {
        assert_eq!(data.len(), self.len(), "diag scale: dimension mismatch");
        for (k, z) in data.iter_mut().enumerate() {
            *z *= self.entry(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::omega_pow;

    #[test]
    fn twiddle_entries_match_definition() {
        let d = DiagSpec::twiddle(2, 4);
        assert_eq!(d.len(), 8);
        for i in 0..2 {
            for j in 0..4 {
                let got = d.entry(i * 4 + j);
                let want = omega_pow(8, i * j);
                assert!(got.approx_eq(want, 1e-12), "i={i} j={j}");
            }
        }
        // First row (i = 0) is all ones.
        for j in 0..4 {
            assert!(d.entry(j).approx_eq(Cplx::ONE, 1e-15));
        }
    }

    #[test]
    fn split_preserves_entries() {
        let d = DiagSpec::twiddle(4, 4);
        let parts = d.split(4);
        assert_eq!(parts.len(), 4);
        let mut recon = Vec::new();
        for p in &parts {
            assert_eq!(p.len(), 4);
            recon.extend(p.entries());
        }
        let full = d.entries();
        for (a, b) in full.iter().zip(&recon) {
            assert!(a.approx_eq(*b, 0.0));
        }
    }

    #[test]
    fn split_explicit() {
        let v: Vec<Cplx> = (0..6).map(|k| Cplx::real(k as f64)).collect();
        let d = DiagSpec::Explicit(Arc::new(v.clone()));
        let parts = d.split(3);
        assert_eq!(parts[1].entries(), vec![Cplx::real(2.0), Cplx::real(3.0)]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn split_requires_divisibility() {
        DiagSpec::twiddle(2, 3).split(4);
    }

    #[test]
    fn scale_applies_pointwise() {
        let d = DiagSpec::Explicit(Arc::new(vec![Cplx::real(2.0), Cplx::I]));
        let mut v = vec![Cplx::ONE, Cplx::ONE];
        d.scale(&mut v);
        assert!(v[0].approx_eq(Cplx::real(2.0), 0.0));
        assert!(v[1].approx_eq(Cplx::I, 0.0));
    }
}
