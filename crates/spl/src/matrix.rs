//! Dense materialization of formulas for small sizes.
//!
//! Used by tests to assert *matrix equality* of the two sides of a rewrite
//! rule — the strongest possible correctness statement for a rule.

use crate::ast::Spl;
use crate::cplx::Cplx;

/// A dense row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Entries, row-major.
    pub data: Vec<Cplx>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![Cplx::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for k in 0..n {
            m[(k, k)] = Cplx::ONE;
        }
        m
    }

    /// `y = M x`.
    pub fn mul_vec(&self, x: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let mut acc = Cplx::ZERO;
                for c in 0..self.cols {
                    acc = self[(r, c)].mul_add(x[c], acc);
                }
                acc
            })
            .collect()
    }

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matrix product dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Cplx::ZERO {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Kronecker product `self ⊗ other`.
    pub fn kron(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self[(r1, c1)];
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        out[(r1 * other.rows + r2, c1 * other.cols + c2)] = a * other[(r2, c2)];
                    }
                }
            }
        }
        out
    }

    /// Maximum entrywise distance to another matrix.
    pub fn dist(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        crate::cplx::max_dist(&self.data, &other.data)
    }

    /// True if every entry is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.dist(other) <= tol
    }

    /// True if the matrix is a permutation matrix (exactly one 1 per
    /// row/column, all else 0), within `tol`.
    pub fn is_permutation(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let n = self.rows;
        let mut col_seen = vec![false; n];
        for r in 0..n {
            let mut ones = 0;
            for c in 0..n {
                let z = self[(r, c)];
                if z.approx_eq(Cplx::ONE, tol) {
                    ones += 1;
                    if col_seen[c] {
                        return false;
                    }
                    col_seen[c] = true;
                } else if !z.approx_eq(Cplx::ZERO, tol) {
                    return false;
                }
            }
            if ones != 1 {
                return false;
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = Cplx;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Cplx {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Cplx {
        &mut self.data[r * self.cols + c]
    }
}

impl Spl {
    /// Materialize the formula as a dense matrix by applying it to the
    /// standard basis. Intended for dims ≤ a few hundred (tests only).
    pub fn to_matrix(&self) -> Mat {
        let n = self.dim();
        let mut m = Mat::zeros(n, n);
        let mut e = vec![Cplx::ZERO; n];
        for c in 0..n {
            e[c] = Cplx::ONE;
            let col = self.eval(&e);
            e[c] = Cplx::ZERO;
            for r in 0..n {
                m[(r, c)] = col[r];
            }
        }
        m
    }
}

/// Assert two formulas denote the same matrix (strongest rule check).
pub fn assert_formula_eq(a: &Spl, b: &Spl, tol: f64) {
    assert_eq!(
        a.dim(),
        b.dim(),
        "formula dims differ: {} vs {}",
        a.dim(),
        b.dim()
    );
    let (ma, mb) = (a.to_matrix(), b.to_matrix());
    let d = ma.dist(&mb);
    assert!(
        d <= tol,
        "formulas differ: max entry distance {d} > {tol}\n  lhs={a}\n  rhs={b}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn identity_matrix() {
        let m = Mat::identity(3);
        assert!(m.is_permutation(1e-12));
        let x = vec![Cplx::real(1.0), Cplx::real(2.0), Cplx::real(3.0)];
        assert_eq!(m.mul_vec(&x), x);
    }

    #[test]
    fn to_matrix_of_f2() {
        let m = f2().to_matrix();
        assert!(m[(0, 0)].approx_eq(Cplx::ONE, 0.0));
        assert!(m[(0, 1)].approx_eq(Cplx::ONE, 0.0));
        assert!(m[(1, 0)].approx_eq(Cplx::ONE, 0.0));
        assert!(m[(1, 1)].approx_eq(Cplx::real(-1.0), 0.0));
    }

    #[test]
    fn stride_is_permutation_matrix() {
        assert!(stride(12, 3).to_matrix().is_permutation(1e-12));
        assert!(!dft(4).to_matrix().is_permutation(1e-12));
    }

    #[test]
    fn kron_matches_tensor_formula() {
        let a = dft(2).to_matrix();
        let b = dft(3).to_matrix();
        let via_kron = a.kron(&b);
        let via_formula = tensor(dft(2), dft(3)).to_matrix();
        assert!(via_kron.approx_eq(&via_formula, 1e-9));
    }

    #[test]
    fn mul_matches_compose_formula() {
        let f = compose(vec![tensor(dft(2), i(2)), stride(4, 2)]);
        let m1 = tensor(dft(2), i(2)).to_matrix();
        let m2 = stride(4, 2).to_matrix();
        assert!(m1.mul(&m2).approx_eq(&f.to_matrix(), 1e-9));
    }

    #[test]
    fn assert_formula_eq_accepts_ct() {
        assert_formula_eq(&dft(6), &cooley_tukey(2, 3), 1e-9);
    }

    #[test]
    #[should_panic(expected = "formulas differ")]
    fn assert_formula_eq_rejects_wrong() {
        assert_formula_eq(&dft(4), &stride(4, 2), 1e-9);
    }

    #[test]
    fn dft_matrix_is_symmetric() {
        let m = dft(5).to_matrix();
        for r in 0..5 {
            for c in 0..5 {
                assert!(m[(r, c)].approx_eq(m[(c, r)], 1e-12));
            }
        }
    }

    #[test]
    fn dft_unitary_up_to_scale() {
        // DFT_n · conj(DFT_n) = n·I
        let n = 6;
        let m = dft(n).to_matrix();
        let mut conj = m.clone();
        for z in &mut conj.data {
            *z = z.conj();
        }
        let prod = m.mul(&conj);
        let mut scaled_id = Mat::identity(n);
        for z in &mut scaled_id.data {
            *z = *z * n as f64;
        }
        assert!(prod.approx_eq(&scaled_id, 1e-9));
    }
}
