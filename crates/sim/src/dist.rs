//! Inter-process exchange cost model for the `dist(q)` backend.
//!
//! The multi-process tier trades compute parallelism for two new costs a
//! thread pool never pays: the input must be *scattered* into per-worker
//! shared-memory slabs and the prefix result *gathered* back (two full
//! data passes that cross address spaces, so neither side reuses the
//! other's cache lines), and each batch pays a control-plane round trip
//! per worker (dispatch + join over a socket). This module prices both
//! against the machine model and predicts the single-process ↔ dist
//! crossover the tuner uses to decide whether `dist(q)` is worth
//! offering — including the degenerate host where it never is (one
//! core: dist adds exchange cost and no parallelism, so the model
//! predicts "never" and the tuner must agree by never selecting it).

use crate::machine::MachineSpec;
use crate::report::simulate_plan;
use serde::{Deserialize, Serialize};
use spiral_codegen::plan::Plan;
use spiral_codegen::shard::ShardSpec;

/// Cost parameters of the process boundary, in CPU cycles.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExchangeCosts {
    /// Cycles per complex element moved across the boundary, counting
    /// both the scatter into the worker slab and the gather back. Slab
    /// pages are written in one address space and read in another, so
    /// both passes run at memory (not cache) speed.
    pub cycles_per_elem: f64,
    /// Fixed cycles per worker per batch for the control-plane round
    /// trip (dispatch frame, worker wake-up, completion frame).
    pub dispatch_cycles: f64,
}

impl ExchangeCosts {
    /// Derive boundary costs from a machine model: line-granular memory
    /// traffic for the two data passes, and a dispatch round trip
    /// costed as a handful of barrier-equivalents (a socket wake-up is
    /// far slower than a spin barrier).
    pub fn for_machine(spec: &MachineSpec) -> ExchangeCosts {
        let mu = spec.mu() as f64;
        ExchangeCosts {
            // One line miss per µ-element line per pass (scatter pass +
            // gather pass); hardware prefetch streams the copies, so the
            // second touch of each line is hidden behind the first.
            cycles_per_elem: 2.0 * spec.costs.mem / mu,
            dispatch_cycles: 8.0 * spec.costs.barrier,
        }
    }
}

/// Predicted cost of one `dist(q)` execution, decomposed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistEstimate {
    /// Worker process count.
    pub q: usize,
    /// Workers that can actually run in parallel (`min(q, host cores)`).
    pub effective_workers: usize,
    /// Cycles of the sharded prefix across the workers.
    pub prefix_cycles: f64,
    /// Cycles of scatter + gather + control round trips.
    pub exchange_cycles: f64,
    /// Cycles of the manager-side tail (unchanged from single-process).
    pub tail_cycles: f64,
    /// Total predicted cycles.
    pub cycles: f64,
    /// Predicted runtime in microseconds.
    pub micros: f64,
    /// The paper's metric `5 n log2 n / t_µs`.
    pub pseudo_mflops: f64,
    /// Total cycles of the single-process execution this competes with.
    pub single_cycles: f64,
    /// True when the model predicts `dist(q)` beats single-process.
    pub wins: bool,
}

/// Price a `dist(q)` execution of `plan` with shard geometry `spec` on
/// `machine`, given the host's physical core budget.
///
/// The single-process baseline is simulated exactly
/// ([`simulate_plan`]); its cycles split into prefix and tail by flops
/// share. The dist prefix then rescales by the parallelism change: the
/// baseline ran the prefix on `min(threads, cores)` workers, dist runs
/// the same work on `min(q, cores)` single-threaded processes. Exchange
/// and dispatch costs are added on top, so on a one-core host the model
/// always predicts a loss.
pub fn estimate_dist(
    plan: &Plan,
    spec: &ShardSpec,
    machine: &MachineSpec,
    host_cores: usize,
    warm: bool,
) -> DistEstimate {
    let costs = ExchangeCosts::for_machine(machine);
    let single = simulate_plan(plan, machine, warm);
    let total_flops = plan.flops().max(1) as f64;
    let prefix_share = spec.prefix_flops(plan) as f64 / total_flops;
    let prefix_single = single.cycles * prefix_share;
    let tail_cycles = single.cycles - prefix_single;

    let cores = host_cores.max(1);
    let baseline_workers = plan.threads.min(cores).max(1);
    let effective_workers = spec.q.min(cores).max(1);
    let prefix_cycles = prefix_single * baseline_workers as f64 / effective_workers as f64;

    let n = plan.n as f64;
    let exchange_cycles = n * costs.cycles_per_elem + spec.q as f64 * costs.dispatch_cycles;

    let cycles = prefix_cycles + exchange_cycles + tail_cycles;
    let micros = machine.cycles_to_us(cycles);
    let pseudo = if micros > 0.0 {
        5.0 * n * n.log2() / micros
    } else {
        0.0
    };
    DistEstimate {
        q: spec.q,
        effective_workers,
        prefix_cycles,
        exchange_cycles,
        tail_cycles,
        cycles,
        micros,
        pseudo_mflops: pseudo,
        single_cycles: single.cycles,
        wins: cycles < single.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::core_duo;
    use spiral_codegen::shard::shard_plan;
    use spiral_rewrite::multicore_dft_expanded;

    fn fused_plan(n: usize, p: usize) -> Plan {
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges()
    }

    #[test]
    fn one_core_host_never_wins() {
        let spec = core_duo();
        for n in [256usize, 1024, 4096] {
            let plan = fused_plan(n, 2);
            let shard = shard_plan(&plan, 2).unwrap();
            let est = estimate_dist(&plan, &shard, &spec, 1, true);
            assert!(!est.wins, "n={n}: dist must lose on one core");
            assert_eq!(est.effective_workers, 1);
        }
    }

    #[test]
    fn extra_cores_eventually_beat_exchange_cost() {
        // A single-threaded plan sharded across 4 workers on a 4-core
        // host: for large n the 4x prefix speedup amortizes the
        // exchange, and the model must find the crossover.
        let spec = core_duo();
        let mut wins_somewhere = false;
        for lg in 8..=16 {
            let n = 1usize << lg;
            let plan = {
                let mut p = fused_plan(n, 4);
                p.threads = 1; // baseline: sequential schedule of (14)
                p
            };
            let shard = shard_plan(&plan, 4).unwrap();
            let est = estimate_dist(&plan, &shard, &spec, 4, true);
            assert_eq!(est.effective_workers, 4);
            if est.wins {
                wins_somewhere = true;
            }
        }
        assert!(wins_somewhere, "4 workers never beat 1 thread at any n");
    }

    #[test]
    fn small_sizes_lose_to_dispatch_overhead() {
        let spec = core_duo();
        let plan = {
            let mut p = fused_plan(256, 4);
            p.threads = 1;
            p
        };
        let shard = shard_plan(&plan, 4).unwrap();
        let est = estimate_dist(&plan, &shard, &spec, 4, true);
        assert!(
            !est.wins,
            "n=256 should be dominated by exchange + dispatch cost"
        );
    }

    #[test]
    fn decomposition_adds_up() {
        let spec = core_duo();
        let plan = fused_plan(1024, 2);
        let shard = shard_plan(&plan, 2).unwrap();
        let est = estimate_dist(&plan, &shard, &spec, 2, true);
        let sum = est.prefix_cycles + est.exchange_cycles + est.tail_cycles;
        assert!((sum - est.cycles).abs() < 1e-6);
        assert!(est.exchange_cycles > 0.0);
        assert!(est.micros > 0.0);
        let js = serde_json::to_string(&est).unwrap();
        assert!(js.contains("exchange_cycles"));
    }
}
