//! The shared-memory machine simulator: a [`MemHook`] implementation
//! with per-core caches, a line-granularity coherence directory, and
//! per-core cycle clocks.
//!
//! It consumes the exact access streams of a compiled plan
//! ([`spiral_codegen::Plan::run_traced`]) and produces cycle estimates and
//! coherence statistics — in particular **false-sharing events**:
//! cache-line transfers between cores caused by accesses to *different*
//! elements of the same line. The paper proves the generated programs
//! incur none; the simulator verifies it dynamically and quantifies the
//! penalty for µ-oblivious baselines.

use crate::cache::Cache;
use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};
use spiral_codegen::hook::{MemHook, Region};
use std::collections::HashMap;

/// Aggregate counters of one simulated execution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Element reads.
    pub reads: u64,
    /// Element writes.
    pub writes: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (to memory).
    pub l2_misses: u64,
    /// Cache-to-cache line transfers (any cause).
    pub coherence_transfers: u64,
    /// Transfers where the two cores touched *different* elements of the
    /// line — false sharing.
    pub false_sharing: u64,
    /// Copies invalidated by remote writes.
    pub invalidations: u64,
    /// Barrier synchronizations.
    pub barriers: u64,
    /// Real flops executed.
    pub flops: u64,
}

/// Directory state of one cache line.
#[derive(Clone, Copy, Default)]
struct LineDir {
    /// Core holding the line dirty (modified), if any.
    dirty: Option<u8>,
    /// Bitmask of cores with a (possibly shared) copy.
    sharers: u16,
    /// Elements of the line touched during the current ownership tenure
    /// (bit `e mod µ`). On a coherence transfer, the incoming access is
    /// *false sharing* iff its element was never touched in the previous
    /// tenure — the cores use disjoint parts of the line, so the
    /// transfer moves no needed data.
    tenure_mask: u16,
}

/// The simulator.
pub struct SmpSim {
    /// The machine being modeled.
    pub spec: MachineSpec,
    /// Transform size (for address-space layout via [`Region::base`]).
    n: usize,
    mu: usize,
    l1: Vec<Cache>,
    /// One L2 per core (private) or per chip (shared).
    l2: Vec<Cache>,
    l2_of: Vec<usize>,
    dir: HashMap<u64, LineDir>,
    clock: Vec<f64>,
    /// Event counters of the current run.
    pub stats: SimStats,
}

impl SmpSim {
    /// Fresh simulator for a size-`n` transform on `spec`.
    pub fn new(spec: MachineSpec, n: usize) -> SmpSim {
        let mu = spec.mu();
        let l1_lines = spec.l1_bytes / spec.line_bytes;
        let l2_lines = spec.l2_bytes / spec.line_bytes;
        let l1 = (0..spec.p)
            .map(|_| Cache::new(l1_lines, spec.l1_assoc))
            .collect();
        let (l2, l2_of): (Vec<Cache>, Vec<usize>) = if spec.l2_shared {
            // One L2 per chip.
            let n_chips = spec.chip_of.iter().max().map_or(1, |&c| c + 1);
            (
                (0..n_chips)
                    .map(|_| Cache::new(l2_lines, spec.l2_assoc))
                    .collect(),
                spec.chip_of.clone(),
            )
        } else {
            (
                (0..spec.p)
                    .map(|_| Cache::new(l2_lines, spec.l2_assoc))
                    .collect(),
                (0..spec.p).collect(),
            )
        };
        SmpSim {
            n,
            mu,
            l1,
            l2,
            l2_of,
            dir: HashMap::new(),
            clock: vec![0.0; spec.p],
            stats: SimStats::default(),
            spec,
        }
    }

    fn line_of(&self, region: Region, idx: usize) -> u64 {
        ((region.base(self.n, self.mu) + idx) / self.mu) as u64
    }

    /// Simulated cycles of the whole run (the slowest core).
    pub fn cycles(&self) -> f64 {
        self.clock.iter().cloned().fold(0.0, f64::max)
    }

    /// Per-core cycle clocks.
    pub fn per_core_cycles(&self) -> &[f64] {
        &self.clock
    }

    /// Mutable access to the clocks (used by `reset_timing`).
    pub(crate) fn clock_mut(&mut self) -> &mut [f64] {
        &mut self.clock
    }

    /// Runtime in microseconds on the modeled machine.
    pub fn micros(&self) -> f64 {
        self.spec.cycles_to_us(self.cycles())
    }

    /// Pseudo-Mflop/s for a size-`n` DFT (`5 n log2 n / t_us`, paper §4).
    pub fn pseudo_mflops(&self, n: usize) -> f64 {
        spiral_spl::num::pseudo_mflops(n, self.micros())
    }

    /// Load-balance ratio of simulated work (max/mean of core clocks).
    pub fn balance_ratio(&self) -> f64 {
        let max = self.cycles();
        let mean = self.clock.iter().sum::<f64>() / self.clock.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Reset clocks, caches, directory, and stats (fresh run).
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.dir.clear();
        self.clock.iter_mut().for_each(|c| *c = 0.0);
        self.stats = SimStats::default();
    }

    fn access(&mut self, tid: usize, region: Region, idx: usize, is_write: bool) {
        let core = tid % self.spec.p;
        let elem =
            u32::try_from(region.base(self.n, self.mu) + idx).expect("element index fits u32");
        let line = self.line_of(region, idx);
        let mut cost;

        // Coherence first: does another core hold the line dirty, or (for
        // writes) does anyone else have a copy?
        let elem_bit = 1u16 << (elem as usize % self.mu);
        let entry = self.dir.entry(line).or_default();
        let my_bit = 1u16 << core;
        let mut transferred = false;
        if is_write {
            let others = (entry.sharers & !my_bit) != 0
                || matches!(entry.dirty, Some(d) if d as usize != core);
            if others {
                // Invalidate every other copy; pay the farthest transfer.
                let mut worst = 0.0f64;
                for other in 0..self.spec.p {
                    if other != core && (entry.sharers >> other) & 1 == 1 {
                        worst = worst.max(self.spec.coherence_cost(core, other));
                        self.l1[other].invalidate(line);
                        self.stats.invalidations += 1;
                    }
                }
                if let Some(d) = entry.dirty {
                    if d as usize != core {
                        worst = worst.max(self.spec.coherence_cost(core, d as usize));
                        self.l1[d as usize].invalidate(line);
                    }
                }
                self.stats.coherence_transfers += 1;
                transferred = true;
                if entry.tenure_mask & elem_bit == 0 {
                    self.stats.false_sharing += 1;
                }
                entry.tenure_mask = 0; // new ownership tenure
                self.clock[core] += worst;
            }
            entry.dirty = Some(u8::try_from(core).expect("core id fits u8"));
            entry.sharers = my_bit;
        } else {
            if let Some(d) = entry.dirty {
                if d as usize != core {
                    // Dirty elsewhere: cache-to-cache transfer, downgrade.
                    self.clock[core] += self.spec.coherence_cost(core, d as usize);
                    self.stats.coherence_transfers += 1;
                    transferred = true;
                    if entry.tenure_mask & elem_bit == 0 {
                        self.stats.false_sharing += 1;
                    }
                    entry.tenure_mask = 0;
                    entry.dirty = None;
                }
            }
            entry.sharers |= my_bit;
        }
        entry.tenure_mask |= elem_bit;

        // Cache hierarchy cost.
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if self.l1[core].access(line) {
            cost = self.spec.costs.l1_hit;
        } else {
            self.stats.l1_misses += 1;
            if self.l2[self.l2_of[core]].access(line) {
                cost = self.spec.costs.l2_hit;
            } else {
                self.stats.l2_misses += 1;
                cost = self.spec.costs.mem;
            }
        }
        // A coherence transfer supplies the data; don't also charge a
        // full memory miss on top (the transfer cost dominates).
        if transferred {
            cost = cost.min(self.spec.costs.l2_hit);
        }
        self.clock[core] += cost;
    }
}

impl MemHook for SmpSim {
    fn read(&mut self, tid: usize, region: Region, idx: usize) {
        self.access(tid, region, idx, false);
    }

    fn write(&mut self, tid: usize, region: Region, idx: usize) {
        self.access(tid, region, idx, true);
    }

    fn flops(&mut self, tid: usize, count: u64) {
        let core = tid % self.spec.p;
        self.clock[core] += count as f64 / self.spec.costs.flops_per_cycle;
        self.stats.flops += count;
    }

    fn barrier(&mut self) {
        let max = self.cycles();
        for c in &mut self.clock {
            *c = max + self.spec.costs.barrier;
        }
        self.stats.barriers += 1;
    }

    fn overhead(&mut self, tid: usize, cycles: f64) {
        self.clock[tid % self.spec.p] += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{core_duo, pentium_d};
    use spiral_codegen::hook::Region;

    #[test]
    fn private_reads_are_cheap_after_warmup() {
        let mut sim = SmpSim::new(core_duo(), 64);
        for _ in 0..2 {
            for i in 0..64 {
                sim.read(0, Region::BufA, i);
            }
        }
        // Second pass is all L1 hits.
        assert!(sim.stats.l1_misses <= 16 + 1);
        assert_eq!(sim.stats.coherence_transfers, 0);
        assert_eq!(sim.stats.false_sharing, 0);
    }

    #[test]
    fn true_sharing_is_counted_but_not_false() {
        let mut sim = SmpSim::new(core_duo(), 64);
        // Core 0 writes element 0; core 1 reads the SAME element.
        sim.write(0, Region::BufA, 0);
        sim.read(1, Region::BufA, 0);
        assert_eq!(sim.stats.coherence_transfers, 1);
        assert_eq!(sim.stats.false_sharing, 0);
    }

    #[test]
    fn false_sharing_detected_on_same_line_different_elements() {
        let mut sim = SmpSim::new(core_duo(), 64);
        // µ = 4: elements 0 and 1 share a line.
        sim.write(0, Region::BufA, 0);
        sim.write(1, Region::BufA, 1);
        sim.write(0, Region::BufA, 0);
        assert!(sim.stats.false_sharing >= 2, "{:?}", sim.stats);
    }

    #[test]
    fn no_events_across_line_boundary() {
        let mut sim = SmpSim::new(core_duo(), 64);
        sim.write(0, Region::BufA, 0);
        sim.write(1, Region::BufA, 4); // next line (µ = 4)
        assert_eq!(sim.stats.coherence_transfers, 0);
        assert_eq!(sim.stats.false_sharing, 0);
    }

    #[test]
    fn bus_machine_pays_more_for_sharing() {
        let mut fast = SmpSim::new(core_duo(), 64);
        let mut slow = SmpSim::new(pentium_d(), 64);
        for sim in [&mut fast, &mut slow] {
            for k in 0..100 {
                sim.write(k % 2, Region::BufA, 0);
            }
        }
        // Same event counts, very different cycle costs.
        assert_eq!(
            fast.stats.coherence_transfers,
            slow.stats.coherence_transfers
        );
        assert!(slow.cycles() > 3.0 * fast.cycles());
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut sim = SmpSim::new(core_duo(), 64);
        sim.flops(0, 1000);
        assert!(sim.per_core_cycles()[1] == 0.0);
        sim.barrier();
        let c = sim.per_core_cycles();
        assert_eq!(c[0], c[1]);
        assert!(c[0] >= 1000.0 + sim.spec.costs.barrier);
    }

    #[test]
    fn tmp_regions_are_isolated_per_thread() {
        let mut sim = SmpSim::new(core_duo(), 64);
        sim.write(0, Region::Tmp(0), 0);
        sim.write(1, Region::Tmp(1), 0);
        sim.write(0, Region::Tmp(0), 0);
        assert_eq!(sim.stats.coherence_transfers, 0);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut sim = SmpSim::new(core_duo(), 64);
        sim.write(0, Region::BufA, 0);
        sim.flops(0, 50);
        sim.barrier();
        sim.reset();
        assert_eq!(sim.cycles(), 0.0);
        assert_eq!(sim.stats.reads + sim.stats.writes, 0);
        assert_eq!(sim.stats.barriers, 0);
    }

    #[test]
    fn pseudo_mflops_sane() {
        let mut sim = SmpSim::new(core_duo(), 1024);
        sim.flops(0, 51200); // 5·1024·10 = nominal flop count
        let pm = sim.pseudo_mflops(1024);
        // 51200 flops in 51200 cycles at 2 GHz = 25.6 µs → 2000 pMflop/s.
        assert!((pm - 2000.0).abs() < 1.0, "{pm}");
    }

    #[test]
    fn balance_ratio_reflects_imbalance() {
        let mut sim = SmpSim::new(core_duo(), 64);
        sim.flops(0, 1000);
        assert!((sim.balance_ratio() - 2.0).abs() < 1e-9);
        sim.flops(1, 1000);
        assert!((sim.balance_ratio() - 1.0).abs() < 1e-9);
    }
}
