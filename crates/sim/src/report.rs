//! High-level simulation driver: run a compiled plan on a machine model
//! and report cycles, pseudo-Mflop/s, and coherence statistics.

use crate::machine::MachineSpec;
use crate::simhook::{SimStats, SmpSim};
use serde::{Deserialize, Serialize};
use spiral_codegen::plan::Plan;

/// Result of simulating one plan execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Machine model name.
    pub machine: String,
    /// Transform size.
    pub n: usize,
    /// Threads the plan was scheduled for.
    pub threads: usize,
    /// Simulated cycles (slowest core).
    pub cycles: f64,
    /// Simulated runtime in microseconds.
    pub micros: f64,
    /// The paper's performance metric `5 n log2 n / t_µs`.
    pub pseudo_mflops: f64,
    /// max/mean of per-core cycles (1.0 = perfectly balanced).
    pub balance_ratio: f64,
    /// Event counters of the measured run.
    pub stats: SimStats,
}

impl SmpSim {
    /// Clear clocks and statistics but keep cache and directory contents
    /// (for measuring a warmed-up execution, like a real benchmark loop).
    pub fn reset_timing(&mut self) {
        self.stats = SimStats::default();
        for c in self.clock_mut() {
            *c = 0.0;
        }
    }
}

/// Simulate one execution of `plan` on `spec`.
///
/// With `warm = true` the plan runs once to populate the caches and is
/// then measured on a second run — matching how the paper (and FFTW's
/// `bench`) time transforms in a repeat loop. `warm = false` measures a
/// cold first run.
pub fn simulate_plan(plan: &Plan, spec: &MachineSpec, warm: bool) -> SimReport {
    let mut sim = SmpSim::new(spec.clone(), plan.n);
    if warm {
        plan.run_traced(&mut sim);
        sim.reset_timing();
    }
    plan.run_traced(&mut sim);
    SimReport {
        machine: spec.name.clone(),
        n: plan.n,
        threads: plan.threads,
        cycles: sim.cycles(),
        micros: sim.micros(),
        pseudo_mflops: sim.pseudo_mflops(plan.n),
        balance_ratio: sim.balance_ratio(),
        stats: sim.stats.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{core_duo, paper_machines, pentium_d};
    use spiral_codegen::plan::Plan;
    use spiral_rewrite::{multicore_dft_expanded, sequential_dft};

    fn parallel_plan(n: usize, p: usize) -> Plan {
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        Plan::from_formula(&f, p, 4).unwrap()
    }

    #[test]
    fn generated_parallel_plans_have_zero_false_sharing() {
        // The dynamic counterpart of the paper's Definition 1 proof.
        for spec in paper_machines() {
            let plan = parallel_plan(256, spec.p);
            let rep = simulate_plan(&plan, &spec, true);
            assert_eq!(
                rep.stats.false_sharing, 0,
                "false sharing on {}: {:?}",
                spec.name, rep.stats
            );
        }
    }

    #[test]
    fn generated_plans_are_balanced_in_simulation() {
        let spec = core_duo();
        let plan = parallel_plan(1024, 2);
        let rep = simulate_plan(&plan, &spec, true);
        assert!(rep.balance_ratio < 1.05, "ratio {}", rep.balance_ratio);
    }

    #[test]
    fn warm_runs_are_faster_than_cold_for_in_cache_sizes() {
        let spec = core_duo();
        let plan = parallel_plan(1024, 2); // 16 KiB working set: fits L1/L2
        let cold = simulate_plan(&plan, &spec, false);
        let warm = simulate_plan(&plan, &spec, true);
        assert!(
            warm.cycles < cold.cycles,
            "warm {} vs cold {}",
            warm.cycles,
            cold.cycles
        );
    }

    #[test]
    fn parallel_beats_sequential_on_cmp_for_small_sizes() {
        // The paper's headline: on a CMP, parallelization pays off even
        // for in-L1 sizes (2^8).
        let spec = core_duo();
        let n = 256;
        let par = simulate_plan(&parallel_plan(n, 2), &spec, true);
        let seqf = sequential_dft(n, 8);
        let seq_plan = Plan::from_formula(&seqf, 1, 4).unwrap();
        let seq = simulate_plan(&seq_plan, &spec, true);
        assert!(
            par.cycles < seq.cycles,
            "CMP p=2 should win at n={n}: par {} vs seq {}",
            par.cycles,
            seq.cycles
        );
    }

    #[test]
    fn bus_machine_needs_larger_sizes_for_speedup() {
        // On the bus-synchronized Pentium D the same small size should
        // NOT benefit (barriers + coherence dominate), or at least the
        // relative gain must be much smaller than on the Core Duo.
        let n = 256;
        let cd = core_duo();
        let pd = pentium_d();
        let gain = |spec: &MachineSpec| {
            let par = simulate_plan(&parallel_plan(n, 2), spec, true);
            let seqf = sequential_dft(n, 8);
            let seq = simulate_plan(&Plan::from_formula(&seqf, 1, 4).unwrap(), spec, true);
            seq.cycles / par.cycles
        };
        let g_cd = gain(&cd);
        let g_pd = gain(&pd);
        assert!(g_cd > g_pd, "CMP gain {g_cd} should exceed bus gain {g_pd}");
    }

    #[test]
    fn report_serializes() {
        let spec = core_duo();
        let rep = simulate_plan(&parallel_plan(256, 2), &spec, true);
        let js = serde_json::to_string(&rep).unwrap();
        assert!(js.contains("pseudo_mflops"));
    }
}
