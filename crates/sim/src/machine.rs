//! Machine models: the shared-memory platforms of the paper's §4.
//!
//! Each [`MachineSpec`] captures what the paper's analysis depends on:
//! processor count `p`, cache-line length, private cache sizes, whether
//! last-level cache is shared, and the *relative* costs of hits, misses,
//! cache-to-cache (coherence) transfers, and barriers. The absolute
//! numbers are plausible for the era but only the relations matter for
//! reproducing the figure shapes (on-chip CMPs synchronize much faster
//! than bus-based SMPs).

use serde::{Deserialize, Serialize};

/// Cost parameters, in CPU cycles.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Costs {
    /// L1 hit (load-to-use, amortized).
    pub l1_hit: f64,
    /// L2 hit.
    pub l2_hit: f64,
    /// Miss to memory.
    pub mem: f64,
    /// Cache-to-cache transfer between cores on the *same chip*.
    pub coherence_on_chip: f64,
    /// Cache-to-cache transfer across chips / over the bus.
    pub coherence_off_chip: f64,
    /// Barrier synchronization (full round-trip, all processors).
    pub barrier: f64,
    /// Sustained real flops per cycle per core (scalar SSE2-era double).
    pub flops_per_cycle: f64,
}

/// A shared-memory machine model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable machine name.
    pub name: String,
    /// Processor (core) count.
    pub p: usize,
    /// Clock in GHz (converts cycles to time for pseudo-Mflop/s).
    pub ghz: f64,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Private L1 data cache per core, bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 cache bytes (per core if private, total if shared).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// True if L2 is shared among all cores of a chip.
    pub l2_shared: bool,
    /// chip\[core\] — which chip each core lives on (for on/off-chip
    /// coherence costs).
    pub chip_of: Vec<usize>,
    /// Cycle-cost parameters.
    pub costs: Costs,
}

impl MachineSpec {
    /// The paper's µ: line length in complex doubles (16 bytes each).
    pub fn mu(&self) -> usize {
        (self.line_bytes / 16).max(1)
    }

    /// Are two cores on the same chip?
    pub fn same_chip(&self, a: usize, b: usize) -> bool {
        self.chip_of[a] == self.chip_of[b]
    }

    /// Coherence transfer cost between two cores.
    pub fn coherence_cost(&self, a: usize, b: usize) -> f64 {
        if self.same_chip(a, b) {
            self.costs.coherence_on_chip
        } else {
            self.costs.coherence_off_chip
        }
    }

    /// Cycles → microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.ghz * 1000.0)
    }
}

/// 2.0 GHz Intel Core Duo: dual core, **shared** L2, fast on-chip
/// communication — the "real multicore" laptop of Figure 3(a).
pub fn core_duo() -> MachineSpec {
    MachineSpec {
        name: "Core Duo 2.0 GHz (2 cores, shared L2)".into(),
        p: 2,
        ghz: 2.0,
        line_bytes: 64,
        l1_bytes: 32 * 1024,
        l1_assoc: 8,
        l2_bytes: 2 * 1024 * 1024,
        l2_assoc: 8,
        l2_shared: true,
        chip_of: vec![0, 0],
        costs: Costs {
            l1_hit: 1.0,
            l2_hit: 14.0,
            mem: 180.0,
            coherence_on_chip: 25.0, // via the shared L2
            coherence_off_chip: 25.0,
            barrier: 450.0,
            flops_per_cycle: 1.0,
        },
    }
}

/// 3.6 GHz Intel Pentium D: two CPUs on one package but synchronizing
/// through the front-side bus — Figure 3(c).
pub fn pentium_d() -> MachineSpec {
    MachineSpec {
        name: "Pentium D 3.6 GHz (2 cores, bus sync)".into(),
        p: 2,
        ghz: 3.6,
        line_bytes: 64,
        l1_bytes: 16 * 1024,
        l1_assoc: 8,
        l2_bytes: 1024 * 1024, // per core
        l2_assoc: 8,
        l2_shared: false,
        chip_of: vec![0, 1], // bus between them: model as separate chips
        costs: Costs {
            l1_hit: 1.0,
            l2_hit: 25.0,
            mem: 380.0,
            coherence_on_chip: 320.0, // everything crosses the FSB
            coherence_off_chip: 320.0,
            barrier: 2800.0,
            flops_per_cycle: 1.0,
        },
    }
}

/// 2.2 GHz AMD Opteron dual-core × 2 sockets: four cores, no shared
/// cache but a fast on-chip coherency protocol — Figure 3(b).
pub fn opteron() -> MachineSpec {
    MachineSpec {
        name: "Opteron 2.2 GHz (4 cores: 2 chips x 2)".into(),
        p: 4,
        ghz: 2.2,
        line_bytes: 64,
        l1_bytes: 64 * 1024,
        l1_assoc: 2,
        l2_bytes: 1024 * 1024, // per core
        l2_assoc: 16,
        l2_shared: false,
        chip_of: vec![0, 0, 1, 1],
        costs: Costs {
            l1_hit: 1.0,
            l2_hit: 12.0,
            mem: 220.0,
            coherence_on_chip: 70.0,   // on-chip MOESI
            coherence_off_chip: 160.0, // HyperTransport hop
            barrier: 1200.0,
            flops_per_cycle: 1.0,
        },
    }
}

/// 2.8 GHz Intel Xeon MP: four processors on a shared bus — the
/// traditional SMP of Figure 3(d).
pub fn xeon_mp() -> MachineSpec {
    MachineSpec {
        name: "Xeon MP 2.8 GHz (4 CPUs, shared bus)".into(),
        p: 4,
        ghz: 2.8,
        line_bytes: 64,
        l1_bytes: 8 * 1024,
        l1_assoc: 4,
        l2_bytes: 512 * 1024, // per CPU
        l2_assoc: 8,
        l2_shared: false,
        chip_of: vec![0, 1, 2, 3],
        costs: Costs {
            l1_hit: 1.0,
            l2_hit: 20.0,
            mem: 420.0,
            coherence_on_chip: 400.0,
            coherence_off_chip: 400.0,
            barrier: 4200.0,
            flops_per_cycle: 1.0,
        },
    }
}

/// All four evaluation machines of Figure 3, in the paper's order.
pub fn paper_machines() -> Vec<MachineSpec> {
    vec![core_duo(), opteron(), pentium_d(), xeon_mp()]
}

/// Look up a machine by a CLI-friendly key.
pub fn by_name(key: &str) -> Option<MachineSpec> {
    match key {
        "core-duo" | "coreduo" => Some(core_duo()),
        "pentium-d" | "pentiumd" => Some(pentium_d()),
        "opteron" => Some(opteron()),
        "xeon-mp" | "xeonmp" => Some(xeon_mp()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_is_4_on_all_paper_machines() {
        for m in paper_machines() {
            assert_eq!(m.mu(), 4, "{}", m.name);
            assert_eq!(m.chip_of.len(), m.p);
        }
    }

    #[test]
    fn cmp_machines_have_cheaper_coherence_than_bus_machines() {
        // The paper's central hardware observation.
        assert!(core_duo().costs.coherence_on_chip < pentium_d().costs.coherence_on_chip);
        assert!(opteron().costs.coherence_on_chip < xeon_mp().costs.coherence_on_chip);
        assert!(core_duo().costs.barrier < pentium_d().costs.barrier);
    }

    #[test]
    fn chip_topology_drives_coherence_cost() {
        let m = opteron();
        assert!(m.same_chip(0, 1));
        assert!(!m.same_chip(1, 2));
        assert!(m.coherence_cost(0, 1) < m.coherence_cost(0, 2));
    }

    #[test]
    fn name_lookup() {
        assert!(by_name("core-duo").is_some());
        assert!(by_name("opteron").is_some());
        assert!(by_name("pentium-d").is_some());
        assert!(by_name("xeon-mp").is_some());
        assert!(by_name("cray").is_none());
    }

    #[test]
    fn cycles_to_us_conversion() {
        let m = core_duo(); // 2 GHz: 2000 cycles = 1 µs
        assert!((m.cycles_to_us(2000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn specs_serialize() {
        let m = core_duo();
        let js = serde_json::to_string(&m).unwrap();
        let back: MachineSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(back.p, 2);
        assert_eq!(back.mu(), 4);
    }
}
