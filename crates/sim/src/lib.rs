//! # spiral-sim — shared-memory machine simulator
//!
//! The container this reproduction runs in has a single CPU, so real
//! threads cannot exhibit parallel speedup. This crate substitutes the
//! paper's four physical evaluation machines with models that consume the
//! *exact* per-thread memory-access streams of compiled plans
//! ([`spiral_codegen::Plan::run_traced`]) and estimate cycles:
//!
//! * [`machine`] — specs for the paper's Core Duo, Pentium D, Opteron,
//!   and Xeon MP (µ = 4 on all of them), with on-chip vs. bus coherence
//!   and barrier costs;
//! * [`cache`] — set-associative LRU caches;
//! * [`simhook`] — per-core clocks, coherence directory, and — central to
//!   the paper — **false-sharing detection**: line transfers caused by
//!   different-element accesses;
//! * [`report`] — one-call plan simulation with pseudo-Mflop/s output;
//! * [`dist`] — inter-process exchange cost model pricing the `dist(q)`
//!   multi-process tier's scatter/gather and control-plane overhead.

#![warn(missing_docs)]

pub mod cache;
pub mod dist;
pub mod machine;
pub mod report;
pub mod simhook;

pub use dist::{estimate_dist, DistEstimate, ExchangeCosts};
pub use machine::{by_name, core_duo, opteron, paper_machines, pentium_d, xeon_mp, MachineSpec};
pub use report::{simulate_plan, SimReport};
pub use simhook::{SimStats, SmpSim};
