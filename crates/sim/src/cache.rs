//! Set-associative LRU cache model (line granularity).

/// A set-associative cache with LRU replacement, tracking line addresses
/// only (no data). Addresses are line numbers, not bytes.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // each set: lines, most-recently-used last
    assoc: usize,
    set_mask: u64,
}

impl Cache {
    /// `capacity_lines` total lines, `assoc`-way. The set count is the
    /// next power of two of `capacity/assoc` (hardware-like indexing).
    pub fn new(capacity_lines: usize, assoc: usize) -> Cache {
        let assoc = assoc.max(1);
        let n_sets = (capacity_lines / assoc).next_power_of_two().max(1);
        Cache {
            sets: vec![Vec::with_capacity(assoc); n_sets],
            assoc,
            set_mask: (n_sets - 1) as u64,
        }
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.assoc
    }

    /// Set index of a line. The mask is `n_sets − 1` with `n_sets` a
    /// `usize`, so the masked value always fits.
    fn set_of(&self, line: u64) -> usize {
        usize::try_from(line & self.set_mask).expect("set index fits usize")
    }

    /// Touch a line: returns `true` on hit. On miss the line is inserted
    /// (possibly evicting the LRU line of its set).
    pub fn access(&mut self, line: u64) -> bool {
        let si = self.set_of(line);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.push(l);
            true
        } else {
            if set.len() >= self.assoc {
                set.remove(0);
            }
            set.push(line);
            false
        }
    }

    /// Is the line present (without touching LRU order)?
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Remove a line (coherence invalidation). Returns true if present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let si = self.set_of(line);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drop everything (between benchmark repetitions).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_fill() {
        let mut c = Cache::new(64, 4);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert!(c.contains(10));
    }

    #[test]
    fn lru_eviction_within_set() {
        // Direct construct a tiny cache: 2 sets × 2 ways.
        let mut c = Cache::new(4, 2);
        // Lines 0, 2, 4 all map to set 0 (even lines with 2 sets).
        assert!(!c.access(0));
        assert!(!c.access(2));
        assert!(!c.access(4)); // evicts 0 (LRU)
        assert!(!c.contains(0));
        assert!(c.contains(2));
        assert!(c.contains(4));
        // Touch 2, then insert 6: 4 is now LRU and gets evicted.
        assert!(c.access(2));
        assert!(!c.access(6));
        assert!(!c.contains(4));
        assert!(c.contains(2));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = Cache::new(16, 2);
        c.access(5);
        assert!(c.invalidate(5));
        assert!(!c.contains(5));
        assert!(!c.invalidate(5));
    }

    #[test]
    fn working_set_behaviour() {
        // A working set within capacity hits on the second pass; one far
        // beyond capacity misses throughout.
        let mut c = Cache::new(256, 8);
        for line in 0..200u64 {
            c.access(line);
        }
        let hits = (0..200u64).filter(|&l| c.access(l)).count();
        assert_eq!(hits, 200);
        c.clear();
        for pass in 0..2 {
            let mut misses = 0;
            for line in 0..4096u64 {
                if !c.access(line) {
                    misses += 1;
                }
            }
            if pass == 1 {
                // LRU + sequential sweep: everything misses again.
                assert_eq!(misses, 4096);
            }
        }
    }

    #[test]
    fn clear_empties() {
        let mut c = Cache::new(16, 4);
        c.access(1);
        c.clear();
        assert!(!c.contains(1));
    }
}
