//! Property tests for the machine simulator: cache model invariants,
//! coherence accounting sanity, and cost monotonicity.

use proptest::prelude::*;
use spiral_codegen::hook::{MemHook, Region};
use spiral_sim::cache::Cache;
use spiral_sim::{core_duo, paper_machines, SmpSim};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never reports a hit for a line it has not seen, and always
    /// hits on an immediate re-access.
    #[test]
    fn cache_hit_iff_resident(lines in prop::collection::vec(0u64..512, 1..200)) {
        let mut c = Cache::new(64, 4);
        let mut resident = std::collections::HashSet::new();
        for &l in &lines {
            let hit = c.access(l);
            if hit {
                prop_assert!(resident.contains(&l), "hit on never-seen line {l}");
            }
            // Track what *could* be resident (superset — evictions shrink it).
            resident.insert(l);
            // Immediate re-access always hits.
            prop_assert!(c.access(l));
        }
    }

    /// Cache occupancy never exceeds capacity.
    #[test]
    fn cache_capacity_respected(lines in prop::collection::vec(0u64..10_000, 1..400)) {
        let mut c = Cache::new(32, 2);
        for &l in &lines {
            c.access(l);
        }
        let resident = (0u64..10_000).filter(|&l| c.contains(l)).count();
        prop_assert!(resident <= c.capacity_lines());
    }

    /// Accesses by a single core never produce coherence traffic or false
    /// sharing, whatever the pattern.
    #[test]
    fn single_core_never_shares(
        idxs in prop::collection::vec(0usize..256, 1..300),
        writes in prop::collection::vec(any::<bool>(), 300),
    ) {
        let mut sim = SmpSim::new(core_duo(), 256);
        for (k, &i) in idxs.iter().enumerate() {
            if writes[k % writes.len()] {
                sim.write(0, Region::BufA, i);
            } else {
                sim.read(0, Region::BufA, i);
            }
        }
        prop_assert_eq!(sim.stats.coherence_transfers, 0);
        prop_assert_eq!(sim.stats.false_sharing, 0);
        prop_assert_eq!(sim.stats.invalidations, 0);
    }

    /// Disjoint line-aligned partitions across cores never produce
    /// coherence traffic (the Definition 1 situation).
    #[test]
    fn line_disjoint_partitions_are_silent(
        rounds in 1usize..6,
        machine_idx in 0usize..4,
    ) {
        let spec = paper_machines()[machine_idx].clone();
        let p = spec.p;
        let mu = spec.mu();
        let n = 64 * p * mu;
        let mut sim = SmpSim::new(spec, n);
        let chunk = n / p;
        for _ in 0..rounds {
            for tid in 0..p {
                for i in tid * chunk..(tid + 1) * chunk {
                    sim.read(tid, Region::BufA, i);
                    sim.write(tid, Region::BufB, i);
                }
            }
            sim.barrier();
            for tid in 0..p {
                for i in tid * chunk..(tid + 1) * chunk {
                    sim.read(tid, Region::BufB, i);
                    sim.write(tid, Region::BufA, i);
                }
            }
            sim.barrier();
        }
        prop_assert_eq!(sim.stats.false_sharing, 0, "{:?}", sim.stats);
    }

    /// Interleaved element ownership inside one line always shows false
    /// sharing on every machine model.
    #[test]
    fn interleaved_writes_always_false_share(machine_idx in 0usize..4, reps in 2usize..8) {
        let spec = paper_machines()[machine_idx].clone();
        if spec.p < 2 {
            return Ok(());
        }
        let mut sim = SmpSim::new(spec, 64);
        for r in 0..reps {
            // Two cores alternately write different elements of line 0.
            sim.write(r % 2, Region::BufA, r % 2);
        }
        prop_assert!(sim.stats.false_sharing > 0);
    }

    /// Cycle clocks are monotone: adding work never reduces cycles, and
    /// barrier aligns all cores to the max.
    #[test]
    fn clocks_monotone_and_barrier_aligns(
        ops in prop::collection::vec((0usize..2, 0usize..64, any::<bool>()), 1..100),
    ) {
        let mut sim = SmpSim::new(core_duo(), 64);
        let mut last = 0.0f64;
        for &(tid, idx, w) in &ops {
            if w {
                sim.write(tid, Region::BufA, idx);
            } else {
                sim.read(tid, Region::BufA, idx);
            }
            let now = sim.cycles();
            prop_assert!(now >= last);
            last = now;
        }
        sim.barrier();
        let clocks = sim.per_core_cycles();
        prop_assert!((clocks[0] - clocks[1]).abs() < 1e-9);
    }

    /// More threads on the same trace never increase per-access cost
    /// bookkeeping inconsistently: total reads+writes equals the events fed.
    #[test]
    fn event_accounting_exact(
        ops in prop::collection::vec((0usize..4, 0usize..128, any::<bool>()), 1..200),
    ) {
        let mut sim = SmpSim::new(spiral_sim::opteron(), 128);
        let mut reads = 0u64;
        let mut writes = 0u64;
        for &(tid, idx, w) in &ops {
            if w {
                sim.write(tid, Region::BufA, idx);
                writes += 1;
            } else {
                sim.read(tid, Region::BufA, idx);
                reads += 1;
            }
        }
        prop_assert_eq!(sim.stats.reads, reads);
        prop_assert_eq!(sim.stats.writes, writes);
    }
}
